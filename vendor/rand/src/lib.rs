//! Offline stand-in for `rand` covering the surface this workspace uses:
//! `rand::rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen::<f64>()` and `gen_range(..)` over integer and
//! float ranges.
//!
//! `SmallRng` is a real xoshiro256++ (the algorithm behind rand 0.8's
//! `SmallRng` on 64-bit targets) seeded through SplitMix64, so the
//! statistical quality matches what the workload generator and simulator
//! were written against. Streams are *not* bit-identical to crates.io
//! `rand`; everything in-tree treats seeds as opaque, so only
//! self-consistency across runs matters, and that holds.

mod small;

pub mod rngs {
    pub use crate::small::SmallRng;

    /// Alias so code written against `StdRng` also compiles.
    pub type StdRng = SmallRng;
}

/// Low-level source of randomness; the object-safe core trait.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`), as in real rand.
pub trait Rng: RngCore {
    /// A sample from the "standard" distribution: `[0, 1)` for floats,
    /// full range for integers, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range, as real rand does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
///
/// Mirrors real rand's shape — one generic impl per range type over
/// `T: SampleUniform` — so type inference can flow from `gen_range`'s
/// result back into unsuffixed range literals.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform `0..span` without modulo bias (Lemire's multiply-shift with a
/// rejection pass on the low word).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        if wide as u64 >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    // `$u` is the unsigned type of the same width: the span must pass
    // through it before widening to u64, or a signed span that
    // overflows `$t` (e.g. -100i8..100) sign-extends and corrupts the
    // bound.
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range_and_mixing() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_hit_bounds_only() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(2u64..=10);
            assert!((2..=10).contains(&v));
            let s = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&s));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn narrow_signed_spans_do_not_sign_extend() {
        // -100i8..100 has span 200, which overflows i8; the span must
        // widen through u8, not sign-extend through i8.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "v = {v}");
            let w = rng.gen_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&w), "w = {w}");
            let x = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&x));
        }
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
