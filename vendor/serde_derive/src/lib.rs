//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public config
//! and result types but never serializes through them today (no
//! `serde_json`/`bincode` consumer exists in-tree), so these derives
//! expand to nothing. They accept and ignore `#[serde(...)]` attributes
//! so annotated types keep compiling. Swapping in the real crates.io
//! `serde`/`serde_derive` requires no source changes — only repointing
//! the `[workspace.dependencies]` entries.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
