//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Keeps parking_lot's ergonomics — `lock()` returns the guard directly
//! and `into_inner()` returns the value — by treating poisoning the way
//! parking_lot does (it has no poisoning): a panic while holding the
//! lock does not poison it for later users.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion matching `parking_lot::Mutex`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
