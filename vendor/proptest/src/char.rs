//! Character strategies (`proptest::char::range`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform characters in `lo..=hi` (by code point, skipping the
/// surrogate gap).
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range");
    CharRange { lo, hi }
}

/// Strategy returned by [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: char,
    hi: char,
}

impl Strategy for CharRange {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        let lo = self.lo as u32;
        let span = u64::from(self.hi as u32 - lo) + 1;
        loop {
            if let Some(c) = char::from_u32(lo + rng.below(span) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range() {
        let mut rng = TestRng::deterministic("char-range", 0);
        let s = range('a', 'z');
        for _ in 0..200 {
            assert!(s.sample(&mut rng).is_ascii_lowercase());
        }
    }
}
