//! Offline stand-in for `proptest` covering the surface this workspace
//! uses: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range and tuple strategies, [`any`](arbitrary::any), `Just`,
//! [`collection::vec`], [`char::range`], string strategies from a small
//! regex subset, and the `proptest!` / `prop_compose!` / `prop_oneof!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Semantics versus real proptest:
//!
//! * cases are sampled from a deterministic RNG seeded by test name and
//!   case index, so failures reproduce exactly across runs and machines;
//! * there is no shrinking — a failing case reports its inputs' seed but
//!   not a minimised counterexample;
//! * `prop_assume!` rejects the current case rather than resampling.
//!
//! That keeps the property tests meaningful (they still drive hundreds
//! of randomised inputs through the public APIs) while building fully
//! offline. Repointing `[workspace.dependencies] proptest` at crates.io
//! restores the full engine with no source changes.

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Property-test harness macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that samples and runs `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        // User attributes (including the conventional `#[test]`, plus
        // e.g. `#[ignore]`) are re-emitted verbatim, as real proptest
        // does; the macro adds none of its own.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    stringify!($name),
                    u64::from(case),
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            message
                        );
                    }
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding mid-sample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Rejects the current case when its inputs don't satisfy a
/// precondition. (Real proptest resamples; this stand-in just skips.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed_option($strat),)+
        ])
    };
}

/// Defines a function returning a composed strategy:
/// `fn name(outer)(arg in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($arg,)*)| $body,
            )
        }
    };
}
