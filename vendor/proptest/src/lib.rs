//! Offline stand-in for `proptest` covering the surface this workspace
//! uses: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range and tuple strategies, [`any`](arbitrary::any), `Just`,
//! [`collection::vec`], [`char::range`], string strategies from a small
//! regex subset, and the `proptest!` / `prop_compose!` / `prop_oneof!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Semantics versus real proptest:
//!
//! * cases are sampled from a deterministic RNG seeded by test name and
//!   case index (plus the optional `FMIG_PROPTEST_SEED` environment
//!   salt), so failures reproduce exactly across runs and machines;
//!   `PROPTEST_CASES` overrides the default case budget, as upstream;
//! * failing cases **shrink**: every draw a case makes is recorded as a
//!   choice stream, and [`shrink`] bisects that stream (truncating it
//!   and halving individual choices) re-running the property until no
//!   smaller stream still fails — internal Hypothesis-style shrinking
//!   rather than upstream's per-strategy value trees, so minimisation
//!   is coarser but needs nothing from the strategies;
//! * the shrunk counterexample is **persisted** to
//!   `tests/corpus/<test>.txt` ([`corpus`]) and every corpus entry is
//!   replayed *before* random sampling on all later runs;
//! * `prop_assume!` rejects the current case rather than resampling.
//!
//! That keeps the property tests meaningful (they still drive hundreds
//! of randomised inputs through the public APIs) while building fully
//! offline. Repointing `[workspace.dependencies] proptest` at crates.io
//! restores the full engine with no source changes — the corpus files
//! are this stand-in's own convention and are simply ignored by
//! upstream, which persists regressions under `proptest-regressions/`
//! instead.

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod corpus;
pub mod harness;
pub mod prelude;
pub mod shrink;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Property-test harness macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that first replays the test's persisted
/// regression corpus (`tests/corpus/<name>.txt`, resolved against the
/// *invoking* crate's manifest dir), then samples and runs
/// `config.cases` random cases. A failing case is shrunk to a minimal
/// choice stream, persisted to the corpus, and reported.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        // User attributes (including the conventional `#[test]`, plus
        // e.g. `#[ignore]`) are re-emitted verbatim, as real proptest
        // does; the macro adds none of its own.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let test_name = stringify!($name);
            // env!() expands in the invoking crate, so the corpus lives
            // next to the tests that own it.
            let manifest_dir = env!("CARGO_MANIFEST_DIR");
            let mut run_case = |rng: &mut $crate::test_runner::TestRng|
                -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), rng);
                )*
                $body
                ::core::result::Result::Ok(())
            };
            // 1. The regression corpus replays first, independent of the
            //    case budget and FMIG_PROPTEST_SEED. Panicking bodies
            //    are converted to failures (run_case_caught) so they
            //    shrink and persist like prop_assert ones.
            for (entry, stream) in
                $crate::corpus::load(manifest_dir, test_name).into_iter().enumerate()
            {
                let mut rng = $crate::test_runner::TestRng::replaying(
                    test_name,
                    stream.clone(),
                );
                if let ::core::result::Result::Err(
                    $crate::test_runner::TestCaseError::Fail(message),
                ) = $crate::harness::run_case_caught(&mut run_case, &mut rng)
                {
                    $crate::harness::report_failure(
                        test_name,
                        manifest_dir,
                        message,
                        stream,
                        format!("corpus entry {entry}"),
                        &mut run_case,
                    );
                }
            }
            // 2. Random sampling under the configured budget and seed.
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    test_name,
                    u64::from(case),
                );
                match $crate::harness::run_case_caught(&mut run_case, &mut rng) {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        let stream = rng.into_record();
                        $crate::harness::report_failure(
                            test_name,
                            manifest_dir,
                            message,
                            stream,
                            format!("case {case}/{}", config.cases),
                            &mut run_case,
                        );
                    }
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding mid-sample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Rejects the current case when its inputs don't satisfy a
/// precondition. (Real proptest resamples; this stand-in just skips.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed_option($strat),)+
        ])
    };
}

/// Defines a function returning a composed strategy:
/// `fn name(outer)(arg in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($arg,)*)| $body,
            )
        }
    };
}
