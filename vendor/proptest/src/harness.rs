//! Failure handling shared by every `proptest!`-generated test: shrink
//! the failing choice stream, persist it to the regression corpus, and
//! panic with a replayable report.

use crate::test_runner::{TestCaseError, TestRng};
use crate::{corpus, shrink};

/// A property body as the harness sees it: sample inputs from the RNG,
/// return `Ok` / `Reject` / `Fail`.
pub type RunCase<'c> = &'c mut dyn FnMut(&mut TestRng) -> Result<(), TestCaseError>;

/// Runs one case, converting an outright panic (an engine
/// `unreachable!`, a `debug_assert!`, an index error on hostile inputs)
/// into [`TestCaseError::Fail`] so panicking counterexamples enter the
/// same shrink-and-persist pipeline as `prop_assert!` failures.
pub fn run_case_caught(run_case: RunCase<'_>, rng: &mut TestRng) -> Result<(), TestCaseError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(rng))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test body panicked".to_string());
            Err(TestCaseError::fail(format!("panic: {message}")))
        }
    }
}

/// Handles one failing case end to end; never returns.
///
/// The stream is shrunk by re-running `run_case` on candidate streams
/// (a candidate that panics outright also counts as failing), the
/// minimal counterexample is appended to
/// `<manifest_dir>/tests/corpus/<test_name>.txt`, and the test panics
/// with the original message plus the replayable stream.
pub fn report_failure(
    test_name: &str,
    manifest_dir: &str,
    message: String,
    stream: Vec<u64>,
    origin: String,
    run_case: RunCase<'_>,
) -> ! {
    // Candidates that panic would each print a backtrace through the
    // default hook — hundreds of them for a panicking property — so the
    // hook is silenced for the shrink and restored right after. (The
    // same trade upstream proptest makes; a concurrently failing test's
    // message could land in this window, which is acceptable noise
    // control for an already-failing suite.)
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let minimal = shrink::shrink_stream(stream, |cand| {
        let mut rng = TestRng::replaying(test_name, cand.to_vec());
        matches!(
            run_case_caught(&mut *run_case, &mut rng),
            Err(TestCaseError::Fail(_))
        )
    });
    std::panic::set_hook(hook);
    let path = corpus::persist(manifest_dir, test_name, &minimal);
    panic!(
        "proptest {test_name} failed ({origin}): {message}\n\
         minimal choice stream ({} draws): {}\n\
         persisted to {} — it replays before random sampling from now on",
        minimal.len(),
        corpus::format_stream(&minimal),
        path.display(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    /// Serializes the tests that swap the global panic hook, so a
    /// concurrent swap can never restore the silent hook as "default".
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn report_failure_shrinks_and_persists() {
        let _guard = HOOK_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("fmig-harness-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let manifest = dir.to_string_lossy().into_owned();

        // A property over one draw that fails whenever v >= 950_000 (a
        // rare-enough failure that the truncation pass cannot shrink to
        // the empty stream — the fallback generator's value passes).
        // Find a failing case, then hand it to the harness.
        let mut run_case = |rng: &mut TestRng| -> Result<(), TestCaseError> {
            let v = (0u64..1_000_000).sample(rng);
            if v >= 950_000 {
                return Err(TestCaseError::fail(format!("v = {v}")));
            }
            Ok(())
        };
        let stream = (0..)
            .find_map(|case| {
                let mut rng = TestRng::deterministic("shrinks_and_persists", case);
                matches!(run_case(&mut rng), Err(TestCaseError::Fail(_))).then(|| rng.into_record())
            })
            .expect("some case fails");

        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            report_failure(
                "shrinks_and_persists",
                &manifest,
                "v too big".into(),
                stream,
                "case 0/1".into(),
                &mut run_case,
            )
        }));
        let payload = *caught
            .expect_err("must panic")
            .downcast::<String>()
            .unwrap();
        assert!(payload.contains("v too big"), "{payload}");
        assert!(payload.contains("minimal choice stream"), "{payload}");

        // The persisted entry replays to a minimal-boundary failure.
        let streams = corpus::load(&manifest, "shrinks_and_persists");
        assert_eq!(streams.len(), 1);
        let mut replay = TestRng::replaying("shrinks_and_persists", streams[0].clone());
        match run_case(&mut replay) {
            Err(TestCaseError::Fail(m)) => {
                // The shrunk draw sits exactly on the failure boundary.
                assert!(m.contains("v = 950000"), "not minimal: {m}");
            }
            other => panic!("corpus entry no longer fails: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_bodies_become_failures_and_shrink() {
        let _guard = HOOK_LOCK.lock().unwrap();
        // A body that panics outright (no prop_assert) on v >= 900_000:
        // run_case_caught must turn the unwind into a Fail so the
        // pipeline shrinks it to the boundary like any other failure.
        let mut run_case = |rng: &mut TestRng| -> Result<(), TestCaseError> {
            let v = (0u64..1_000_000).sample(rng);
            assert!(v < 900_000, "engine invariant violated: v = {v}");
            Ok(())
        };
        let stream = (0..)
            .find_map(|case| {
                let mut rng = TestRng::deterministic("panicking_bodies", case);
                let hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let outcome = run_case_caught(&mut run_case, &mut rng);
                std::panic::set_hook(hook);
                match outcome {
                    Err(TestCaseError::Fail(m)) => {
                        assert!(m.contains("panic: "), "panic not converted: {m}");
                        assert!(m.contains("engine invariant violated"), "{m}");
                        Some(rng.into_record())
                    }
                    _ => None,
                }
            })
            .expect("some case panics");

        let dir = std::env::temp_dir().join(format!("fmig-harness-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let manifest = dir.to_string_lossy().into_owned();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            report_failure(
                "panicking_bodies",
                &manifest,
                "seed case".into(),
                stream,
                "case 0/1".into(),
                &mut run_case,
            )
        }));
        assert!(caught.is_err());
        // The persisted entry replays to the minimal panicking input.
        let streams = corpus::load(&manifest, "panicking_bodies");
        assert_eq!(streams.len(), 1);
        let mut replay = TestRng::replaying("panicking_bodies", streams[0].clone());
        match run_case_caught(&mut run_case, &mut replay) {
            Err(TestCaseError::Fail(m)) => assert!(m.contains("v = 900000"), "not minimal: {m}"),
            other => panic!("corpus entry no longer fails: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
