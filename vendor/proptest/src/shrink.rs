//! Minimal input shrinking over recorded choice streams.
//!
//! Strategies here have no value trees; a case's inputs are a pure
//! function of the `u64` draws its RNG handed out. So shrinking works on
//! that *choice stream* directly (the Hypothesis approach): truncate it
//! — collections get shorter, later inputs collapse to the per-test
//! fallback generator — and shrink individual choices toward zero —
//! range strategies map smaller draws to values nearer their lower
//! bound. Every candidate is re-run through the property; only
//! still-failing candidates are kept, so the result is a genuine
//! counterexample, just (usually) a much smaller one.

/// Hard cap on property re-executions per shrink, so a slow property
/// cannot turn one failure into a minutes-long minimisation.
const MAX_ATTEMPTS: usize = 512;

/// Shrinks `stream` while `still_fails` holds, by bisecting the stream
/// length and then halving individual choices. Returns the smallest
/// failing stream found (possibly the input itself).
pub fn shrink_stream(stream: Vec<u64>, mut still_fails: impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    let mut best = stream;
    let mut attempts = 0usize;
    let mut try_candidate = |cand: &[u64], attempts: &mut usize| -> bool {
        if *attempts >= MAX_ATTEMPTS {
            return false;
        }
        *attempts += 1;
        still_fails(cand)
    };

    // Pass 1: truncation, bisecting on the kept length. Start from the
    // empty stream (everything from the fallback generator) and grow
    // back toward the full length until a failing prefix is found.
    loop {
        let mut lo = 0usize;
        let mut shrunk = false;
        let hi = best.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if try_candidate(&best[..mid], &mut attempts) {
                best.truncate(mid);
                shrunk = true;
                break;
            }
            lo = mid + 1;
        }
        if !shrunk || attempts >= MAX_ATTEMPTS {
            break;
        }
    }

    // Pass 2: shrink individual choices toward zero, left to right. Per
    // slot, binary-search the smallest value that still fails (failure
    // need not be monotone in a choice, but in practice range
    // strategies map smaller draws to values nearer their lower bound,
    // so bisection lands on or near the boundary in ≤64 re-runs).
    // Repeat sweeps until one makes no progress.
    let mut improved = true;
    while improved && attempts < MAX_ATTEMPTS {
        improved = false;
        for i in 0..best.len() {
            let old = best[i];
            if old == 0 {
                continue;
            }
            let mut lo = 0u64;
            let mut hi = old;
            while lo < hi && attempts < MAX_ATTEMPTS {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                cand[i] = mid;
                if try_candidate(&cand, &mut attempts) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < old {
                best[i] = hi;
                improved = true;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_to_the_failing_prefix() {
        // Fails whenever the first draw is >= 10, regardless of length.
        let stream = vec![500, 7, 7, 7, 7, 7, 7, 7];
        let shrunk = shrink_stream(stream, |s| s.first().copied().unwrap_or(0) >= 10);
        assert_eq!(shrunk, vec![10], "expected minimal single-draw stream");
    }

    #[test]
    fn halves_choices_toward_the_boundary() {
        // Fails while the sum of draws exceeds 100.
        let stream = vec![90, 90, 90];
        let shrunk = shrink_stream(stream, |s| s.iter().sum::<u64>() > 100);
        assert!(shrunk.iter().sum::<u64>() > 100);
        assert!(
            shrunk.iter().sum::<u64>() <= 110,
            "should land near the boundary: {shrunk:?}"
        );
    }

    #[test]
    fn keeps_the_original_when_nothing_smaller_fails() {
        let stream = vec![3, 4];
        let shrunk = shrink_stream(stream.clone(), |s| s == stream.as_slice());
        assert_eq!(shrunk, stream);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let mut calls = 0usize;
        let stream: Vec<u64> = (0..10_000).map(|i| i as u64 + 1).collect();
        let _ = shrink_stream(stream, |_| {
            calls += 1;
            true // everything "fails": worst case for the budget
        });
        assert!(calls <= MAX_ATTEMPTS);
    }
}
