//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a sampler over a deterministic RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value through `map_fn`.
    fn prop_map<U, F>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            strategy: self,
            map_fn,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map_fn: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.map_fn)(self.strategy.sample(rng))
    }
}

/// Type-erased strategy returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Boxing helper used by `prop_oneof!` so the macro body stays a
    /// plain expression.
    pub fn boxed_option<S>(strategy: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    // `$u` is the unsigned type of the same width: the span must pass
    // through it before widening to u64, or a signed span that
    // overflows `$t` (e.g. -100i8..100) sign-extends and corrupts the
    // bound.
    ($(($t:ty, $u:ty)),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident . $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// String strategies from a regex subset, mirroring proptest's
/// `impl Strategy for &str`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let (a, b, c) = (0u8..4, -10i64..10, 0.5f64..2.0).sample(&mut rng);
            assert!(a < 4);
            assert!((-10..10).contains(&b));
            assert!((0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn narrow_signed_spans_do_not_sign_extend() {
        let mut rng = rng();
        for _ in 0..2000 {
            let v = (-100i8..100).sample(&mut rng);
            assert!((-100..100).contains(&v), "v = {v}");
            let w = (-2_000_000_000i32..2_000_000_000).sample(&mut rng);
            assert!((-2_000_000_000..2_000_000_000).contains(&w), "w = {w}");
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = rng();
        let s = Union::new(vec![
            Union::boxed_option(Just(1u32)),
            Union::boxed_option((10u32..20).prop_map(|v| v * 2)),
        ]);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn boxed_strategy_samples() {
        let mut rng = rng();
        let s = (0u8..3).boxed();
        assert!(s.sample(&mut rng) < 3);
    }
}
