//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-low, exclusive-high length bounds for collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            lo: *range.start(),
            hi: range.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::deterministic("vec-len", 0);
        let s = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
