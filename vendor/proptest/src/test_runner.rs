//! Deterministic RNG, per-run configuration, and case outcomes.
//!
//! The RNG records every `u64` it hands out (its *choice stream*), which
//! is what makes shrinking and the regression corpus possible: a failing
//! case is fully described by the stream of draws that produced its
//! inputs, so the harness can bisect that stream ([`crate::shrink`]) and
//! persist the minimised version ([`crate::corpus`]) for replay.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 rather than real proptest's 256: sampling here is fully
    /// deterministic, so extra cases replay the same stream every run
    /// and buy less than they would under fresh entropy. Like real
    /// proptest, the `PROPTEST_CASES` environment variable overrides
    /// this default budget (explicit `with_cases` budgets stay as
    /// written); the CI test-matrix job drives the suite at several
    /// budgets that way.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Extra stream salt from `FMIG_PROPTEST_SEED`: every property's RNG
/// stream is re-derived from it, so one environment variable re-seeds
/// the whole suite (the CI test-matrix legs each set a distinct value).
/// Unset or unparsable means 0, the stream existing runs were built on.
pub fn env_seed() -> u64 {
    std::env::var("FMIG_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Why a case ended without passing.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// SplitMix64 stream seeded from the test name and case index, so every
/// case is reproducible by name without a persisted seed file.
///
/// Every draw is recorded; [`TestRng::replaying`] builds an RNG whose
/// first draws come from a recorded stream instead (draws past the end
/// of the stream fall back to a fixed per-test generator, so truncated
/// streams — the shrinker's candidates — still produce complete
/// inputs). Replay deliberately ignores [`env_seed`]: a corpus entry
/// must reproduce the same inputs under every seed of the test matrix.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    record: Vec<u64>,
    replay: Vec<u64>,
    replay_pos: usize,
}

fn name_hash(test_name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl TestRng {
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        TestRng {
            state: name_hash(test_name)
                ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ env_seed().wrapping_mul(0xD1B5_4A32_D192_ED03),
            record: Vec::new(),
            replay: Vec::new(),
            replay_pos: 0,
        }
    }

    /// An RNG that replays `stream` before generating anything itself.
    /// The fallback state depends only on the test name, never on
    /// [`env_seed`] or a case index — corpus entries and shrink
    /// candidates replay identically everywhere.
    pub fn replaying(test_name: &str, stream: Vec<u64>) -> Self {
        TestRng {
            state: name_hash(test_name),
            record: Vec::new(),
            replay: stream,
            replay_pos: 0,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let v = if self.replay_pos < self.replay.len() {
            let v = self.replay[self.replay_pos];
            self.replay_pos += 1;
            v
        } else {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        self.record.push(v);
        v
    }

    /// The draws made so far — the case's choice stream.
    pub fn record(&self) -> &[u64] {
        &self.record
    }

    /// Consumes the RNG, returning its choice stream.
    pub fn into_record(self) -> Vec<u64> {
        self.record
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..bound` (`bound > 0`), bias removed by widening
    /// multiply with rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            if wide as u64 >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_reproduce() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 4);
        assert_ne!(TestRng::deterministic("t", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn draws_are_recorded_and_replayable() {
        let mut a = TestRng::deterministic("rec", 5);
        let drawn: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(a.record(), &drawn[..]);
        // Replaying the full record reproduces the exact draws.
        let mut b = TestRng::replaying("rec", a.into_record());
        let replayed: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(drawn, replayed);
    }

    #[test]
    fn replay_falls_back_to_generation_past_the_stream() {
        let mut rng = TestRng::replaying("tail", vec![1, 2]);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
        // Past-end draws are generated deterministically per test name.
        let tail = rng.next_u64();
        let mut again = TestRng::replaying("tail", vec![9, 9]);
        let _ = (again.next_u64(), again.next_u64());
        assert_eq!(tail, again.next_u64(), "fallback must ignore the prefix");
    }
}
