//! Deterministic RNG, per-run configuration, and case outcomes.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 rather than real proptest's 256: sampling here is fully
    /// deterministic, so extra cases replay the same stream every run
    /// and buy less than they would under fresh entropy.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case ended without passing.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// SplitMix64 stream seeded from the test name and case index, so every
/// case is reproducible by name without a persisted seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..bound` (`bound > 0`), bias removed by widening
    /// multiply with rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            if wide as u64 >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_reproduce() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 4);
        assert_ne!(TestRng::deterministic("t", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
