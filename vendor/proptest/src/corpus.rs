//! Persisted regression corpus for property tests.
//!
//! When a property fails, the harness shrinks the failing choice stream
//! (see [`crate::shrink`]) and appends it to
//! `<crate>/tests/corpus/<test_name>.txt`. Every later run replays the
//! file's streams *before* random sampling, so a once-found
//! counterexample is re-checked forever — across case budgets and
//! `FMIG_PROPTEST_SEED` values, since replay ignores both.
//!
//! File format, one case per line: whitespace-separated decimal `u64`
//! choices. Blank lines and `#` comments are skipped, so corpus files
//! can document where each entry came from. An empty stream (a line
//! containing only `-`) is valid and replays the test's fallback
//! generator from its fixed state — useful for pinning the all-minimal
//! input (empty collections, range lower bounds).

use std::path::PathBuf;

fn corpus_file(manifest_dir: &str, test_name: &str) -> PathBuf {
    PathBuf::from(manifest_dir)
        .join("tests")
        .join("corpus")
        .join(format!("{test_name}.txt"))
}

/// Loads the recorded streams for `test_name`, oldest first. A missing
/// or unreadable file is an empty corpus, never an error.
pub fn load(manifest_dir: &str, test_name: &str) -> Vec<Vec<u64>> {
    let Ok(text) = std::fs::read_to_string(corpus_file(manifest_dir, test_name)) else {
        return Vec::new();
    };
    let mut streams = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "-" {
            streams.push(Vec::new());
            continue;
        }
        let parsed: Option<Vec<u64>> = line
            .split_whitespace()
            .map(|tok| tok.parse::<u64>().ok())
            .collect();
        if let Some(stream) = parsed {
            streams.push(stream);
        }
        // Unparsable lines are skipped: a hand-edited corpus should
        // never be able to abort the whole suite.
    }
    streams
}

/// Renders a stream as a corpus line.
pub fn format_stream(stream: &[u64]) -> String {
    if stream.is_empty() {
        "-".to_string()
    } else {
        stream
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Appends a failing stream to the test's corpus file (creating the
/// directory as needed), unless an identical entry is already present.
/// Returns the path it wrote to (or would have), for the failure
/// message. Persistence is best-effort: an unwritable tree (read-only
/// CI checkout) must not mask the original test failure.
pub fn persist(manifest_dir: &str, test_name: &str, stream: &[u64]) -> PathBuf {
    let path = corpus_file(manifest_dir, test_name);
    if load(manifest_dir, test_name)
        .iter()
        .any(|existing| existing == stream)
    {
        return path;
    }
    let line = format!("{}\n", format_stream(stream));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let _ = std::fs::write(&path, format!("{existing}{line}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("fmig-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn round_trips_streams_and_skips_comments() {
        let dir = tmp_dir("roundtrip");
        assert!(load(&dir, "t").is_empty());
        persist(&dir, "t", &[5, 0, 18446744073709551615]);
        persist(&dir, "t", &[]);
        // Duplicate entries are not appended twice.
        persist(&dir, "t", &[5, 0, 18446744073709551615]);
        let streams = load(&dir, "t");
        assert_eq!(streams, vec![vec![5, 0, u64::MAX], vec![]]);
        // Comments and junk survive a hand edit.
        let path = corpus_file(&dir, "t");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "# found 2026-07-29\nnot numbers\n\n");
        std::fs::write(&path, text).unwrap();
        assert_eq!(load(&dir, "t").len(), 2);
        let _ = std::fs::remove_dir_all(std::path::Path::new(&dir));
    }

    #[test]
    fn format_is_stable() {
        assert_eq!(format_stream(&[]), "-");
        assert_eq!(format_stream(&[1, 2, 3]), "1 2 3");
    }
}
