//! `any::<T>()` over the primitive types the workspace tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('?')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_both_booleans() {
        let mut rng = TestRng::deterministic("any-bool", 0);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.sample(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
