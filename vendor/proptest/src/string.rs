//! String generation from a small regex subset, backing
//! `impl Strategy for &str`.
//!
//! Supported syntax: literal characters, `.` (printable ASCII),
//! `[...]`character classes of literals and `a-z` ranges, the escapes
//! `\d` `\w` `\s` `\\` (and escaped metacharacters), and the
//! quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` (unbounded repeats cap at
//! 8). Anything else panics with a clear message — extend the parser
//! when a test needs more, rather than silently mis-sampling.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate characters, sampled uniformly.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Samples a string matching `pattern`.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        let Atom::Class(choices) = &piece.atom;
        for _ in 0..count {
            let index = rng.below(choices.len() as u64) as usize;
            out.push(choices[index]);
        }
    }
    out
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

fn escape_class(pattern: &str, c: char) -> Vec<char> {
    match c {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(['_'])
            .collect(),
        's' => vec![' ', '\t', '\n'],
        '\\' | '.' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$'
        | '-' => vec![c],
        other => panic!("regex stub: unsupported escape `\\{other}` in {pattern:?}"),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("regex stub: unterminated `[` in {pattern:?}"));
                let mut choices = Vec::new();
                let mut j = i + 1;
                if j < close && chars[j] == '^' {
                    panic!("regex stub: negated classes unsupported in {pattern:?}");
                }
                while j < close {
                    if chars[j] == '\\' && j + 1 < close {
                        choices.extend(escape_class(pattern, chars[j + 1]));
                        j += 2;
                    } else if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "regex stub: bad class range in {pattern:?}");
                        choices.extend((lo..=hi).filter(|c| char::from_u32(*c as u32).is_some()));
                        j += 3;
                    } else {
                        choices.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(
                    !choices.is_empty(),
                    "regex stub: empty class in {pattern:?}"
                );
                i = close + 1;
                Atom::Class(choices)
            }
            '.' => {
                i += 1;
                Atom::Class(printable_ascii())
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "regex stub: trailing `\\` in {pattern:?}"
                );
                let class = escape_class(pattern, chars[i + 1]);
                i += 2;
                Atom::Class(class)
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                panic!(
                    "regex stub: unsupported metacharacter `{}` in {pattern:?}",
                    chars[i]
                )
            }
            literal => {
                i += 1;
                Atom::Class(vec![literal])
            }
        };

        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("regex stub: unterminated `{{` in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().unwrap_or_else(|_| {
                                panic!("regex stub: bad repeat `{body}` in {pattern:?}")
                            });
                            let hi = hi.trim().parse().unwrap_or_else(|_| {
                                panic!("regex stub: bad repeat `{body}` in {pattern:?}")
                            });
                            assert!(lo <= hi, "regex stub: bad repeat `{body}` in {pattern:?}");
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().unwrap_or_else(|_| {
                                panic!("regex stub: bad repeat `{body}` in {pattern:?}")
                            });
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests", 1)
    }

    #[test]
    fn printable_class_with_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_regex("[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_classes_and_quantifiers() {
        let mut rng = rng();
        let s = sample_regex("ab[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));

        let t = sample_regex(r"x\d?", &mut rng);
        assert!(t == "x" || (t.len() == 2 && t.as_bytes()[1].is_ascii_digit()));
    }
}
