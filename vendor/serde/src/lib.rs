//! Offline stand-in for `serde`.
//!
//! Exposes the two trait names the workspace imports and re-exports the
//! no-op derives under the same names, mirroring real serde's `derive`
//! feature. No serializer runs in-tree, so the traits carry no methods;
//! see `vendor/serde_derive` for the swap-back story.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
