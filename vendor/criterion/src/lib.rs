//! Offline stand-in for `criterion` covering the API the fmig benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, finish}`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It really measures: each benchmark is warmed up once, then timed over
//! `sample_size` batches, reporting min/mean per-iteration wall-clock
//! time (and throughput when configured). There is no statistical
//! analysis, HTML report, or comparison against saved baselines — this
//! exists so `cargo bench` runs and `cargo bench --no-run` compiles
//! offline; swap the workspace dependency back to crates.io criterion
//! for real measurements.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export point for the hint criterion 0.5 exposes.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into_benchmark_id().label(), sample_size, None, f);
    }
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A benchmark name plus an input parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: String::new(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: String::new(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each return value alive
    /// through [`black_box`] so the work is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One warm-up pass, then `sample_size` timed single-iteration samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / sample_size as u32;

    let mut line = format!(
        "  {label}: mean {}, min {} ({sample_size} samples)",
        fmt_duration(mean),
        fmt_duration(best)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                let _ = write!(line, ", {:.3} Melem/s", per_sec(n) / 1e6);
            }
            Throughput::Bytes(n) => {
                let _ = write!(line, ", {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0));
            }
            Throughput::BytesDecimal(n) => {
                let _ = write!(line, ", {:.3} MB/s", per_sec(n) / 1e6);
            }
        }
    }
    eprintln!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundles benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group; ignores harness CLI arguments
/// (`--bench`, filters) that `cargo bench` forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut calls = 0u32;
        group
            .sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::new("count", 10), |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
        group.finish();
        // Warm-up (1 iter) + 3 samples × 1 iter.
        assert_eq!(calls, 4);
    }

    #[test]
    fn plain_str_id_works() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
