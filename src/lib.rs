pub use fmig_core::*;
