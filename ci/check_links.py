#!/usr/bin/env python3
"""Check that every relative markdown link in the repo docs resolves.

Usage: check_links.py [FILE_OR_DIR ...]   (default: README.md docs/)

Scans markdown files for inline links and images (`[text](target)`),
skips external schemes (http/https/mailto) — the build must stay
offline — and fails if a relative target, resolved against the linking
file's directory, does not exist in the worktree. Anchors are stripped
before the existence check; a bare-anchor link (`#section`) is accepted
as long as the heading slug exists in the same file.
"""

import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
SCHEME = re.compile(r"^[a-z][a-z0-9+.-]*:", re.IGNORECASE)


def slug(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_\[\]()]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_file(path: str) -> list[str]:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks contain example paths, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    slugs = {slug(h) for h in HEADING.findall(text)}
    errors = []
    for target in LINK.findall(text):
        if SCHEME.match(target):
            continue
        base, _, anchor = target.partition("#")
        if not base:
            if anchor not in slugs:
                errors.append(f"{path}: broken anchor #{anchor}")
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), base))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link {target} -> {resolved}")
    return errors


def collect(arg: str) -> list[str]:
    if os.path.isdir(arg):
        return sorted(
            os.path.join(root, name)
            for root, _, names in os.walk(arg)
            for name in names
            if name.endswith(".md")
        )
    return [arg]


def main() -> int:
    args = sys.argv[1:] or ["README.md", "docs"]
    files = [f for a in args for f in collect(a)]
    if not files:
        print("FAIL: no markdown files found", file=sys.stderr)
        return 2
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for e in errors:
        print(f"FAIL: {e}")
    if errors:
        return 1
    print(f"OK: {len(files)} files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
