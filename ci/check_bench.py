#!/usr/bin/env python3
"""Gate a sweep benchmark artifact against the committed baseline.

Usage: check_bench.py BASELINE CURRENT [THRESHOLD]

Both files are `repro sweep` artifacts (or, for the baseline, a stub
with just the cost keys). Two kinds of figures are compared:

Lower-is-better costs — `normalized_cost` (the open-loop matrix),
`mrc_normalized_cost` (the single-pass miss-ratio-curve engine drawing
an eight-point capacity curve on the first shard) and, when both files
carry it, `latency_normalized_cost` (the closed-loop hierarchy-engine
matrix from `repro sweep --latency`): wall time divided by an
in-process CPU calibration loop measured on the same machine, so the
ratios are comparable across runner generations. The gate fails when
any compared cost exceeds its baseline by more than THRESHOLD (default
1.25, i.e. a >25% regression).

Higher-is-better scores — `scaling_speedup_vs_hashed` (the dense-id
replay's refs/sec over the frozen hashed baseline replaying the same
single-policy cell in-process; see `fmig_migrate::hashed`). Being an
in-process ratio of two measurements it needs no calibration; the gate
fails when it drops below its baseline divided by THRESHOLD. The
artifact's absolute `scaling_refs_per_sec` is recorded in the baseline
for context but not gated directly (absolute throughput shifts with
runner generations; the speedup does not).

To re-baseline after an intentional change:
    make bench-track   # writes BENCH_sweep.json
    python3 -c "import json; a = json.load(open('BENCH_sweep.json')); \
print(json.dumps({k: a[k] for k in ('normalized_cost', \
'mrc_normalized_cost', 'latency_normalized_cost', \
'scaling_speedup_vs_hashed') if k in a}))" \
> ci/bench_baseline.json
"""

import json
import sys

GATED_KEYS = ("normalized_cost", "mrc_normalized_cost", "latency_normalized_cost")

# Scores where bigger is better: gated on falling below baseline /
# THRESHOLD instead of rising above baseline * THRESHOLD.
GATED_MIN_KEYS = ("scaling_speedup_vs_hashed",)


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 1.25

    failed = False
    compared = 0
    for key in GATED_KEYS:
        if key not in baseline:
            continue
        if key not in current:
            # A baselined score the artifact no longer reports means the
            # gate silently lost coverage — treat it as a failure.
            print(f"FAIL: baseline has {key} but the artifact does not")
            failed = True
            continue
        compared += 1
        base = baseline[key]
        cur = current[key]
        ratio = cur / base
        print(f"baseline {key}: {base:.4f}")
        print(f"current  {key}: {cur:.4f}")
        print(f"ratio: {ratio:.3f} (gate: {threshold:.2f})")
        if ratio > threshold:
            failed = True
            print(
                f"FAIL: {key} regressed {100 * (ratio - 1):.0f}% "
                f"over the committed baseline (limit {100 * (threshold - 1):.0f}%)"
            )
    for key in GATED_MIN_KEYS:
        if key not in baseline:
            continue
        if key not in current:
            print(f"FAIL: baseline has {key} but the artifact does not")
            failed = True
            continue
        compared += 1
        base = baseline[key]
        cur = current[key]
        ratio = cur / base
        floor = 1.0 / threshold
        print(f"baseline {key}: {base:.4f} (higher is better)")
        print(f"current  {key}: {cur:.4f}")
        print(f"ratio: {ratio:.3f} (gate: >= {floor:.2f})")
        if ratio < floor:
            failed = True
            print(
                f"FAIL: {key} dropped {100 * (1 - ratio):.0f}% "
                f"below the committed baseline (limit {100 * (1 - floor):.0f}%)"
            )
    if compared == 0:
        print("FAIL: no cost key present in both baseline and artifact")
        return 1
    if failed:
        print(
            "If this commit did not touch the hot path, the runner's "
            "sweep/calibration ratio may have shifted (new CPU "
            "generation): re-baseline from this job's uploaded "
            "BENCH_sweep.json artifact using the recipe in this "
            "script's docstring."
        )
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
