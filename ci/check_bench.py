#!/usr/bin/env python3
"""Gate a sweep benchmark artifact against the committed baseline.

Usage: check_bench.py [--require-scaling] BASELINE CURRENT [THRESHOLD]

Both files are `repro sweep` artifacts (or, for the baseline, a stub
with just the cost keys). Two kinds of figures are compared:

Lower-is-better costs — `normalized_cost` (the open-loop matrix),
`mrc_normalized_cost` (the single-pass miss-ratio-curve engine drawing
an eight-point capacity curve on the first shard) and, when both files
carry it, `latency_normalized_cost` (the closed-loop hierarchy-engine
matrix from `repro sweep --latency`): wall time divided by an
in-process CPU calibration loop measured on the same machine, so the
ratios are comparable across runner generations. The gate fails when
any compared cost exceeds its baseline by more than THRESHOLD (default
1.25, i.e. a >25% regression).

Higher-is-better scores — `scaling_speedup_vs_hashed` (the dense-id
replay's refs/sec over the frozen hashed baseline replaying the same
single-policy cell in-process; see `fmig_migrate::hashed`) and
`kinetic_purge_speedup` (the purge-heavy STP churn replayed through the
kinetic tournament vs the exact rescan; see `fmig_migrate::rank`).
Being in-process ratios of two measurements they need no calibration;
the gate fails when one drops below its baseline divided by THRESHOLD.
The artifact's absolute `scaling_refs_per_sec` is recorded in the
baseline for context but not gated directly (absolute throughput shifts
with runner generations; the speedups do not).

One exception to that rule: `scaling_large_refs_per_sec` (the large
preset's replay throughput from `repro sweep --scaling`) IS gated as an
absolute floor, because the large preset is precisely where dense-id
throughput collapsed before the arena-backed replay state and a silent
regression there would not move any tiny-preset ratio. It is only
emitted by `--scaling` runs, so it is gated when the artifact carries
it and skipped otherwise; pass --require-scaling (the `make
bench-scaling` path does) to turn its absence into a failure so the
coverage cannot silently vanish.

To re-baseline after an intentional change:
    make bench-track     # writes BENCH_sweep.json
    make bench-scaling   # writes BENCH_scaling.json (large-preset key)
    python3 -c "import json; a = json.load(open('BENCH_sweep.json')); \
a.update(json.load(open('BENCH_scaling.json'))); \
print(json.dumps({k: a[k] for k in ('normalized_cost', \
'mrc_normalized_cost', 'latency_normalized_cost', \
'scaling_speedup_vs_hashed', 'kinetic_purge_speedup', \
'scaling_large_refs_per_sec') if k in a}))" \
> ci/bench_baseline.json
(Leave headroom below freshly measured speedups — the committed values
are deliberately ~25-40% under typical measurements so runner noise
does not trip the gate.)
"""

import json
import sys

GATED_KEYS = ("normalized_cost", "mrc_normalized_cost", "latency_normalized_cost")

# Scores where bigger is better: gated on falling below baseline /
# THRESHOLD instead of rising above baseline * THRESHOLD.
GATED_MIN_KEYS = ("scaling_speedup_vs_hashed", "kinetic_purge_speedup")

# Higher-is-better scores only `--scaling` runs emit: gated when the
# artifact carries them, skipped (or failed, under --require-scaling)
# when it does not.
GATED_SCALING_MIN_KEYS = ("scaling_large_refs_per_sec",)


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--require-scaling"]
    require_scaling = "--require-scaling" in sys.argv[1:]
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        current = json.load(f)
    threshold = float(args[2]) if len(args) > 2 else 1.25

    failed = False
    compared = 0
    for key in GATED_KEYS:
        if key not in baseline:
            continue
        if key not in current:
            # A baselined score the artifact no longer reports means the
            # gate silently lost coverage — treat it as a failure.
            print(f"FAIL: baseline has {key} but the artifact does not")
            failed = True
            continue
        compared += 1
        base = baseline[key]
        cur = current[key]
        ratio = cur / base
        print(f"baseline {key}: {base:.4f}")
        print(f"current  {key}: {cur:.4f}")
        print(f"ratio: {ratio:.3f} (gate: {threshold:.2f})")
        if ratio > threshold:
            failed = True
            print(
                f"FAIL: {key} regressed {100 * (ratio - 1):.0f}% "
                f"over the committed baseline (limit {100 * (threshold - 1):.0f}%)"
            )
    for key in GATED_MIN_KEYS + GATED_SCALING_MIN_KEYS:
        if key not in baseline:
            continue
        if key not in current:
            if key in GATED_SCALING_MIN_KEYS and not require_scaling:
                print(f"skip {key}: artifact lacks it (not a --scaling run)")
                continue
            print(f"FAIL: baseline has {key} but the artifact does not")
            failed = True
            continue
        compared += 1
        base = baseline[key]
        cur = current[key]
        ratio = cur / base
        floor = 1.0 / threshold
        print(f"baseline {key}: {base:.4f} (higher is better)")
        print(f"current  {key}: {cur:.4f}")
        print(f"ratio: {ratio:.3f} (gate: >= {floor:.2f})")
        if ratio < floor:
            failed = True
            print(
                f"FAIL: {key} dropped {100 * (1 - ratio):.0f}% "
                f"below the committed baseline (limit {100 * (1 - floor):.0f}%)"
            )
    if compared == 0:
        print("FAIL: no cost key present in both baseline and artifact")
        return 1
    if failed:
        print(
            "If this commit did not touch the hot path, the runner's "
            "sweep/calibration ratio may have shifted (new CPU "
            "generation): re-baseline from this job's uploaded "
            "BENCH_sweep.json artifact using the recipe in this "
            "script's docstring."
        )
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
