#!/usr/bin/env python3
"""Gate a sweep benchmark artifact against the committed baseline.

Usage: check_bench.py BASELINE CURRENT [THRESHOLD]

Both files are `repro sweep` artifacts (or, for the baseline, a stub
with just `normalized_cost`). The compared figure is `normalized_cost`:
sweep wall time divided by an in-process CPU calibration loop measured
on the same machine, so the ratio is comparable across runner
generations. The gate fails when the current cost exceeds the baseline
by more than THRESHOLD (default 1.25, i.e. a >25% regression).

To re-baseline after an intentional change:
    make bench-track   # writes BENCH_sweep.json
    python3 -c "import json; print(json.dumps({'normalized_cost': \
json.load(open('BENCH_sweep.json'))['normalized_cost']}))" \
        > ci/bench_baseline.json
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 1.25

    base = baseline["normalized_cost"]
    cur = current["normalized_cost"]
    ratio = cur / base
    print(f"baseline normalized_cost: {base:.4f}")
    print(f"current  normalized_cost: {cur:.4f}")
    print(f"ratio: {ratio:.3f} (gate: {threshold:.2f})")
    if ratio > threshold:
        print(
            f"FAIL: sweep wall time regressed {100 * (ratio - 1):.0f}% "
            f"over the committed baseline (limit {100 * (threshold - 1):.0f}%)"
        )
        print(
            "If this commit did not touch the hot path, the runner's "
            "sweep/calibration ratio may have shifted (new CPU "
            "generation): re-baseline from this job's uploaded "
            "BENCH_sweep.json artifact using the recipe in this "
            "script's docstring."
        )
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
