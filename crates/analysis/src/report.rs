//! Plain-text rendering of tables and figures.
//!
//! Everything the `repro` harness prints goes through these helpers: a
//! padded text table (the paper's Tables 1–4) and a log-x ASCII CDF plot
//! (its Figures 3 and 7–12).

/// A simple right-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..*w {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        if !self.header.is_empty() {
            render_row(&self.header, &widths, &mut out);
            let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(rule));
            out.push('\n');
        }
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats a float with one decimal place.
pub fn fmt_f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimal places.
pub fn fmt_f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders cumulative curves as a log-x ASCII plot.
///
/// `curves` holds `(label_char, points)` where points are `(x, fraction)`
/// with fractions in `[0, 1]`. Infinite x values are clamped to the plot's
/// right edge.
pub fn ascii_cdf(title: &str, curves: &[(char, &[(f64, f64)])], x_label: &str) -> String {
    const W: usize = 64;
    const H: usize = 16;
    let mut grid = vec![vec![' '; W]; H];

    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for (_, pts) in curves {
        for &(x, _) in pts.iter() {
            if x.is_finite() && x > 0.0 {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
    }
    if lo >= hi {
        lo = 1.0;
        hi = 10.0;
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    let xpos = |x: f64| -> usize {
        if !x.is_finite() {
            return W - 1;
        }
        let f = ((x.max(lo).ln() - llo) / (lhi - llo)).clamp(0.0, 1.0);
        ((f * (W - 1) as f64).round() as usize).min(W - 1)
    };
    let ypos = |frac: f64| -> usize {
        let f = frac.clamp(0.0, 1.0);
        H - 1 - ((f * (H - 1) as f64).round() as usize).min(H - 1)
    };

    for (sym, pts) in curves {
        // Draw steps between consecutive CDF points.
        let mut prev: Option<(usize, usize)> = None;
        for &(x, frac) in pts.iter() {
            let (cx, cy) = (xpos(x), ypos(frac));
            if let Some((px, py)) = prev {
                #[expect(clippy::needless_range_loop)]
                for gx in px..=cx {
                    let gy = if gx == cx { cy } else { py };
                    if grid[gy][gx] == ' ' {
                        grid[gy][gx] = *sym;
                    }
                }
            } else if grid[cy][cx] == ' ' {
                grid[cy][cx] = *sym;
            }
            prev = Some((cx, cy));
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let pct = 100 - i * 100 / (H - 1);
        out.push_str(&format!("{pct:>4}% |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(W));
    out.push('\n');
    out.push_str(&format!(
        "       {:<width$}{}\n",
        format_axis(lo),
        format_axis(hi),
        width = W - format_axis(hi).len() + 1
    ));
    out.push_str(&format!("       ({x_label}, log scale)\n"));
    out
}

fn format_axis(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Builds a comparison row.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        Comparison {
            metric: metric.into(),
            paper,
            measured,
        }
    }

    /// Measured over paper (1.0 = exact).
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.paper
        }
    }
}

/// Renders a list of comparisons as a table.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let mut t = TextTable::new(["metric", "paper", "measured", "ratio"]);
    for c in rows {
        t.row([
            c.metric.clone(),
            format!("{:.4}", c.paper),
            format!("{:.4}", c.measured),
            format!("{:.2}x", c.ratio()),
        ]);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = TextTable::new(["a", "long-header", "c"]);
        t.row(["1", "2"]);
        t.row(["wide-cell", "3", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "long-header" column starts at the same offset.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('2'), Some(col));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(3_515_794), "3,515,794");
    }

    #[test]
    fn pct_and_floats() {
        assert_eq!(fmt_pct(0.6647), "66.5%");
        assert_eq!(fmt_f1(98.06), "98.1");
        assert_eq!(fmt_f2(27.358), "27.36");
    }

    #[test]
    fn ascii_plot_contains_curves_and_axes() {
        let disk: Vec<(f64, f64)> = vec![(1.0, 0.2), (4.0, 0.5), (30.0, 0.9), (100.0, 1.0)];
        let tape: Vec<(f64, f64)> = vec![(20.0, 0.1), (90.0, 0.5), (400.0, 1.0)];
        let s = ascii_cdf("Figure 3", &[('d', &disk), ('t', &tape)], "seconds");
        assert!(s.contains("Figure 3"));
        assert!(s.contains('d'));
        assert!(s.contains('t'));
        assert!(s.contains("100%"));
        assert!(s.contains("seconds"));
    }

    #[test]
    fn ascii_plot_handles_degenerate_input() {
        let s = ascii_cdf("empty", &[('x', &[])], "seconds");
        assert!(s.contains("empty"));
        let one = [(5.0, 1.0)];
        let s = ascii_cdf("one", &[('o', &one)], "s");
        assert!(s.contains('o'));
    }

    #[test]
    fn comparison_ratios() {
        let c = Comparison::new("read share", 0.66, 0.69);
        assert!((c.ratio() - 0.69 / 0.66).abs() < 1e-12);
        let z = Comparison::new("zero", 0.0, 0.0);
        assert_eq!(z.ratio(), 1.0);
        let table = render_comparisons("check", &[c, z]);
        assert!(table.contains("read share"));
        assert!(table.contains("1.00x"));
    }
}
