//! Availability / degraded-mode analysis: what a fault scenario did to
//! user-visible service.
//!
//! The paper's NCAR environment lived with operator-mounted tapes,
//! drive contention, and multi-minute recall stalls; the closed-loop
//! hierarchy engine (`fmig-sim`) can now inject exactly those failure
//! modes deterministically. This module turns its per-run degraded
//! measurements into the comparative report an operator would read:
//! one row per (policy, scenario) with retry counts, outage-attributed
//! wait, and the tail under faults, plus derived availability figures
//! (retry rate, degraded-tail blowup against the healthy twin).
//!
//! The module is numbers-in/numbers-out on purpose — it does not
//! depend on the simulator or the policy crates, so it can score
//! externally collected degraded-mode measurements the same way the
//! rest of `fmig-analysis` scores external traces.

use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// One (policy × fault scenario) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityRow {
    /// Policy (or system variant) the cell ran.
    pub policy: String,
    /// Fault scenario label (`"none"` for the healthy baseline).
    pub scenario: String,
    /// Tape recalls issued.
    pub recalls: u64,
    /// Recall attempts that failed and were retried.
    pub read_retries: u64,
    /// Outage windows that parked a unit during the run.
    pub outage_events: u64,
    /// Queue wait attributable to parked hardware, seconds.
    pub outage_wait_s: f64,
    /// Mean first-byte read wait, seconds.
    pub mean_read_wait_s: f64,
    /// 99th-percentile first-byte read wait, seconds.
    pub p99_read_wait_s: f64,
}

impl AvailabilityRow {
    /// Failed attempts per issued recall (0 when nothing was recalled).
    pub fn retry_rate(&self) -> f64 {
        if self.recalls == 0 {
            0.0
        } else {
            self.read_retries as f64 / self.recalls as f64
        }
    }
}

/// The degraded-mode comparison table: rows keyed by (policy,
/// scenario), rendered with each fault row's tail blowup relative to
/// the policy's healthy baseline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    rows: Vec<AvailabilityRow>,
}

impl AvailabilityReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one measurement row.
    pub fn push(&mut self, row: AvailabilityRow) {
        self.rows.push(row);
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[AvailabilityRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no measurement has been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A policy's healthy (`"none"`-scenario) row, if present.
    pub fn baseline(&self, policy: &str) -> Option<&AvailabilityRow> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.scenario == "none")
    }

    /// p99-under-faults divided by the healthy p99 for one row — the
    /// degraded-tail blowup. 1.0 when no baseline exists or either tail
    /// is zero (nothing sensible to compare).
    pub fn tail_blowup(&self, row: &AvailabilityRow) -> f64 {
        match self.baseline(&row.policy) {
            Some(base) if base.p99_read_wait_s > 0.0 && row.p99_read_wait_s > 0.0 => {
                row.p99_read_wait_s / base.p99_read_wait_s
            }
            _ => 1.0,
        }
    }

    /// The most robust policy under `scenario`: lowest p99 read wait
    /// among that scenario's rows; ties go to insertion order.
    pub fn most_robust(&self, scenario: &str) -> Option<&AvailabilityRow> {
        self.rows.iter().filter(|r| r.scenario == scenario).fold(
            None,
            |acc: Option<&AvailabilityRow>, r| match acc {
                Some(best) if best.p99_read_wait_s <= r.p99_read_wait_s => Some(best),
                _ => Some(r),
            },
        )
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "policy",
            "scenario",
            "recalls",
            "retries",
            "retry rate",
            "outages",
            "outage wait (s)",
            "mean wait (s)",
            "p99 (s)",
            "tail blowup",
        ]);
        for row in &self.rows {
            t.row([
                row.policy.clone(),
                row.scenario.clone(),
                row.recalls.to_string(),
                row.read_retries.to_string(),
                format!("{:.3}", row.retry_rate()),
                row.outage_events.to_string(),
                format!("{:.0}", row.outage_wait_s),
                format!("{:.1}", row.mean_read_wait_s),
                format!("{:.1}", row.p99_read_wait_s),
                format!("{:.2}x", self.tail_blowup(row)),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(policy: &str, scenario: &str, p99: f64) -> AvailabilityRow {
        AvailabilityRow {
            policy: policy.into(),
            scenario: scenario.into(),
            recalls: 100,
            read_retries: if scenario == "none" { 0 } else { 12 },
            outage_events: if scenario == "none" { 0 } else { 3 },
            outage_wait_s: if scenario == "none" { 0.0 } else { 640.0 },
            mean_read_wait_s: p99 / 4.0,
            p99_read_wait_s: p99,
        }
    }

    #[test]
    fn retry_rate_and_baseline_lookup() {
        let mut report = AvailabilityReport::new();
        assert!(report.is_empty());
        report.push(row("lru", "none", 200.0));
        report.push(row("lru", "degraded-peak", 500.0));
        assert_eq!(report.len(), 2);
        assert_eq!(report.rows()[1].retry_rate(), 0.12);
        assert_eq!(report.baseline("lru").unwrap().p99_read_wait_s, 200.0);
        assert!(report.baseline("stp1.4").is_none());
        let zero = AvailabilityRow {
            recalls: 0,
            ..row("x", "none", 1.0)
        };
        assert_eq!(zero.retry_rate(), 0.0);
    }

    #[test]
    fn tail_blowup_compares_against_the_healthy_twin() {
        let mut report = AvailabilityReport::new();
        report.push(row("lru", "none", 200.0));
        report.push(row("lru", "degraded-peak", 500.0));
        report.push(row("stp1.4", "degraded-peak", 300.0));
        let degraded = &report.rows()[1];
        assert!((report.tail_blowup(degraded) - 2.5).abs() < 1e-12);
        // No healthy twin for stp1.4: blowup degrades to 1.0.
        let orphan = &report.rows()[2];
        assert_eq!(report.tail_blowup(orphan), 1.0);
    }

    #[test]
    fn most_robust_picks_the_lowest_degraded_tail() {
        let mut report = AvailabilityReport::new();
        report.push(row("lru", "degraded-peak", 500.0));
        report.push(row("stp1.4", "degraded-peak", 300.0));
        report.push(row("fifo", "degraded-peak", 300.0));
        let best = report.most_robust("degraded-peak").unwrap();
        // Lowest tail; insertion order breaks the tie.
        assert_eq!(best.policy, "stp1.4");
        assert!(report.most_robust("no-such-scenario").is_none());
    }

    #[test]
    fn render_carries_the_degraded_columns() {
        let mut report = AvailabilityReport::new();
        report.push(row("lru", "none", 200.0));
        report.push(row("lru", "flaky-reads", 420.0));
        let text = report.render();
        assert!(text.contains("retry rate"));
        assert!(text.contains("tail blowup"));
        assert!(text.contains("flaky-reads"));
        assert!(text.contains("2.10x"));
    }
}
