//! Interactive-versus-batch attribution (§3.2, §5.2).
//!
//! The paper infers, from periodicity alone, that "most reads on the
//! system are initiated by interactive requests, since reads peak when
//! people are at work, while writes remain almost constant". This module
//! makes the inference explicit: it decomposes each direction's hourly
//! profile into a flat machine-driven floor plus a human-shaped surplus
//! and reports the attributed shares.

use fmig_trace::{Direction, TraceRecord};
use serde::{Deserialize, Serialize};

/// Hourly request counts per direction, with the decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    counts: [[u64; 24]; 2],
}

impl Attribution {
    /// Creates an empty attribution.
    pub fn new() -> Self {
        Attribution {
            counts: [[0; 24]; 2],
        }
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        if !rec.is_ok() {
            return;
        }
        let dir = match rec.direction() {
            Direction::Read => 0,
            Direction::Write => 1,
        };
        self.counts[dir][rec.start.hour_of_day() as usize] += 1;
    }

    /// Total requests in one direction.
    pub fn total(&self, dir: Direction) -> u64 {
        self.counts[dir_index(dir)].iter().sum()
    }

    /// The machine-driven floor: 24 × the minimum hourly count. Batch
    /// jobs run around the clock, so the quietest hour bounds the
    /// machine-initiated rate.
    pub fn machine_floor(&self, dir: Direction) -> u64 {
        let min = self.counts[dir_index(dir)]
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        24 * min
    }

    /// Fraction of a direction's requests attributed to humans: the
    /// surplus above the flat floor.
    pub fn human_share(&self, dir: Direction) -> f64 {
        let total = self.total(dir);
        if total == 0 {
            return 0.0;
        }
        (total - self.machine_floor(dir)) as f64 / total as f64
    }

    /// The hourly surplus profile (requests above the floor), for
    /// plotting the inferred human activity.
    pub fn human_profile(&self, dir: Direction) -> [u64; 24] {
        let row = &self.counts[dir_index(dir)];
        let min = row.iter().copied().min().unwrap_or(0);
        core::array::from_fn(|h| row[h] - min)
    }
}

impl Default for Attribution {
    fn default() -> Self {
        Self::new()
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::Read => 0,
        Direction::Write => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::{HOUR, TRACE_EPOCH};
    use fmig_trace::Endpoint;

    fn read_at(hour: i64) -> TraceRecord {
        TraceRecord::read(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(hour * HOUR),
            1,
            "/f",
            1,
        )
    }

    fn write_at(hour: i64) -> TraceRecord {
        TraceRecord::write(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(hour * HOUR),
            1,
            "/f",
            1,
        )
    }

    #[test]
    fn flat_traffic_is_all_machine() {
        let mut a = Attribution::new();
        for h in 0..24 {
            a.observe(&write_at(h));
        }
        assert_eq!(a.total(Direction::Write), 24);
        assert_eq!(a.machine_floor(Direction::Write), 24);
        assert_eq!(a.human_share(Direction::Write), 0.0);
    }

    #[test]
    fn daytime_surplus_is_attributed_to_humans() {
        let mut a = Attribution::new();
        // One read every hour (machine floor) plus three extra at 10:00.
        for h in 0..24 {
            a.observe(&read_at(h));
        }
        for _ in 0..3 {
            a.observe(&read_at(10));
        }
        assert_eq!(a.total(Direction::Read), 27);
        assert_eq!(a.machine_floor(Direction::Read), 24);
        assert!((a.human_share(Direction::Read) - 3.0 / 27.0).abs() < 1e-12);
        let profile = a.human_profile(Direction::Read);
        assert_eq!(profile[10], 3);
        assert_eq!(profile[3], 0);
    }

    #[test]
    fn empty_hours_zero_the_floor() {
        let mut a = Attribution::new();
        a.observe(&read_at(10));
        // No request at 03:00, so the floor is zero: all human.
        assert_eq!(a.machine_floor(Direction::Read), 0);
        assert_eq!(a.human_share(Direction::Read), 1.0);
    }

    #[test]
    fn errors_are_ignored() {
        let mut a = Attribution::new();
        let mut bad = read_at(10);
        bad.error = Some(fmig_trace::ErrorKind::FileNotFound);
        a.observe(&bad);
        assert_eq!(a.total(Direction::Read), 0);
    }
}
