//! One-pass driver feeding every analysis of the study.
//!
//! [`Analyzer`] owns one instance of each figure/table analysis and
//! routes records appropriately: errored references count toward the
//! error census and the global request-gap distribution (they did reach
//! the MSS) but are excluded from everything else, exactly as in §5.1.

use fmig_trace::{TraceRecord, TraceStats};

use crate::attribution::Attribution;
use crate::dirs::DirStats;
use crate::filetrack::FileTracker;
use crate::interref::GapTracker;
use crate::latency::LatencyAnalysis;
use crate::sizes::DynamicSizes;
use crate::timeseries::{HourlyProfile, WeekSeries, WeeklyProfile};

/// All analyses of the paper, fed in a single pass.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Table 3: references/GB/sizes/latency by direction and device.
    pub stats: TraceStats,
    /// Figure 4: hour-of-day transfer rates.
    pub hourly: HourlyProfile,
    /// Figure 5: day-of-week transfer rates.
    pub weekly: WeeklyProfile,
    /// Figure 6: week-by-week rates over the trace.
    pub weeks: WeekSeries,
    /// Figure 7: global interrequest gaps.
    pub gaps: GapTracker,
    /// Figures 8, 9, 11 and §6: per-file behaviour.
    pub files: FileTracker,
    /// Figure 10: per-access size distributions.
    pub dynamic_sizes: DynamicSizes,
    /// Figure 12 / Table 4: directory census.
    pub dirs: DirStats,
    /// Figure 3 / Table 3 latency rows (needs annotated latencies).
    pub latency: LatencyAnalysis,
    /// §5.2 human/machine attribution of each direction.
    pub attribution: Attribution,
}

impl Analyzer {
    /// Creates an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one record to every relevant analysis.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.stats.observe(rec);
        self.gaps.observe(rec);
        if !rec.is_ok() {
            return;
        }
        self.hourly.observe(rec);
        self.weekly.observe(rec);
        self.weeks.observe(rec);
        self.files.observe(rec);
        self.dynamic_sizes.observe(rec);
        self.dirs.observe(rec);
        self.latency.observe(rec);
        self.attribution.observe(rec);
    }

    /// Convenience: analyzes an entire record stream.
    pub fn analyze<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> Self {
        let mut a = Self::new();
        for rec in records {
            a.observe(rec);
        }
        a
    }

    /// Convenience: analyzes an owning record stream (e.g. a generator).
    pub fn analyze_owned(records: impl IntoIterator<Item = TraceRecord>) -> Self {
        let mut a = Self::new();
        for rec in records {
            a.observe(&rec);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::{HOUR, TRACE_EPOCH};
    use fmig_trace::{Direction, Endpoint, ErrorKind};

    fn ok_read(t: i64, path: &str) -> TraceRecord {
        TraceRecord::read(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(t),
            1_000_000,
            path,
            1,
        )
    }

    #[test]
    fn routes_records_to_all_analyses() {
        let mut a = Analyzer::new();
        a.observe(&ok_read(10 * HOUR, "/u/d/x"));
        a.observe(&ok_read(10 * HOUR + 5, "/u/d/y"));
        assert_eq!(a.stats.total_references(), 2);
        assert_eq!(a.gaps.count(), 1);
        assert_eq!(a.files.file_count(), 2);
        assert_eq!(a.dirs.file_count(), 2);
        assert_eq!(a.hourly.requests_at(Direction::Read, 10), 2);
        assert_eq!(a.dynamic_sizes.histogram(Direction::Read).count(), 2);
    }

    #[test]
    fn errors_count_only_where_the_paper_counts_them() {
        let mut a = Analyzer::new();
        let mut bad = ok_read(0, "/gone");
        bad.error = Some(ErrorKind::FileNotFound);
        a.observe(&bad);
        a.observe(&ok_read(10, "/u/d/x"));
        // Error census and gap tracker see it...
        assert_eq!(a.stats.total_errors(), 1);
        assert_eq!(a.gaps.count(), 1);
        // ...but no per-file or size analysis does.
        assert_eq!(a.files.file_count(), 1);
        assert_eq!(a.dirs.file_count(), 1);
        assert_eq!(a.stats.total_references(), 1);
    }

    #[test]
    fn analyze_helpers_agree() {
        let recs = vec![ok_read(0, "/a/b"), ok_read(5, "/a/c")];
        let by_ref = Analyzer::analyze(recs.iter());
        let by_val = Analyzer::analyze_owned(recs.clone());
        assert_eq!(by_ref.stats, by_val.stats);
        assert_eq!(by_ref.files.file_count(), by_val.files.file_count());
    }
}
