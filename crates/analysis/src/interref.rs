//! Interval between consecutive MSS requests (Figure 7, §5.2.1).
//!
//! The paper finds the mean interval to be ~18 seconds, yet 90% of all
//! requests follow the previous one by less than 10 seconds: I/Os arrive
//! in clusters (multi-file programs and batch scripts).

use fmig_trace::time::Timestamp;
use fmig_trace::TraceRecord;
use serde::{Deserialize, Serialize};

use crate::hist::{LogHistogram, Welford};

/// Tracks gaps between consecutive requests to the whole MSS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapTracker {
    last: Option<Timestamp>,
    gaps: LogHistogram,
    moments: Welford,
}

impl GapTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        GapTracker {
            last: None,
            // 1 second to ~1 day, 4 buckets per decade.
            gaps: LogHistogram::new(1.0, 100_000.0, 4),
            moments: Welford::new(),
        }
    }

    /// Feeds one record (errored requests still hit the MSS and count).
    pub fn observe(&mut self, rec: &TraceRecord) {
        if let Some(prev) = self.last {
            let gap = rec.start.seconds_since(prev).max(0) as f64;
            self.gaps.record_count(gap.max(0.5));
            self.moments.push(gap);
        }
        self.last = Some(rec.start);
    }

    /// Number of gaps observed (requests - 1).
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Mean gap in seconds (§5.2.1 reports ~18 s at full scale).
    pub fn mean_gap_s(&self) -> f64 {
        self.moments.mean()
    }

    /// Fraction of gaps at or below `s` seconds (Figure 7's CDF).
    pub fn fraction_le(&self, s: f64) -> f64 {
        self.gaps.fraction_le(s)
    }

    /// CDF points `(gap_s, fraction)` for rendering Figure 7.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        self.gaps
            .cdf_points()
            .into_iter()
            .map(|(edge, frac, _)| (edge, frac))
            .collect()
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &LogHistogram {
        &self.gaps
    }
}

impl Default for GapTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn at(t: i64) -> TraceRecord {
        TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(t), 1, "/f", 1)
    }

    #[test]
    fn gaps_are_differences_between_consecutive_requests() {
        let mut g = GapTracker::new();
        for t in [0, 3, 6, 306] {
            g.observe(&at(t));
        }
        assert_eq!(g.count(), 3);
        assert!((g.mean_gap_s() - 102.0).abs() < 1e-9);
        assert!((g.fraction_le(10.0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_request_has_no_gap() {
        let mut g = GapTracker::new();
        g.observe(&at(5));
        assert_eq!(g.count(), 0);
        assert_eq!(g.mean_gap_s(), 0.0);
        assert_eq!(g.fraction_le(10.0), 0.0);
    }

    #[test]
    fn clustered_arrivals_match_figure_7_shape() {
        let mut g = GapTracker::new();
        let mut t = 0;
        // Bursts of 10 requests 3 s apart, bursts 5 minutes apart: ~90%
        // of gaps are short.
        for _ in 0..50 {
            for _ in 0..10 {
                g.observe(&at(t));
                t += 3;
            }
            t += 300;
        }
        let f = g.fraction_le(10.0);
        assert!(f > 0.85, "short-gap fraction {f}");
        let pts = g.cdf_points();
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_gaps_are_counted_not_dropped() {
        let mut g = GapTracker::new();
        g.observe(&at(7));
        g.observe(&at(7));
        assert_eq!(g.count(), 1);
        assert!((g.fraction_le(1.0) - 1.0).abs() < 1e-12);
    }
}
