//! Calendar-binned transfer-rate series (Figures 4, 5, and 6).
//!
//! * [`HourlyProfile`] — average GB transferred per hour of the day,
//!   split into reads and writes (Figure 4);
//! * [`WeeklyProfile`] — the same by day of week, Sunday first (Figure 5);
//! * [`WeekSeries`] — average data rate for each week of the trace,
//!   showing read growth and holiday dips (Figure 6).

use fmig_trace::time::Timestamp;
use fmig_trace::{Direction, TraceRecord};
use serde::{Deserialize, Serialize};

/// Bytes and request counts accumulated into hour-of-day bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlyProfile {
    /// Bytes per hour bin, `[read, write]` major.
    bytes: [[u64; 24]; 2],
    /// Requests per hour bin.
    requests: [[u64; 24]; 2],
    /// Distinct days observed, to turn sums into per-day averages.
    first_day: Option<i64>,
    last_day: i64,
}

impl HourlyProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        HourlyProfile {
            bytes: [[0; 24]; 2],
            requests: [[0; 24]; 2],
            first_day: None,
            last_day: 0,
        }
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let hour = rec.start.hour_of_day() as usize;
        let dir = dir_index(rec.direction());
        self.bytes[dir][hour] += rec.file_size;
        self.requests[dir][hour] += 1;
        let day = rec.start.trace_day();
        if self.first_day.is_none() {
            self.first_day = Some(day);
        }
        self.last_day = self.last_day.max(day);
    }

    /// Days spanned by the observations (at least 1 once non-empty).
    pub fn days_observed(&self) -> i64 {
        match self.first_day {
            None => 0,
            Some(first) => (self.last_day - first + 1).max(1),
        }
    }

    /// Average GB transferred during the given hour of a day (Figure 4's
    /// y-axis), for one direction.
    pub fn gb_per_hour(&self, dir: Direction, hour: u8) -> f64 {
        let days = self.days_observed();
        if days == 0 {
            return 0.0;
        }
        self.bytes[dir_index(dir)][hour as usize] as f64 / 1e9 / days as f64
    }

    /// Average total (read + write) GB during the given hour.
    pub fn total_gb_per_hour(&self, hour: u8) -> f64 {
        self.gb_per_hour(Direction::Read, hour) + self.gb_per_hour(Direction::Write, hour)
    }

    /// Requests observed in an hour bin for one direction.
    pub fn requests_at(&self, dir: Direction, hour: u8) -> u64 {
        self.requests[dir_index(dir)][hour as usize]
    }

    /// The full 24-point series for one direction.
    pub fn series(&self, dir: Direction) -> [f64; 24] {
        core::array::from_fn(|h| self.gb_per_hour(dir, h as u8))
    }

    /// Ratio of the busiest working hour (8–17) to the quietest small
    /// hour (0–6) for a direction — the paper's headline contrast.
    pub fn peak_to_trough(&self, dir: Direction) -> f64 {
        let s = self.series(dir);
        let peak = s[8..17].iter().copied().fold(0.0, f64::max);
        let trough = s[0..6].iter().copied().fold(f64::MAX, f64::min);
        if trough <= 0.0 {
            f64::INFINITY
        } else {
            peak / trough
        }
    }
}

impl Default for HourlyProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// Bytes accumulated into day-of-week bins (Sunday = 0, as in Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyProfile {
    bytes: [[u64; 7]; 2],
    requests: [[u64; 7]; 2],
    first_day: Option<i64>,
    last_day: i64,
}

impl WeeklyProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        WeeklyProfile {
            bytes: [[0; 7]; 2],
            requests: [[0; 7]; 2],
            first_day: None,
            last_day: 0,
        }
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let dow = rec.start.weekday().index() as usize;
        let dir = dir_index(rec.direction());
        self.bytes[dir][dow] += rec.file_size;
        self.requests[dir][dow] += 1;
        let day = rec.start.trace_day();
        if self.first_day.is_none() {
            self.first_day = Some(day);
        }
        self.last_day = self.last_day.max(day);
    }

    /// Average GB per hour on the given weekday for one direction
    /// (Figure 5's y-axis).
    pub fn gb_per_hour(&self, dir: Direction, weekday: u8) -> f64 {
        let days = match self.first_day {
            None => return 0.0,
            Some(first) => (self.last_day - first + 1).max(1),
        };
        // Roughly days/7 instances of each weekday were observed.
        let instances = (days as f64 / 7.0).max(1.0);
        self.bytes[dir_index(dir)][weekday as usize] as f64 / 1e9 / instances / 24.0
    }

    /// The 7-point series for one direction, Sunday first.
    pub fn series(&self, dir: Direction) -> [f64; 7] {
        core::array::from_fn(|d| self.gb_per_hour(dir, d as u8))
    }

    /// Mean weekend rate over mean weekday rate for a direction.
    pub fn weekend_to_weekday(&self, dir: Direction) -> f64 {
        let s = self.series(dir);
        let weekend = (s[0] + s[6]) / 2.0;
        let weekday = s[1..6].iter().sum::<f64>() / 5.0;
        if weekday <= 0.0 {
            0.0
        } else {
            weekend / weekday
        }
    }
}

impl Default for WeeklyProfile {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-week average data rates across the whole trace (Figure 6).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WeekSeries {
    /// Bytes per trace week, `[read, write]` major; index = week number.
    bytes: [Vec<u64>; 2],
}

impl WeekSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let week = rec.start.trace_week();
        if week < 0 {
            return;
        }
        let dir = dir_index(rec.direction());
        let v = &mut self.bytes[dir];
        if v.len() <= week as usize {
            v.resize(week as usize + 1, 0);
        }
        v[week as usize] += rec.file_size;
    }

    /// Number of weeks with any observation.
    pub fn weeks(&self) -> usize {
        self.bytes[0].len().max(self.bytes[1].len())
    }

    /// Average GB/hour during the given week for one direction.
    pub fn gb_per_hour(&self, dir: Direction, week: usize) -> f64 {
        let v = &self.bytes[dir_index(dir)];
        let bytes = v.get(week).copied().unwrap_or(0);
        bytes as f64 / 1e9 / (7.0 * 24.0)
    }

    /// Whole-series slope proxy: mean rate of the last quarter over the
    /// first quarter (Figure 6 shows reads roughly doubling).
    pub fn growth_ratio(&self, dir: Direction) -> f64 {
        let n = self.weeks();
        if n < 8 {
            return 1.0;
        }
        let q = n / 4;
        let early: f64 = (0..q).map(|w| self.gb_per_hour(dir, w)).sum::<f64>() / q as f64;
        let late: f64 = (n - q..n).map(|w| self.gb_per_hour(dir, w)).sum::<f64>() / q as f64;
        if early <= 0.0 {
            1.0
        } else {
            late / early
        }
    }

    /// Rate in the week containing the given instant over the mean of its
    /// four neighbouring weeks — below 1.0 marks a dip (holidays).
    pub fn dip_ratio(&self, dir: Direction, at: Timestamp) -> f64 {
        let week = at.trace_week().max(0) as usize;
        let mut neighbours = Vec::new();
        for w in week.saturating_sub(2)..=week + 2 {
            if w != week && w < self.weeks() {
                neighbours.push(self.gb_per_hour(dir, w));
            }
        }
        if neighbours.is_empty() {
            return 1.0;
        }
        let base: f64 = neighbours.iter().sum::<f64>() / neighbours.len() as f64;
        if base <= 0.0 {
            1.0
        } else {
            self.gb_per_hour(dir, week) / base
        }
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::Read => 0,
        Direction::Write => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::{DAY, HOUR, TRACE_EPOCH};
    use fmig_trace::Endpoint;

    fn read_gb(t: i64, gb: f64) -> TraceRecord {
        TraceRecord::read(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(t),
            (gb * 1e9) as u64,
            "/f",
            1,
        )
    }

    fn write_gb(t: i64, gb: f64) -> TraceRecord {
        TraceRecord::write(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(t),
            (gb * 1e9) as u64,
            "/f",
            1,
        )
    }

    #[test]
    fn hourly_profile_averages_over_days() {
        let mut p = HourlyProfile::new();
        // 2 GB at 10:00 on day 0 and 4 GB at 10:00 on day 1.
        p.observe(&read_gb(10 * HOUR, 2.0));
        p.observe(&read_gb(DAY + 10 * HOUR, 4.0));
        assert_eq!(p.days_observed(), 2);
        assert!((p.gb_per_hour(Direction::Read, 10) - 3.0).abs() < 1e-9);
        assert_eq!(p.gb_per_hour(Direction::Write, 10), 0.0);
        assert_eq!(p.requests_at(Direction::Read, 10), 2);
        assert!((p.total_gb_per_hour(10) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn peak_to_trough_contrasts_day_and_night() {
        let mut p = HourlyProfile::new();
        for h in 0..6 {
            p.observe(&read_gb(h * HOUR, 1.0)); // night floor
        }
        p.observe(&read_gb(10 * HOUR, 8.0)); // day peak
        assert!((p.peak_to_trough(Direction::Read) - 8.0).abs() < 1e-9);
        // An empty trough reads as infinite contrast, not a panic.
        let mut q = HourlyProfile::new();
        q.observe(&read_gb(10 * HOUR, 8.0));
        assert!(q.peak_to_trough(Direction::Read).is_infinite());
    }

    #[test]
    fn weekly_profile_bins_by_weekday() {
        let mut p = WeeklyProfile::new();
        // Epoch is a Monday; +5 days is Saturday.
        p.observe(&read_gb(10 * HOUR, 7.0 * 24.0)); // Monday
        p.observe(&read_gb(5 * DAY + 10 * HOUR, 7.0 * 24.0)); // Saturday
        let s = p.series(Direction::Read);
        assert!(s[1] > 0.0, "monday bin");
        assert!(s[6] > 0.0, "saturday bin");
        assert_eq!(s[0], 0.0);
        // One observed instance of each weekday in a 6-day window.
        assert!((s[1] - 7.0).abs() < 1e-9, "monday rate {}", s[1]);
    }

    #[test]
    fn weekend_ratio_detects_dips() {
        let mut p = WeeklyProfile::new();
        for d in 0..14 {
            let gb = if (d + 1) % 7 == 0 || (d + 1) % 7 == 6 {
                1.0
            } else {
                5.0
            };
            p.observe(&read_gb(d * DAY + 12 * HOUR, gb));
        }
        let r = p.weekend_to_weekday(Direction::Read);
        assert!(r < 0.5, "weekend/weekday {r}");
    }

    #[test]
    fn week_series_tracks_growth() {
        let mut s = WeekSeries::new();
        for w in 0..20 {
            // Reads ramp up, writes stay flat.
            s.observe(&read_gb(w * 7 * DAY + 12 * HOUR, 1.0 + w as f64 * 0.2));
            s.observe(&write_gb(w * 7 * DAY + 13 * HOUR, 2.0));
        }
        assert_eq!(s.weeks(), 20);
        assert!(s.growth_ratio(Direction::Read) > 1.5);
        assert!((s.growth_ratio(Direction::Write) - 1.0).abs() < 0.01);
    }

    #[test]
    fn dip_ratio_flags_a_quiet_week() {
        let mut s = WeekSeries::new();
        for w in 0..10 {
            let gb = if w == 5 { 1.0 } else { 4.0 };
            s.observe(&read_gb(w * 7 * DAY + 12 * HOUR, gb));
        }
        let dip = s.dip_ratio(Direction::Read, TRACE_EPOCH.add_secs(5 * 7 * DAY + DAY));
        assert!(dip < 0.5, "dip ratio {dip}");
        let normal = s.dip_ratio(Direction::Read, TRACE_EPOCH.add_secs(2 * 7 * DAY + DAY));
        assert!(normal > 0.8, "normal ratio {normal}");
    }

    #[test]
    fn empty_profiles_are_zero() {
        let p = HourlyProfile::new();
        assert_eq!(p.days_observed(), 0);
        assert_eq!(p.gb_per_hour(Direction::Read, 12), 0.0);
        let w = WeeklyProfile::new();
        assert_eq!(w.gb_per_hour(Direction::Read, 0), 0.0);
        let s = WeekSeries::new();
        assert_eq!(s.weeks(), 0);
        assert_eq!(s.growth_ratio(Direction::Read), 1.0);
    }
}
