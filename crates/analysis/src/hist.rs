//! Histogram and moment primitives shared by the analyses.
//!
//! The paper's figures are cumulative distributions over quantities
//! spanning many orders of magnitude (file sizes from KB to 200 MB,
//! intervals from seconds to a year), so the workhorse here is a
//! logarithmically bucketed histogram with optional per-bucket weights
//! (bytes) for the "data" curves of Figures 10–12.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Log-bucketed histogram with per-bucket counts and weights.
///
/// Buckets cover `[lo, hi)` geometrically; values below `lo` land in the
/// first bucket and values at or above `hi` in a dedicated overflow
/// bucket, so no observation is dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    weights: Vec<f64>,
    total_count: u64,
    total_weight: f64,
    weight_sum_x: f64,
}

impl LogHistogram {
    /// Creates a histogram over `[lo, hi)` with the given number of
    /// buckets per decade.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `buckets_per_decade > 0`.
    pub fn new(lo: f64, hi: f64, buckets_per_decade: u32) -> Self {
        assert!(lo > 0.0 && hi > lo, "bad histogram range [{lo}, {hi})");
        assert!(
            buckets_per_decade > 0,
            "need at least one bucket per decade"
        );
        let decades = (hi / lo).log10();
        let n = (decades * buckets_per_decade as f64).ceil() as usize + 1;
        let ratio = 10f64.powf(1.0 / buckets_per_decade as f64);
        LogHistogram {
            lo,
            ratio,
            counts: vec![0; n + 1], // last slot is the overflow bucket
            weights: vec![0.0; n + 1],
            total_count: 0,
            total_weight: 0.0,
            weight_sum_x: 0.0,
        }
    }

    /// Records an observation with weight equal to its value
    /// (convenient for byte-weighted curves).
    pub fn record_weighted_by_value(&mut self, x: f64) {
        self.record(x, x);
    }

    /// Records an observation with unit weight.
    pub fn record_count(&mut self, x: f64) {
        self.record(x, 0.0);
    }

    /// Records an observation with an explicit weight.
    pub fn record(&mut self, x: f64, weight: f64) {
        let idx = self.bucket_of(x);
        self.counts[idx] += 1;
        self.weights[idx] += weight;
        self.total_count += 1;
        self.total_weight += weight;
        self.weight_sum_x += x;
    }

    fn bucket_of(&self, x: f64) -> usize {
        if x < self.lo {
            return 0;
        }
        let idx = (x / self.lo).log10() / self.ratio.log10();
        (idx as usize + 1).min(self.counts.len() - 1)
    }

    /// Upper edge of bucket `i` (`inf` for the overflow bucket).
    pub fn bucket_edge(&self, i: usize) -> f64 {
        if i + 1 >= self.counts.len() {
            f64::INFINITY
        } else {
            self.lo * self.ratio.powi(i as i32)
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total_count
    }

    /// Sum of weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Mean of the observed values.
    pub fn mean(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            self.weight_sum_x / self.total_count as f64
        }
    }

    /// Fraction of observations at or below `x` (bucket-resolution).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.total_count == 0 {
            return 0.0;
        }
        let idx = self.bucket_of(x);
        let hits: u64 = self.counts[..=idx].iter().sum();
        hits as f64 / self.total_count as f64
    }

    /// Fraction of total weight in observations at or below `x`.
    pub fn weight_fraction_le(&self, x: f64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let idx = self.bucket_of(x);
        let hits: f64 = self.weights[..=idx].iter().sum();
        hits / self.total_weight
    }

    /// Approximate `p`-quantile of the count distribution (bucket upper
    /// edge).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile {p} out of range");
        if self.total_count == 0 {
            return 0.0;
        }
        let target = (p * self.total_count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bucket_edge(i);
            }
        }
        f64::INFINITY
    }

    /// Cumulative (edge, count-fraction, weight-fraction) points over
    /// non-empty buckets — the raw material for the paper's CDF figures.
    pub fn cdf_points(&self) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::new();
        if self.total_count == 0 {
            return out;
        }
        let mut c_acc = 0u64;
        let mut w_acc = 0.0;
        for i in 0..self.counts.len() {
            if self.counts[i] == 0 && self.weights[i] == 0.0 {
                continue;
            }
            c_acc += self.counts[i];
            w_acc += self.weights[i];
            out.push((
                self.bucket_edge(i),
                c_acc as f64 / self.total_count as f64,
                if self.total_weight > 0.0 {
                    w_acc / self.total_weight
                } else {
                    0.0
                },
            ));
        }
        out
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bucket layouts.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "layout mismatch");
        assert!((self.lo - other.lo).abs() < 1e-12, "layout mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        for (a, b) in self.weights.iter_mut().zip(other.weights.iter()) {
            *a += b;
        }
        self.total_count += other.total_count;
        self.total_weight += other.total_weight;
        self.weight_sum_x += other.weight_sum_x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_hand_calculation() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert!((w.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = LogHistogram::new(1.0, 1000.0, 4);
        for x in [0.5, 2.0, 20.0, 200.0, 5000.0] {
            h.record_count(x);
        }
        assert_eq!(h.count(), 5);
        assert!((h.fraction_le(2.0) - 0.4).abs() < 1e-9);
        assert!((h.fraction_le(300.0) - 0.8).abs() < 1e-9);
        assert!((h.fraction_le(1e9) - 1.0).abs() < 1e-9);
        assert!((h.mean() - 1044.5).abs() < 1e-9);
    }

    #[test]
    fn weight_fractions_follow_bytes_not_counts() {
        let mut h = LogHistogram::new(1e3, 1e9, 4);
        // Many tiny files, one huge file: counts say "mostly small",
        // weights say "mostly large" — the Figure 11 phenomenon.
        for _ in 0..99 {
            h.record_weighted_by_value(1e4);
        }
        h.record_weighted_by_value(1e8);
        assert!(h.fraction_le(1e5) > 0.98);
        assert!(h.weight_fraction_le(1e5) < 0.02);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LogHistogram::new(1.0, 1e6, 8);
        for i in 1..=1000 {
            h.record_count(i as f64);
        }
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        assert!(q10 <= q50 && q50 <= q90, "{q10} {q50} {q90}");
        // Within a bucket's width of the true values.
        assert!((q50 / 500.0) < 1.55 && (q50 / 500.0) > 0.65, "median {q50}");
    }

    #[test]
    fn cdf_points_end_at_one() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        for x in [1.0, 3.0, 10.0, 1e4] {
            h.record_weighted_by_value(x);
        }
        let pts = h.cdf_points();
        let last = pts.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-12);
        assert!((last.2 - 1.0).abs() < 1e-12);
        // Monotone non-decreasing fractions.
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1 && w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = LogHistogram::new(1.0, 1e4, 4);
        let mut b = LogHistogram::new(1.0, 1e4, 4);
        let mut both = LogHistogram::new(1.0, 1e4, 4);
        for i in 1..200 {
            let x = (i * 37 % 9000) as f64 + 1.0;
            if i % 2 == 0 {
                a.record_weighted_by_value(x);
            } else {
                b.record_weighted_by_value(x);
            }
            both.record_weighted_by_value(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    #[should_panic(expected = "bad histogram range")]
    fn rejects_bad_range() {
        let _ = LogHistogram::new(10.0, 1.0, 4);
    }
}
