//! Dynamic file-size distributions (Figure 10).
//!
//! Figure 10 plots four cumulative curves over the size of each
//! *transfer* (a file counts once per access): files read, files written,
//! data read, data written. The paper's headline: 40% of all requests are
//! for files of 1 MB or less, yet such files carry under 1% of the data —
//! and writes show a bump near 8 MB.

use fmig_trace::{Direction, TraceRecord};
use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;

/// Per-access size distributions, split by direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicSizes {
    read: LogHistogram,
    write: LogHistogram,
}

impl DynamicSizes {
    /// Creates empty distributions (1 KB – 400 MB, 4 buckets/decade).
    pub fn new() -> Self {
        DynamicSizes {
            read: LogHistogram::new(1e3, 4.0e8, 4),
            write: LogHistogram::new(1e3, 4.0e8, 4),
        }
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let h = match rec.direction() {
            Direction::Read => &mut self.read,
            Direction::Write => &mut self.write,
        };
        h.record_weighted_by_value(rec.file_size.max(1) as f64);
    }

    /// The histogram for one direction.
    pub fn histogram(&self, dir: Direction) -> &LogHistogram {
        match dir {
            Direction::Read => &self.read,
            Direction::Write => &self.write,
        }
    }

    /// Fraction of accesses (either direction) at or below `bytes`.
    pub fn fraction_le(&self, bytes: f64) -> f64 {
        let total = self.read.count() + self.write.count();
        if total == 0 {
            return 0.0;
        }
        let hits = self.read.fraction_le(bytes) * self.read.count() as f64
            + self.write.fraction_le(bytes) * self.write.count() as f64;
        hits / total as f64
    }

    /// Fraction of transferred bytes in accesses at or below `bytes`.
    pub fn data_fraction_le(&self, bytes: f64) -> f64 {
        let total = self.read.total_weight() + self.write.total_weight();
        if total <= 0.0 {
            return 0.0;
        }
        (self.read.weight_fraction_le(bytes) * self.read.total_weight()
            + self.write.weight_fraction_le(bytes) * self.write.total_weight())
            / total
    }

    /// Mean transfer size in MB for one direction (Table 3's averages).
    pub fn mean_mb(&self, dir: Direction) -> f64 {
        self.histogram(dir).mean() / 1e6
    }

    /// Figure 10's four curves as `(edge_bytes, files_read, files_written,
    /// data_read, data_written)` cumulative fractions.
    pub fn curves(&self) -> Vec<(f64, f64, f64, f64, f64)> {
        // Union of non-empty edges from both histograms.
        let mut edges: Vec<f64> = self
            .read
            .cdf_points()
            .into_iter()
            .chain(self.write.cdf_points())
            .map(|(e, _, _)| e)
            .collect();
        edges.sort_by(|a, b| a.partial_cmp(b).expect("finite or inf edges"));
        edges.dedup();
        edges
            .into_iter()
            .map(|e| {
                let q = if e.is_finite() { e } else { f64::MAX };
                (
                    e,
                    self.read.fraction_le(q),
                    self.write.fraction_le(q),
                    self.read.weight_fraction_le(q),
                    self.write.weight_fraction_le(q),
                )
            })
            .collect()
    }
}

impl Default for DynamicSizes {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn read(size: u64) -> TraceRecord {
        TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH, size, "/f", 1)
    }

    fn write(size: u64) -> TraceRecord {
        TraceRecord::write(Endpoint::MssDisk, TRACE_EPOCH, size, "/f", 1)
    }

    #[test]
    fn per_direction_histograms() {
        let mut d = DynamicSizes::new();
        d.observe(&read(500_000));
        d.observe(&read(80_000_000));
        d.observe(&write(8_000_000));
        assert_eq!(d.histogram(Direction::Read).count(), 2);
        assert_eq!(d.histogram(Direction::Write).count(), 1);
        assert!((d.fraction_le(1e6) - 1.0 / 3.0).abs() < 1e-9);
        assert!((d.mean_mb(Direction::Write) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn small_requests_carry_little_data() {
        let mut d = DynamicSizes::new();
        for _ in 0..40 {
            d.observe(&read(500_000)); // 40 small reads
        }
        for _ in 0..60 {
            d.observe(&read(100_000_000)); // 60 large reads
        }
        // 40% of requests are <=1MB, but a sliver of the bytes.
        assert!((d.fraction_le(1e6) - 0.4).abs() < 1e-9);
        assert!(d.data_fraction_le(1e6) < 0.01);
    }

    #[test]
    fn curves_are_monotone_and_complete() {
        let mut d = DynamicSizes::new();
        for s in [1_000u64, 100_000, 5_000_000, 80_000_000, 199_000_000] {
            d.observe(&read(s));
            d.observe(&write(s / 2));
        }
        let curves = d.curves();
        assert!(!curves.is_empty());
        let last = curves.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-12 && (last.2 - 1.0).abs() < 1e-12);
        for w in curves.windows(2) {
            assert!(w[0].1 <= w[1].1 && w[0].3 <= w[1].3);
        }
    }

    #[test]
    fn empty_is_zero() {
        let d = DynamicSizes::new();
        assert_eq!(d.fraction_le(1e6), 0.0);
        assert_eq!(d.data_fraction_le(1e6), 0.0);
        assert!(d.curves().is_empty());
    }
}
