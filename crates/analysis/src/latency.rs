//! Latency-to-first-byte distributions from annotated traces (Figure 3
//! and the Table 3 latency rows).
//!
//! Works on any trace whose `startup_latency_s` fields are populated —
//! either real measurements or the output of `fmig-sim`. Keeping this
//! analysis independent of the simulator lets it run on externally
//! collected traces too. Closed-loop policy runs feed measured waits in
//! directly through [`LatencyAnalysis::observe_wait`] and compare
//! policies side by side with [`PolicyLatencyReport`].

use fmig_trace::{DeviceClass, Direction, TraceRecord};
use serde::{Deserialize, Serialize};

use crate::hist::{LogHistogram, Welford};
use crate::report::TextTable;

/// Per (direction × device) latency distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyAnalysis {
    cells: Vec<Vec<Cell>>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Cell {
    hist: LogHistogram,
    moments: Welford,
}

impl Cell {
    fn new() -> Self {
        Cell {
            // 1 second to ~half a day.
            hist: LogHistogram::new(1.0, 40_000.0, 6),
            moments: Welford::new(),
        }
    }
}

impl LatencyAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        LatencyAnalysis {
            cells: vec![vec![Cell::new(); 3], vec![Cell::new(); 3]],
        }
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let Some(device) = rec.mss_device() else {
            return;
        };
        if rec.error.is_some() {
            return;
        }
        self.observe_wait(rec.direction(), device, rec.startup_latency_s as f64);
    }

    /// Feeds one first-byte wait directly — the closed-loop hierarchy
    /// engine's per-reference outcomes carry waits without a
    /// [`TraceRecord`] to wrap them in.
    pub fn observe_wait(&mut self, dir: Direction, device: DeviceClass, wait_s: f64) {
        let cell = &mut self.cells[dir_index(dir)][dev_index(device)];
        cell.hist.record_count(wait_s.max(0.5));
        cell.moments.push(wait_s);
    }

    /// Mean seconds to first byte for a cell (a Table 3 row).
    pub fn mean(&self, dir: Direction, device: DeviceClass) -> f64 {
        self.cells[dir_index(dir)][dev_index(device)].moments.mean()
    }

    /// Mean over both directions for one device.
    pub fn device_mean(&self, device: DeviceClass) -> f64 {
        let r = &self.cells[0][dev_index(device)].moments;
        let w = &self.cells[1][dev_index(device)].moments;
        let n = r.count() + w.count();
        if n == 0 {
            0.0
        } else {
            (r.mean() * r.count() as f64 + w.mean() * w.count() as f64) / n as f64
        }
    }

    /// Mean over all devices for one direction (Table 3's top latency row).
    pub fn direction_mean(&self, dir: Direction) -> f64 {
        let cells = &self.cells[dir_index(dir)];
        let n: u64 = cells.iter().map(|c| c.moments.count()).sum();
        if n == 0 {
            return 0.0;
        }
        cells
            .iter()
            .map(|c| c.moments.mean() * c.moments.count() as f64)
            .sum::<f64>()
            / n as f64
    }

    /// Fraction of requests to `device` (both directions) that reached
    /// the first byte within `s` seconds — Figure 3's CDF.
    pub fn device_fraction_le(&self, device: DeviceClass, s: f64) -> f64 {
        let r = &self.cells[0][dev_index(device)].hist;
        let w = &self.cells[1][dev_index(device)].hist;
        let n = r.count() + w.count();
        if n == 0 {
            return 0.0;
        }
        (r.fraction_le(s) * r.count() as f64 + w.fraction_le(s) * w.count() as f64) / n as f64
    }

    /// Approximate median latency for a device.
    pub fn device_median(&self, device: DeviceClass) -> f64 {
        let mut h = self.cells[0][dev_index(device)].hist.clone();
        h.merge(&self.cells[1][dev_index(device)].hist);
        h.quantile(0.5)
    }

    /// Observations in a cell.
    pub fn count(&self, dir: Direction, device: DeviceClass) -> u64 {
        self.cells[dir_index(dir)][dev_index(device)]
            .moments
            .count()
    }

    /// Figure 3 CDF points for one device `(latency_s, fraction)`.
    pub fn device_cdf(&self, device: DeviceClass) -> Vec<(f64, f64)> {
        let mut h = self.cells[0][dev_index(device)].hist.clone();
        h.merge(&self.cells[1][dev_index(device)].hist);
        h.cdf_points().into_iter().map(|(e, f, _)| (e, f)).collect()
    }

    /// Approximate `p`-quantile of one direction's waits across all
    /// devices (e.g. the p99 first-byte read wait).
    pub fn direction_quantile(&self, dir: Direction, p: f64) -> f64 {
        let cells = &self.cells[dir_index(dir)];
        let mut h = cells[0].hist.clone();
        h.merge(&cells[1].hist);
        h.merge(&cells[2].hist);
        if h.count() == 0 {
            return 0.0;
        }
        h.quantile(p)
    }

    /// Observations in one direction across all devices.
    pub fn direction_count(&self, dir: Direction) -> u64 {
        self.cells[dir_index(dir)]
            .iter()
            .map(|c| c.moments.count())
            .sum()
    }
}

/// Per-policy latency cells: one [`LatencyAnalysis`] per migration
/// policy, fed by closed-loop runs, rendered as a comparison table of
/// simulated first-byte waits (the latency-true counterpart of the
/// miss-ratio winner tables).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyLatencyReport {
    cells: Vec<(String, LatencyAnalysis)>,
}

impl PolicyLatencyReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a policy's cell and returns its analysis for feeding.
    pub fn cell(&mut self, policy: impl Into<String>) -> &mut LatencyAnalysis {
        self.cells.push((policy.into(), LatencyAnalysis::new()));
        &mut self.cells.last_mut().expect("just pushed").1
    }

    /// The policies in insertion order with their analyses.
    pub fn cells(&self) -> impl Iterator<Item = (&str, &LatencyAnalysis)> {
        self.cells.iter().map(|(n, a)| (n.as_str(), a))
    }

    /// Number of policy cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no policy has been added.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The policy with the lowest p99 first-byte read wait, paired
    /// with that wait in seconds — the tail-latency winner column that
    /// sits next to the miss-ratio winner in the sweep report. Ties
    /// keep the earliest-inserted policy; `None` until some cell has
    /// read observations.
    pub fn best_by_p99(&self) -> Option<(&str, f64)> {
        self.cells
            .iter()
            .filter(|(_, a)| a.direction_count(Direction::Read) > 0)
            .map(|(n, a)| (n.as_str(), a.direction_quantile(Direction::Read, 0.99)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Renders mean / median / p99 read waits per policy.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "policy",
            "reads",
            "mean read wait (s)",
            "median (s)",
            "p99 (s)",
        ]);
        for (name, a) in &self.cells {
            t.row([
                name.clone(),
                a.direction_count(Direction::Read).to_string(),
                format!("{:.1}", a.direction_mean(Direction::Read)),
                format!("{:.1}", a.direction_quantile(Direction::Read, 0.5)),
                format!("{:.1}", a.direction_quantile(Direction::Read, 0.99)),
            ]);
        }
        t.render()
    }
}

impl Default for LatencyAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::Read => 0,
        Direction::Write => 1,
    }
}

fn dev_index(device: DeviceClass) -> usize {
    match device {
        DeviceClass::Disk => 0,
        DeviceClass::TapeSilo => 1,
        DeviceClass::TapeManual => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn rec(ep: Endpoint, read: bool, latency: u32) -> TraceRecord {
        let mut r = if read {
            TraceRecord::read(ep, TRACE_EPOCH, 1, "/f", 1)
        } else {
            TraceRecord::write(ep, TRACE_EPOCH, 1, "/f", 1)
        };
        r.startup_latency_s = latency;
        r
    }

    #[test]
    fn means_by_cell() {
        let mut a = LatencyAnalysis::new();
        a.observe(&rec(Endpoint::MssTapeSilo, true, 100));
        a.observe(&rec(Endpoint::MssTapeSilo, true, 140));
        a.observe(&rec(Endpoint::MssTapeSilo, false, 80));
        assert!((a.mean(Direction::Read, DeviceClass::TapeSilo) - 120.0).abs() < 1e-9);
        assert!((a.mean(Direction::Write, DeviceClass::TapeSilo) - 80.0).abs() < 1e-9);
        assert!((a.device_mean(DeviceClass::TapeSilo) - 320.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.count(Direction::Read, DeviceClass::TapeSilo), 2);
    }

    #[test]
    fn direction_mean_weights_by_count() {
        let mut a = LatencyAnalysis::new();
        a.observe(&rec(Endpoint::MssDisk, true, 10));
        a.observe(&rec(Endpoint::MssDisk, true, 10));
        a.observe(&rec(Endpoint::MssTapeManual, true, 250));
        assert!((a.direction_mean(Direction::Read) - 90.0).abs() < 1e-9);
        assert_eq!(a.direction_mean(Direction::Write), 0.0);
    }

    #[test]
    fn errors_are_excluded() {
        let mut a = LatencyAnalysis::new();
        let mut bad = rec(Endpoint::MssDisk, true, 5);
        bad.error = Some(fmig_trace::ErrorKind::FileNotFound);
        a.observe(&bad);
        assert_eq!(a.count(Direction::Read, DeviceClass::Disk), 0);
    }

    #[test]
    fn figure3_shape_manual_slower_than_silo_slower_than_disk() {
        let mut a = LatencyAnalysis::new();
        for i in 0..100 {
            a.observe(&rec(Endpoint::MssDisk, true, 2 + i % 10));
            a.observe(&rec(Endpoint::MssTapeSilo, true, 60 + i % 60));
            a.observe(&rec(Endpoint::MssTapeManual, true, 150 + (i % 40) * 10));
        }
        let at60 = |d| a.device_fraction_le(d, 60.0);
        assert!(at60(DeviceClass::Disk) > at60(DeviceClass::TapeSilo));
        assert!(at60(DeviceClass::TapeSilo) > at60(DeviceClass::TapeManual));
        assert!(a.device_median(DeviceClass::Disk) < a.device_median(DeviceClass::TapeSilo));
        let cdf = a.device_cdf(DeviceClass::TapeManual);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_analysis_is_zero() {
        let a = LatencyAnalysis::new();
        assert_eq!(a.mean(Direction::Read, DeviceClass::Disk), 0.0);
        assert_eq!(a.device_mean(DeviceClass::Disk), 0.0);
        assert_eq!(a.device_fraction_le(DeviceClass::Disk, 100.0), 0.0);
        assert_eq!(a.direction_quantile(Direction::Read, 0.99), 0.0);
        assert_eq!(a.direction_count(Direction::Write), 0);
    }

    #[test]
    fn observe_wait_matches_record_observation() {
        let mut by_record = LatencyAnalysis::new();
        let mut by_wait = LatencyAnalysis::new();
        for lat in [3, 40, 120] {
            by_record.observe(&rec(Endpoint::MssTapeSilo, true, lat));
            by_wait.observe_wait(Direction::Read, DeviceClass::TapeSilo, lat as f64);
        }
        assert_eq!(by_record, by_wait);
        assert_eq!(by_wait.direction_count(Direction::Read), 3);
        assert!(by_wait.direction_quantile(Direction::Read, 0.99) >= 100.0);
    }

    #[test]
    fn policy_latency_report_renders_per_policy_rows() {
        let mut report = PolicyLatencyReport::new();
        assert!(report.is_empty());
        let stp = report.cell("STP(1.4)");
        for w in [2.0, 4.0, 90.0] {
            stp.observe_wait(Direction::Read, DeviceClass::TapeSilo, w);
        }
        let lru = report.cell("LRU");
        for w in [5.0, 8.0, 300.0] {
            lru.observe_wait(Direction::Read, DeviceClass::TapeSilo, w);
        }
        assert_eq!(report.len(), 2);
        let text = report.render();
        assert!(text.contains("STP(1.4)"));
        assert!(text.contains("LRU"));
        assert!(text.contains("p99"));
        // Cells are independent: STP's mean (32.0) vs LRU's (104.3).
        let names: Vec<&str> = report.cells().map(|(n, _)| n).collect();
        assert_eq!(names, ["STP(1.4)", "LRU"]);
        let means: Vec<f64> = report
            .cells()
            .map(|(_, a)| a.direction_mean(Direction::Read))
            .collect();
        assert!(means[0] < means[1]);
    }

    #[test]
    fn best_by_p99_picks_the_tail_winner() {
        let mut report = PolicyLatencyReport::new();
        assert_eq!(report.best_by_p99(), None);
        let a = report.cell("LRU");
        for w in [10.0, 20.0, 400.0] {
            a.observe_wait(Direction::Read, DeviceClass::TapeSilo, w);
        }
        // Worse mean but a far better tail: the p99 column must pick it.
        let b = report.cell("LRU-MAD");
        for w in [60.0, 70.0, 80.0] {
            b.observe_wait(Direction::Read, DeviceClass::TapeSilo, w);
        }
        let (name, p99) = report.best_by_p99().expect("two populated cells");
        assert_eq!(name, "LRU-MAD");
        assert!(p99 < 100.0);
    }
}
