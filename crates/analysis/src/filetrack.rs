//! Per-file reference tracking: Figures 8 and 9, Figure 11, and the §6
//! eight-hour repeat statistic.
//!
//! §5.3's method is applied verbatim: "this part of the analysis included
//! at most one read and one write from any eight hour period" — each
//! file's reads (writes) within eight hours of the last *counted* read
//! (write) are folded away before reference counts and interreference
//! intervals are computed. The raw repeats are retained separately,
//! because §6 uses them ("about one third of all requests came within
//! eight hours of another request for the same file").

use std::collections::HashMap;

use fmig_trace::time::{DAY, HOUR};
use fmig_trace::{Direction, TraceRecord};
use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;

const DEDUP_WINDOW_S: i64 = 8 * HOUR;

/// Per-file running state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct FileState {
    size: u64,
    reads: u32,
    writes: u32,
    last_counted_read: i64,
    last_counted_write: i64,
    last_counted_any: i64,
    last_raw: i64,
}

/// Aggregate per-file statistics for the whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileTracker {
    files: HashMap<Box<str>, FileState>,
    /// Interreference intervals between counted accesses, in seconds.
    intervals: LogHistogram,
    raw_requests: u64,
    raw_repeats_within_8h: u64,
}

impl FileTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FileTracker {
            files: HashMap::new(),
            // 1 minute to ~2 years.
            intervals: LogHistogram::new(60.0, 7.0e7, 4),
            raw_requests: 0,
            raw_repeats_within_8h: 0,
        }
    }

    /// Feeds one successful record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        let t = rec.start.as_unix();
        self.raw_requests += 1;
        let state = self
            .files
            .entry(rec.mss_path.as_str().into())
            .or_insert(FileState {
                size: rec.file_size,
                reads: 0,
                writes: 0,
                last_counted_read: i64::MIN / 2,
                last_counted_write: i64::MIN / 2,
                last_counted_any: i64::MIN / 2,
                last_raw: i64::MIN / 2,
            });
        // §6 statistic: raw repeats within eight hours.
        if t - state.last_raw <= DEDUP_WINDOW_S {
            self.raw_repeats_within_8h += 1;
        }
        state.last_raw = t;
        // Writes may grow the file; keep the latest size.
        if rec.direction() == Direction::Write {
            state.size = rec.file_size;
        }
        // §5.3 dedup rule, per direction.
        let counted = match rec.direction() {
            Direction::Read => {
                if t - state.last_counted_read >= DEDUP_WINDOW_S {
                    state.reads += 1;
                    state.last_counted_read = t;
                    true
                } else {
                    false
                }
            }
            Direction::Write => {
                if t - state.last_counted_write >= DEDUP_WINDOW_S {
                    state.writes += 1;
                    state.last_counted_write = t;
                    true
                } else {
                    false
                }
            }
        };
        if counted {
            if state.last_counted_any > i64::MIN / 4 {
                let gap = (t - state.last_counted_any).max(60) as f64;
                self.intervals.record_count(gap);
            }
            state.last_counted_any = t;
        }
    }

    /// Number of distinct files referenced.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total referenced bytes (each file counted once at its final size).
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size).sum()
    }

    /// Average file size in MB (Table 4's "average file size").
    pub fn avg_file_mb(&self) -> f64 {
        if self.files.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / 1e6 / self.files.len() as f64
        }
    }

    /// Fraction of files satisfying a predicate over (reads, writes).
    pub fn fraction_where(&self, pred: impl Fn(u32, u32) -> bool) -> f64 {
        if self.files.is_empty() {
            return 0.0;
        }
        let hits = self
            .files
            .values()
            .filter(|f| pred(f.reads, f.writes))
            .count();
        hits as f64 / self.files.len() as f64
    }

    /// Figure 8 headline: fraction of files with zero counted reads.
    pub fn never_read(&self) -> f64 {
        self.fraction_where(|r, _| r == 0)
    }

    /// Fraction of files with zero counted writes.
    pub fn never_written(&self) -> f64 {
        self.fraction_where(|_, w| w == 0)
    }

    /// Fraction accessed exactly once (§5.3: 57%).
    pub fn accessed_once(&self) -> f64 {
        self.fraction_where(|r, w| r + w == 1)
    }

    /// Fraction accessed exactly twice (§5.3: 19%).
    pub fn accessed_twice(&self) -> f64 {
        self.fraction_where(|r, w| r + w == 2)
    }

    /// Fraction written once and never read (§5.3: 44%).
    pub fn write_once_never_read(&self) -> f64 {
        self.fraction_where(|r, w| w == 1 && r == 0)
    }

    /// Fraction referenced more than `n` times (Figure 8's tail).
    pub fn referenced_more_than(&self, n: u32) -> f64 {
        self.fraction_where(move |r, w| r + w > n)
    }

    /// Median total reference count (the paper reports 1, versus
    /// Smith's 2 at SLAC).
    pub fn median_references(&self) -> u32 {
        if self.files.is_empty() {
            return 0;
        }
        let mut counts: Vec<u32> = self.files.values().map(|f| f.reads + f.writes).collect();
        counts.sort_unstable();
        counts[counts.len() / 2]
    }

    /// CDF of per-file total reference counts `(count, fraction_le)`
    /// for Figure 8's "total" curve.
    pub fn reference_count_cdf(&self) -> Vec<(u32, f64)> {
        let mut counts: Vec<u32> = self.files.values().map(|f| f.reads + f.writes).collect();
        counts.sort_unstable();
        let n = counts.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = counts[i];
            let mut j = i;
            while j < n && counts[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Per-direction reference-count CDF for Figure 8's read/write curves.
    pub fn direction_count_cdf(&self, dir: Direction) -> Vec<(u32, f64)> {
        let mut counts: Vec<u32> = self
            .files
            .values()
            .map(|f| match dir {
                Direction::Read => f.reads,
                Direction::Write => f.writes,
            })
            .collect();
        counts.sort_unstable();
        let n = counts.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = counts[i];
            let mut j = i;
            while j < n && counts[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Fraction of counted per-file interreference intervals at or below
    /// `s` seconds (Figure 9; the paper reports 70% under one day).
    pub fn interval_fraction_le(&self, s: f64) -> f64 {
        self.intervals.fraction_le(s)
    }

    /// Fraction of intervals under one day.
    pub fn intervals_under_1d(&self) -> f64 {
        self.interval_fraction_le(DAY as f64)
    }

    /// The interval histogram (Figure 9's CDF).
    pub fn intervals(&self) -> &LogHistogram {
        &self.intervals
    }

    /// §6: fraction of raw requests within eight hours of a previous
    /// request for the same file (paper: about one third).
    pub fn repeat_within_8h_fraction(&self) -> f64 {
        if self.raw_requests == 0 {
            0.0
        } else {
            self.raw_repeats_within_8h as f64 / self.raw_requests as f64
        }
    }

    /// Static (per-file, counted once) size histogram for Figure 11.
    pub fn size_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new(1e3, 4.0e8, 4);
        for f in self.files.values() {
            h.record_weighted_by_value(f.size.max(1) as f64);
        }
        h
    }
}

impl Default for FileTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn read(path: &str, t: i64, size: u64) -> TraceRecord {
        TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(t), size, path, 1)
    }

    fn write(path: &str, t: i64, size: u64) -> TraceRecord {
        TraceRecord::write(Endpoint::MssDisk, TRACE_EPOCH.add_secs(t), size, path, 1)
    }

    #[test]
    fn dedup_folds_requests_within_eight_hours() {
        let mut ft = FileTracker::new();
        ft.observe(&read("/a", 0, 10));
        ft.observe(&read("/a", 100, 10)); // within 8h: not counted
        ft.observe(&read("/a", 9 * HOUR, 10)); // counted
        assert_eq!(ft.file_count(), 1);
        assert!((ft.fraction_where(|r, _| r == 2) - 1.0).abs() < 1e-12);
        // One counted interval (0 -> 9h).
        assert!((ft.interval_fraction_le(10.0 * HOUR as f64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reads_and_writes_dedup_independently() {
        let mut ft = FileTracker::new();
        ft.observe(&write("/a", 0, 10));
        ft.observe(&read("/a", 60, 10)); // a read within 8h of a write still counts
        let f = ft.files.get("/a").unwrap();
        assert_eq!(f.reads, 1);
        assert_eq!(f.writes, 1);
    }

    #[test]
    fn headline_fractions() {
        let mut ft = FileTracker::new();
        ft.observe(&write("/w-only", 0, 10));
        ft.observe(&read("/r-only", 0, 10));
        ft.observe(&write("/both", 0, 10));
        ft.observe(&read("/both", 10 * HOUR, 10));
        assert_eq!(ft.file_count(), 3);
        assert!((ft.never_read() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ft.never_written() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ft.accessed_once() - 2.0 / 3.0).abs() < 1e-12);
        assert!((ft.accessed_twice() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ft.write_once_never_read() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ft.median_references(), 1);
        assert_eq!(ft.referenced_more_than(10), 0.0);
    }

    #[test]
    fn raw_repeats_counted_against_dedup() {
        let mut ft = FileTracker::new();
        ft.observe(&read("/a", 0, 10));
        ft.observe(&read("/a", 100, 10));
        ft.observe(&read("/a", 200, 10));
        ft.observe(&read("/b", 300, 10));
        // Two of four raw requests repeat /a within 8 hours.
        assert!((ft.repeat_within_8h_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sizes_take_latest_write() {
        let mut ft = FileTracker::new();
        ft.observe(&write("/a", 0, 1_000_000));
        ft.observe(&write("/a", 10 * HOUR, 2_000_000));
        ft.observe(&read("/b", 0, 5_000_000));
        assert_eq!(ft.total_bytes(), 7_000_000);
        assert!((ft.avg_file_mb() - 3.5).abs() < 1e-9);
        let h = ft.size_histogram();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn reference_count_cdf_is_monotone_and_ends_at_one() {
        let mut ft = FileTracker::new();
        for (i, n) in [1u32, 1, 2, 5, 40].iter().enumerate() {
            for k in 0..*n {
                ft.observe(&read(&format!("/f{i}"), (k as i64) * 9 * HOUR, 10));
            }
        }
        let cdf = ft.reference_count_cdf();
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // Two of five files referenced exactly once.
        assert!((cdf[0].1 - 0.4).abs() < 1e-12);
        assert_eq!(cdf[0].0, 1);
        // One file referenced more than 10 (counted) times.
        assert!((ft.referenced_more_than(10) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn direction_cdfs_split_reads_and_writes() {
        let mut ft = FileTracker::new();
        ft.observe(&write("/a", 0, 1));
        ft.observe(&read("/b", 0, 1));
        let reads = ft.direction_count_cdf(Direction::Read);
        // Half the files have 0 reads.
        assert_eq!(reads[0], (0, 0.5));
        let writes = ft.direction_count_cdf(Direction::Write);
        assert_eq!(writes[0], (0, 0.5));
    }

    #[test]
    fn empty_tracker_is_zero() {
        let ft = FileTracker::new();
        assert_eq!(ft.file_count(), 0);
        assert_eq!(ft.avg_file_mb(), 0.0);
        assert_eq!(ft.never_read(), 0.0);
        assert_eq!(ft.median_references(), 0);
        assert_eq!(ft.repeat_within_8h_fraction(), 0.0);
        assert!(ft.reference_count_cdf().is_empty());
    }
}
