//! Directory statistics (Figure 12 and the Table 4 namespace rows).
//!
//! Directories are reconstructed from the MSS paths in the trace: every
//! proper prefix of a referenced file's path is a directory. The paper
//! finds 75% of directories hold zero or one file (intermediate nodes
//! with only subdirectories count as zero), 90% hold ten or fewer, yet
//! 5% of directories hold about half of all files and data — and the
//! largest holds 24,926 files.

use std::collections::HashMap;

use fmig_trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Per-directory accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct DirEntry {
    files: u32,
    bytes: u64,
}

/// Directory census over a trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DirStats {
    dirs: HashMap<Box<str>, DirEntry>,
    /// First-seen guard so each file contributes once.
    seen_files: HashMap<Box<str>, u64>,
    max_depth: u32,
}

impl DirStats {
    /// Creates an empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one successful record; only the first reference to a path
    /// contributes (Figure 12 counts each file once).
    pub fn observe(&mut self, rec: &TraceRecord) {
        if self.seen_files.contains_key(rec.mss_path.as_str()) {
            return;
        }
        self.seen_files
            .insert(rec.mss_path.as_str().into(), rec.file_size);
        let Some((dir, _file)) = rec.mss_path.rsplit_once('/') else {
            return;
        };
        let dir = if dir.is_empty() { "/" } else { dir };
        // Credit the containing directory with the file...
        let entry = self.dirs.entry(dir.into()).or_default();
        entry.files += 1;
        entry.bytes += rec.file_size;
        // ...and make sure every ancestor exists as a (possibly empty)
        // directory.
        let mut depth = 0u32;
        let bytes = dir.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'/' && i > 0 {
                depth += 1;
                let ancestor = &dir[..i];
                self.dirs.entry(ancestor.into()).or_default();
            }
        }
        // The containing dir itself adds one level; files one more.
        self.max_depth = self.max_depth.max(depth + 1);
    }

    /// Number of directories (including empty intermediates).
    pub fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    /// Number of distinct files seen.
    pub fn file_count(&self) -> usize {
        self.seen_files.len()
    }

    /// Files in the fullest directory (Table 4: 24,926 at full scale).
    pub fn largest_dir(&self) -> u32 {
        self.dirs.values().map(|d| d.files).max().unwrap_or(0)
    }

    /// Maximum directory depth observed (Table 4: 12).
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Fraction of directories with at most `n` files directly inside.
    pub fn fraction_with_at_most(&self, n: u32) -> f64 {
        if self.dirs.is_empty() {
            return 0.0;
        }
        let hits = self.dirs.values().filter(|d| d.files <= n).count();
        hits as f64 / self.dirs.len() as f64
    }

    /// Fraction of files living in directories with more than `n` files
    /// (the paper: "over half of all files and data were in large
    /// directories that contained more than 100 files").
    pub fn files_in_dirs_larger_than(&self, n: u32) -> f64 {
        let total: u64 = self.dirs.values().map(|d| d.files as u64).sum();
        if total == 0 {
            return 0.0;
        }
        let in_large: u64 = self
            .dirs
            .values()
            .filter(|d| d.files > n)
            .map(|d| d.files as u64)
            .sum();
        in_large as f64 / total as f64
    }

    /// Fraction of bytes living in directories with more than `n` files.
    pub fn data_in_dirs_larger_than(&self, n: u32) -> f64 {
        let total: u64 = self.dirs.values().map(|d| d.bytes).sum();
        if total == 0 {
            return 0.0;
        }
        let in_large: u64 = self
            .dirs
            .values()
            .filter(|d| d.files > n)
            .map(|d| d.bytes)
            .sum();
        in_large as f64 / total as f64
    }

    /// Share of files held by the fullest `top` fraction of directories.
    pub fn files_in_top_dirs(&self, top: f64) -> f64 {
        if self.dirs.is_empty() {
            return 0.0;
        }
        let mut counts: Vec<u32> = self.dirs.values().map(|d| d.files).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if total == 0 {
            return 0.0;
        }
        let k = ((counts.len() as f64 * top).ceil() as usize).clamp(1, counts.len());
        let sum: u64 = counts[..k].iter().map(|&c| c as u64).sum();
        sum as f64 / total as f64
    }

    /// Figure 12 curves: cumulative fraction of directories, files, and
    /// data over directory size, as `(dir_size, dirs_le, files_le,
    /// data_le)`.
    pub fn curves(&self) -> Vec<(u32, f64, f64, f64)> {
        let mut entries: Vec<(u32, u64)> = self.dirs.values().map(|d| (d.files, d.bytes)).collect();
        entries.sort_unstable_by_key(|&(f, _)| f);
        let n_dirs = entries.len() as f64;
        let total_files: u64 = entries.iter().map(|&(f, _)| f as u64).sum();
        let total_bytes: u64 = entries.iter().map(|&(_, b)| b).sum();
        let mut out = Vec::new();
        let mut acc_dirs = 0usize;
        let mut acc_files = 0u64;
        let mut acc_bytes = 0u64;
        let mut i = 0;
        while i < entries.len() {
            let size = entries[i].0;
            while i < entries.len() && entries[i].0 == size {
                acc_dirs += 1;
                acc_files += entries[i].0 as u64;
                acc_bytes += entries[i].1;
                i += 1;
            }
            out.push((
                size,
                acc_dirs as f64 / n_dirs,
                if total_files > 0 {
                    acc_files as f64 / total_files as f64
                } else {
                    0.0
                },
                if total_bytes > 0 {
                    acc_bytes as f64 / total_bytes as f64
                } else {
                    0.0
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn rec(path: &str, size: u64) -> TraceRecord {
        TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH, size, path, 1)
    }

    #[test]
    fn counts_files_once_and_finds_ancestors() {
        let mut d = DirStats::new();
        d.observe(&rec("/u1/ccm/run1/day001", 100));
        d.observe(&rec("/u1/ccm/run1/day001", 100)); // re-reference ignored
        d.observe(&rec("/u1/ccm/run1/day002", 100));
        d.observe(&rec("/u1/notes", 50));
        // Dirs: /u1, /u1/ccm, /u1/ccm/run1.
        assert_eq!(d.dir_count(), 3);
        assert_eq!(d.file_count(), 3);
        assert_eq!(d.largest_dir(), 2);
        // /u1/ccm holds no files directly.
        assert!((d.fraction_with_at_most(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.max_depth(), 3);
    }

    #[test]
    fn large_dir_share() {
        let mut d = DirStats::new();
        for i in 0..150 {
            d.observe(&rec(&format!("/u1/big/f{i}"), 10));
        }
        d.observe(&rec("/u2/small/x", 1000));
        assert!((d.files_in_dirs_larger_than(100) - 150.0 / 151.0).abs() < 1e-9);
        // Data share counts bytes: 1500 vs 1000.
        assert!((d.data_in_dirs_larger_than(100) - 0.6).abs() < 1e-9);
        let top = d.files_in_top_dirs(0.25); // top 1 of 4 dirs
        assert!(top > 0.9, "top share {top}");
    }

    #[test]
    fn curves_monotone_complete() {
        let mut d = DirStats::new();
        for i in 0..20 {
            d.observe(&rec(&format!("/u/d{}/f{}", i % 4, i), 5));
        }
        let c = d.curves();
        let last = c.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-12);
        assert!((last.2 - 1.0).abs() < 1e-12);
        assert!((last.3 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn rootless_paths_are_tolerated() {
        let mut d = DirStats::new();
        d.observe(&rec("bare-name", 1));
        assert_eq!(d.dir_count(), 0);
        assert_eq!(d.file_count(), 1);
        d.observe(&rec("/top", 1));
        // "/top" lives in the root directory "/".
        assert_eq!(d.dir_count(), 1);
    }

    #[test]
    fn empty_census_is_zero() {
        let d = DirStats::new();
        assert_eq!(d.dir_count(), 0);
        assert_eq!(d.largest_dir(), 0);
        assert_eq!(d.fraction_with_at_most(1), 0.0);
        assert_eq!(d.files_in_top_dirs(0.05), 0.0);
        assert!(d.curves().is_empty());
    }
}
