//! Calendar and timestamp arithmetic for the two-year trace window.
//!
//! The paper's trace covers October 1, 1990 through September 30, 1992 —
//! 731 days (1992 is a leap year). Daily and weekly periodicity (Figures
//! 4–5), week-of-trace series (Figure 6), and the Thanksgiving/Christmas
//! read-rate dips all need real civil-calendar arithmetic, which this
//! module implements from scratch (the offline crate set has no `chrono`).
//!
//! Dates use the proleptic Gregorian calendar via Howard Hinnant's
//! `days_from_civil` algorithm; timestamps are seconds since the Unix
//! epoch, interpreted in the machine's local (NCAR, Mountain) time for the
//! purposes of hour-of-day binning — the traces themselves were logged in
//! local time, so no zone conversion is applied.

use serde::{Deserialize, Serialize};

/// Seconds in one minute.
pub const MINUTE: i64 = 60;
/// Seconds in one hour.
pub const HOUR: i64 = 3600;
/// Seconds in one day.
pub const DAY: i64 = 86_400;
/// Seconds in one week.
pub const WEEK: i64 = 7 * DAY;

/// First instant of the study: 1990-10-01 00:00:00 (a Monday).
pub const TRACE_EPOCH: Timestamp = Timestamp::from_civil_parts(1990, 10, 1);

/// Exclusive end of the study: 1992-10-01 00:00:00.
pub const TRACE_END: Timestamp = Timestamp::from_civil_parts(1992, 10, 1);

/// Length of the traced period in seconds (731 days, as in §5.2.1).
pub const TRACE_SECONDS: i64 = TRACE_END.0 - TRACE_EPOCH.0;

/// Number of whole days in the traced period.
pub const TRACE_DAYS: i64 = TRACE_SECONDS / DAY;

/// An absolute point in time, stored as seconds since the Unix epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Builds a timestamp from raw seconds since the Unix epoch.
    pub const fn from_unix(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Builds a timestamp for midnight at the start of a civil date.
    pub const fn from_civil_parts(year: i32, month: u8, day: u8) -> Self {
        Timestamp(days_from_civil(year, month, day) * DAY)
    }

    /// Builds a timestamp from a [`CivilDate`] plus a time of day.
    pub fn from_civil(date: CivilDate, hour: u8, minute: u8, second: u8) -> Self {
        Timestamp(
            days_from_civil(date.year, date.month, date.day) * DAY
                + hour as i64 * HOUR
                + minute as i64 * MINUTE
                + second as i64,
        )
    }

    /// Raw seconds since the Unix epoch.
    pub const fn as_unix(self) -> i64 {
        self.0
    }

    /// Seconds elapsed since the study epoch ([`TRACE_EPOCH`]).
    pub const fn since_epoch(self) -> i64 {
        self.0 - TRACE_EPOCH.0
    }

    /// The civil date containing this instant.
    pub fn civil(self) -> CivilDate {
        civil_from_days(self.0.div_euclid(DAY))
    }

    /// Day of the week, with Sunday = 0 as in the paper's Figure 5 axis.
    pub fn weekday(self) -> Weekday {
        Weekday::from_index(((self.0.div_euclid(DAY) + 4).rem_euclid(7)) as u8)
    }

    /// Hour of the day in `0..24` (0 = midnight, as in Figure 4).
    pub fn hour_of_day(self) -> u8 {
        (self.0.rem_euclid(DAY) / HOUR) as u8
    }

    /// Whole days since the study epoch (may be negative before it).
    pub fn trace_day(self) -> i64 {
        self.since_epoch().div_euclid(DAY)
    }

    /// Whole weeks since the study epoch; the study spans weeks `0..104`.
    pub fn trace_week(self) -> i64 {
        self.since_epoch().div_euclid(WEEK)
    }

    /// Returns `self` advanced by `secs` seconds.
    #[must_use]
    pub const fn add_secs(self, secs: i64) -> Self {
        Timestamp(self.0 + secs)
    }

    /// Seconds from `earlier` to `self` (negative if `self` is earlier).
    pub const fn seconds_since(self, earlier: Timestamp) -> i64 {
        self.0 - earlier.0
    }

    /// True if the instant falls within the study window.
    pub fn in_trace_window(self) -> bool {
        self >= TRACE_EPOCH && self < TRACE_END
    }

    /// The holiday this instant falls on, if any (drives the Figure 6 dips).
    pub fn holiday(self) -> Option<Holiday> {
        self.civil().holiday()
    }
}

impl core::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let d = self.civil();
        let tod = self.0.rem_euclid(DAY);
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            d.year,
            d.month,
            d.day,
            tod / HOUR,
            (tod % HOUR) / MINUTE,
            tod % MINUTE
        )
    }
}

/// A Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Gregorian year (e.g. 1990).
    pub year: i32,
    /// Month in `1..=12`.
    pub month: u8,
    /// Day of month in `1..=31`.
    pub day: u8,
}

impl CivilDate {
    /// Builds a date, panicking on out-of-range month/day.
    ///
    /// # Panics
    ///
    /// Panics if `month` is not in `1..=12` or `day` not in `1..=31`.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!((1..=31).contains(&day), "day {day} out of range");
        CivilDate { year, month, day }
    }

    /// Day of the week for this date, Sunday = 0.
    pub fn weekday(self) -> Weekday {
        Timestamp::from_civil_parts(self.year, self.month, self.day).weekday()
    }

    /// The US holiday on this date, if any.
    ///
    /// Figure 6 shows read-rate drops "around Thanksgiving and Christmas
    /// for both 1990 and 1991"; we recognise the holidays that empty the
    /// NCAR machine room of scientists.
    pub fn holiday(self) -> Option<Holiday> {
        // Thanksgiving: fourth Thursday of November; the lab is quiet on
        // the following Friday too.
        if self.month == 11 {
            let thanksgiving = nth_weekday_of_month(self.year, 11, Weekday::Thursday, 4);
            if self.day == thanksgiving {
                return Some(Holiday::Thanksgiving);
            }
            if self.day == thanksgiving + 1 {
                return Some(Holiday::ThanksgivingFriday);
            }
        }
        // Christmas through New Year shutdown.
        if self.month == 12 && (24..=31).contains(&self.day) {
            return Some(Holiday::Christmas);
        }
        if self.month == 1 && self.day == 1 {
            return Some(Holiday::NewYear);
        }
        if self.month == 7 && self.day == 4 {
            return Some(Holiday::IndependenceDay);
        }
        None
    }

    /// True in leap years of the Gregorian calendar.
    pub fn is_leap_year(self) -> bool {
        let y = self.year;
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }

    /// Number of days in this date's month.
    pub fn days_in_month(self) -> u8 {
        match self.month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if self.is_leap_year() => 29,
            2 => 28,
            m => unreachable!("invalid month {m}"),
        }
    }
}

impl core::fmt::Display for CivilDate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Day of the week with the paper's Sunday-first numbering (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Weekday {
    /// Day 0 in Figure 5.
    Sunday = 0,
    /// Day 1.
    Monday = 1,
    /// Day 2.
    Tuesday = 2,
    /// Day 3.
    Wednesday = 3,
    /// Day 4.
    Thursday = 4,
    /// Day 5.
    Friday = 5,
    /// Day 6.
    Saturday = 6,
}

impl Weekday {
    /// All days in Figure 5 order (Sunday first).
    pub const ALL: [Weekday; 7] = [
        Weekday::Sunday,
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
    ];

    /// Converts the paper's 0..7 (Sunday-first) index into a weekday.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 7`.
    pub fn from_index(idx: u8) -> Self {
        Self::ALL[idx as usize]
    }

    /// The paper's Sunday-first index in `0..7`.
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// True for Saturday and Sunday — the Figure 5 read-rate trough.
    pub const fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

impl core::fmt::Display for Weekday {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Weekday::Sunday => "Sun",
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
        };
        f.write_str(name)
    }
}

/// US holidays that visibly dent interactive read traffic (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Holiday {
    /// Fourth Thursday of November.
    Thanksgiving,
    /// The Friday after Thanksgiving.
    ThanksgivingFriday,
    /// December 24–31 shutdown.
    Christmas,
    /// January 1.
    NewYear,
    /// July 4.
    IndependenceDay,
}

impl Holiday {
    /// Multiplier applied to the interactive (read) arrival rate on this
    /// holiday; write traffic is unaffected ("the Cray doesn't take a
    /// Christmas vacation while the scientists do", §5.2).
    pub fn read_rate_factor(self) -> f64 {
        match self {
            Holiday::Thanksgiving => 0.25,
            Holiday::ThanksgivingFriday => 0.40,
            Holiday::Christmas => 0.30,
            Holiday::NewYear => 0.35,
            Holiday::IndependenceDay => 0.45,
        }
    }
}

/// Days since 1970-01-01 for a Gregorian `(y, m, d)` (Hinnant's algorithm).
pub const fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - (m <= 2) as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = m as i64;
    let d = d as i64;
    let mp = if m > 2 { m - 3 } else { m + 9 };
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Gregorian date for a count of days since 1970-01-01 (inverse of
/// [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> CivilDate {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
    CivilDate {
        year: (y + (m <= 2) as i64) as i32,
        month: m,
        day: d,
    }
}

/// Day-of-month of the `n`-th given weekday of a month (n is 1-based).
///
/// # Panics
///
/// Panics if the month does not contain an `n`-th such weekday.
pub fn nth_weekday_of_month(year: i32, month: u8, weekday: Weekday, n: u8) -> u8 {
    let first = CivilDate::new(year, month, 1);
    let first_wd = first.weekday().index();
    let offset = (weekday.index() + 7 - first_wd) % 7;
    let day = 1 + offset + (n - 1) * 7;
    assert!(
        day <= first.days_in_month(),
        "{year}-{month:02} has no {n}th weekday {weekday}"
    );
    day
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_october_first() {
        assert_eq!(TRACE_EPOCH.civil(), CivilDate::new(1990, 10, 1));
        assert_eq!(TRACE_EPOCH.weekday(), Weekday::Monday);
    }

    #[test]
    fn trace_window_is_731_days() {
        assert_eq!(TRACE_DAYS, 731);
        assert_eq!(TRACE_SECONDS, 731 * DAY);
    }

    #[test]
    fn unix_epoch_is_thursday() {
        assert_eq!(Timestamp::from_unix(0).weekday(), Weekday::Thursday);
        assert_eq!(Timestamp::from_unix(0).civil(), CivilDate::new(1970, 1, 1));
    }

    #[test]
    fn civil_roundtrip_over_trace_window() {
        let mut day = TRACE_EPOCH.as_unix() / DAY;
        while day < TRACE_END.as_unix() / DAY {
            let d = civil_from_days(day);
            assert_eq!(days_from_civil(d.year, d.month, d.day), day);
            day += 1;
        }
    }

    #[test]
    fn hour_of_day_and_trace_day() {
        let t = TRACE_EPOCH.add_secs(3 * DAY + 14 * HOUR + 17 * MINUTE);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.trace_day(), 3);
        assert_eq!(t.trace_week(), 0);
        assert_eq!(t.weekday(), Weekday::Thursday);
    }

    #[test]
    fn trace_week_spans_0_to_104() {
        assert_eq!(TRACE_EPOCH.trace_week(), 0);
        assert_eq!(TRACE_END.add_secs(-1).trace_week(), 104);
    }

    #[test]
    fn thanksgiving_1990_and_1991() {
        // 1990: November 22; 1991: November 28 (both fourth Thursdays).
        assert_eq!(nth_weekday_of_month(1990, 11, Weekday::Thursday, 4), 22);
        assert_eq!(nth_weekday_of_month(1991, 11, Weekday::Thursday, 4), 28);
        assert_eq!(
            CivilDate::new(1990, 11, 22).holiday(),
            Some(Holiday::Thanksgiving)
        );
        assert_eq!(
            CivilDate::new(1991, 11, 29).holiday(),
            Some(Holiday::ThanksgivingFriday)
        );
    }

    #[test]
    fn christmas_window() {
        assert_eq!(
            CivilDate::new(1991, 12, 25).holiday(),
            Some(Holiday::Christmas)
        );
        assert_eq!(CivilDate::new(1991, 12, 23).holiday(), None);
        assert_eq!(CivilDate::new(1992, 1, 1).holiday(), Some(Holiday::NewYear));
    }

    #[test]
    fn leap_year_1992() {
        assert!(CivilDate::new(1992, 2, 1).is_leap_year());
        assert!(!CivilDate::new(1990, 2, 1).is_leap_year());
        assert_eq!(CivilDate::new(1992, 2, 1).days_in_month(), 29);
    }

    #[test]
    fn display_formats() {
        let t = Timestamp::from_civil(CivilDate::new(1991, 3, 7), 9, 5, 2);
        assert_eq!(t.to_string(), "1991-03-07 09:05:02");
        assert_eq!(t.civil().to_string(), "1991-03-07");
    }

    #[test]
    fn weekday_index_roundtrip() {
        for wd in Weekday::ALL {
            assert_eq!(Weekday::from_index(wd.index()), wd);
        }
        assert!(Weekday::Saturday.is_weekend());
        assert!(!Weekday::Wednesday.is_weekend());
    }

    #[test]
    fn negative_timestamps_behave() {
        let t = Timestamp::from_unix(-1);
        assert_eq!(t.civil(), CivilDate::new(1969, 12, 31));
        assert_eq!(t.hour_of_day(), 23);
    }
}
