//! The trace record and its supporting enums (Table 2 of the paper).
//!
//! A record describes one explicit MSS request made from the Cray with the
//! UNICOS `lread`/`lwrite` commands: where the data came from and went to,
//! when the request started, how long the MSS took to deliver the first
//! byte (startup latency), how long the transfer ran, the file size, both
//! file names, and the requesting user.

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// One endpoint of a transfer — either the Cray or one of the three MSS
/// storage classes (§3.1: 3380 disk, StorageTek silo, shelved tape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The Cray Y-MP's local disks (the requesting side).
    Cray,
    /// IBM 3380 disk attached to the MSS control processor.
    MssDisk,
    /// A 3480 cartridge inside the StorageTek 4400 automated silo.
    MssTapeSilo,
    /// A shelved cartridge requiring an operator mount.
    MssTapeManual,
}

impl Endpoint {
    /// The MSS storage class of this endpoint, or `None` for the Cray.
    pub const fn device_class(self) -> Option<DeviceClass> {
        match self {
            Endpoint::Cray => None,
            Endpoint::MssDisk => Some(DeviceClass::Disk),
            Endpoint::MssTapeSilo => Some(DeviceClass::TapeSilo),
            Endpoint::MssTapeManual => Some(DeviceClass::TapeManual),
        }
    }

    /// Short mnemonic used by the trace codec.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Endpoint::Cray => "cray",
            Endpoint::MssDisk => "disk",
            Endpoint::MssTapeSilo => "silo",
            Endpoint::MssTapeManual => "shelf",
        }
    }

    /// Parses the codec mnemonic back into an endpoint.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "cray" => Endpoint::Cray,
            "disk" => Endpoint::MssDisk,
            "silo" => Endpoint::MssTapeSilo,
            "shelf" => Endpoint::MssTapeManual,
            _ => return None,
        })
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The three MSS storage classes the paper breaks Table 3 down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// MSS magnetic disk (IBM 3380).
    Disk,
    /// Robot-mounted tape (StorageTek 4400 ACS).
    TapeSilo,
    /// Operator-mounted shelved tape.
    TapeManual,
}

impl DeviceClass {
    /// All classes in the paper's Table 3 row order.
    pub const ALL: [DeviceClass; 3] = [
        DeviceClass::Disk,
        DeviceClass::TapeSilo,
        DeviceClass::TapeManual,
    ];

    /// Human-readable label matching the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            DeviceClass::Disk => "Disk",
            DeviceClass::TapeSilo => "Tape (silo)",
            DeviceClass::TapeManual => "Tape (manual)",
        }
    }

    /// The MSS-side endpoint for this class.
    pub const fn endpoint(self) -> Endpoint {
        match self {
            DeviceClass::Disk => Endpoint::MssDisk,
            DeviceClass::TapeSilo => Endpoint::MssTapeSilo,
            DeviceClass::TapeManual => Endpoint::MssTapeManual,
        }
    }
}

impl core::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Transfer direction as seen from the Cray (§5.2: reads are human-driven,
/// writes machine-driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// MSS → Cray.
    Read,
    /// Cray → MSS.
    Write,
}

impl Direction {
    /// Both directions in the paper's column order.
    pub const ALL: [Direction; 2] = [Direction::Read, Direction::Write];

    /// Label used in tables ("Reads"/"Writes").
    pub const fn label(self) -> &'static str {
        match self {
            Direction::Read => "Reads",
            Direction::Write => "Writes",
        }
    }
}

impl core::fmt::Display for Direction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a request failed (§5.1: 4.76% of the 3,688,817 raw references).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The requested bitfile does not exist — "the most common error".
    FileNotFound,
    /// Unrecoverable media (tape/disk) error.
    MediaError,
    /// The transfer was cut short before completion.
    PrematureTermination,
}

impl ErrorKind {
    /// All kinds, in flag-code order (code 1, 2, 3; 0 means no error).
    pub const ALL: [ErrorKind; 3] = [
        ErrorKind::FileNotFound,
        ErrorKind::MediaError,
        ErrorKind::PrematureTermination,
    ];

    /// Flag-field code for this kind (`1..=3`).
    pub const fn code(self) -> u8 {
        match self {
            ErrorKind::FileNotFound => 1,
            ErrorKind::MediaError => 2,
            ErrorKind::PrematureTermination => 3,
        }
    }

    /// Decodes a flag-field code; `0` and unknown codes yield `None`.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorKind::FileNotFound),
            2 => Some(ErrorKind::MediaError),
            3 => Some(ErrorKind::PrematureTermination),
            _ => None,
        }
    }
}

impl core::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ErrorKind::FileNotFound => "file not found",
            ErrorKind::MediaError => "media error",
            ErrorKind::PrematureTermination => "premature termination",
        };
        f.write_str(s)
    }
}

/// A single trace record: one MSS request with the Table 2 fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Device the data came from.
    pub source: Endpoint,
    /// Device the data is going to.
    pub destination: Endpoint,
    /// Instant the request was issued on the Cray.
    pub start: Timestamp,
    /// Seconds from request issue until the first byte moved (queueing +
    /// mount + seek).
    pub startup_latency_s: u32,
    /// Milliseconds the data transfer itself took.
    pub transfer_ms: u64,
    /// File size in bytes (MSS files are capped at 200 MB, §3.1).
    pub file_size: u64,
    /// Bitfile name on the MSS.
    pub mss_path: String,
    /// File name on the requesting computer.
    pub local_path: String,
    /// Numeric id of the requesting user.
    pub uid: u32,
    /// Failure recorded for this request, if any.
    pub error: Option<ErrorKind>,
    /// Whether the data was compressed in flight.
    pub compressed: bool,
}

impl TraceRecord {
    /// Builds a successful read of `size` bytes from an MSS device.
    ///
    /// Latency and transfer time start at zero; the simulator fills them
    /// in, or the workload generator synthesises them.
    pub fn read(
        device: Endpoint,
        start: Timestamp,
        size: u64,
        mss_path: impl Into<String>,
        uid: u32,
    ) -> Self {
        let mss_path = mss_path.into();
        let local_path = derive_local_path(&mss_path);
        TraceRecord {
            source: device,
            destination: Endpoint::Cray,
            start,
            startup_latency_s: 0,
            transfer_ms: 0,
            file_size: size,
            mss_path,
            local_path,
            uid,
            error: None,
            compressed: false,
        }
    }

    /// Builds a successful write of `size` bytes to an MSS device.
    pub fn write(
        device: Endpoint,
        start: Timestamp,
        size: u64,
        mss_path: impl Into<String>,
        uid: u32,
    ) -> Self {
        let mss_path = mss_path.into();
        let local_path = derive_local_path(&mss_path);
        TraceRecord {
            source: Endpoint::Cray,
            destination: device,
            start,
            startup_latency_s: 0,
            transfer_ms: 0,
            file_size: size,
            mss_path,
            local_path,
            uid,
            error: None,
            compressed: false,
        }
    }

    /// Transfer direction implied by the endpoints.
    ///
    /// A record whose source is the Cray is a write; anything flowing out
    /// of an MSS device is a read.
    pub fn direction(&self) -> Direction {
        if self.source == Endpoint::Cray {
            Direction::Write
        } else {
            Direction::Read
        }
    }

    /// The MSS storage class serving this request.
    ///
    /// `None` only for malformed records with no MSS endpoint.
    pub fn mss_device(&self) -> Option<DeviceClass> {
        self.source
            .device_class()
            .or_else(|| self.destination.device_class())
    }

    /// True if the request completed without error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// File size in megabytes (10^6 bytes, as the paper reports sizes).
    pub fn size_mb(&self) -> f64 {
        self.file_size as f64 / 1.0e6
    }

    /// Instant the first byte moved.
    pub fn first_byte_at(&self) -> Timestamp {
        self.start.add_secs(self.startup_latency_s as i64)
    }

    /// Instant the transfer finished.
    ///
    /// `transfer_ms` is carried through at millisecond resolution and
    /// rounded to the nearest whole second at the [`Timestamp`]
    /// boundary, so sub-second transfers do not collapse onto
    /// [`Self::first_byte_at`].
    pub fn completed_at(&self) -> Timestamp {
        self.first_byte_at()
            .add_secs(((self.transfer_ms + 500) / 1000) as i64)
    }
}

/// Derives the Cray-local scratch path the paper's Table 2 pairs with each
/// MSS bitfile name.
fn derive_local_path(mss_path: &str) -> String {
    match mss_path.rsplit_once('/') {
        Some((_, base)) => format!("/tmp/wk/{base}"),
        None => format!("/tmp/wk/{mss_path}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TRACE_EPOCH;

    #[test]
    fn read_and_write_directions() {
        let r = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH, 1 << 20, "/A/b/c", 7);
        assert_eq!(r.direction(), Direction::Read);
        assert_eq!(r.mss_device(), Some(DeviceClass::Disk));
        let w = TraceRecord::write(Endpoint::MssTapeSilo, TRACE_EPOCH, 1 << 20, "/A/b/c", 7);
        assert_eq!(w.direction(), Direction::Write);
        assert_eq!(w.mss_device(), Some(DeviceClass::TapeSilo));
    }

    #[test]
    fn local_path_mirrors_basename() {
        let r = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH, 1, "/CCM/run9/day004", 7);
        assert_eq!(r.local_path, "/tmp/wk/day004");
        let r2 = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH, 1, "bare", 7);
        assert_eq!(r2.local_path, "/tmp/wk/bare");
    }

    #[test]
    fn endpoint_mnemonics_roundtrip() {
        for ep in [
            Endpoint::Cray,
            Endpoint::MssDisk,
            Endpoint::MssTapeSilo,
            Endpoint::MssTapeManual,
        ] {
            assert_eq!(Endpoint::from_mnemonic(ep.mnemonic()), Some(ep));
        }
        assert_eq!(Endpoint::from_mnemonic("nope"), None);
    }

    #[test]
    fn error_codes_roundtrip() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(ErrorKind::from_code(0), None);
        assert_eq!(ErrorKind::from_code(7), None);
    }

    #[test]
    fn completion_times_accumulate() {
        let mut r = TraceRecord::read(Endpoint::MssTapeSilo, TRACE_EPOCH, 80_000_000, "/x", 1);
        r.startup_latency_s = 85;
        r.transfer_ms = 40_000;
        assert_eq!(r.first_byte_at(), TRACE_EPOCH.add_secs(85));
        assert_eq!(r.completed_at(), TRACE_EPOCH.add_secs(125));
        assert!((r.size_mb() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn completed_at_rounds_transfer_millis_to_nearest_second() {
        let mut r = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH, 1, "/x", 1);
        r.startup_latency_s = 10;
        // Below half a second: rounds down to the first-byte instant.
        r.transfer_ms = 400;
        assert_eq!(r.completed_at(), TRACE_EPOCH.add_secs(10));
        // At or above half a second: carries into the next second
        // instead of truncating to zero.
        r.transfer_ms = 500;
        assert_eq!(r.completed_at(), TRACE_EPOCH.add_secs(11));
        r.transfer_ms = 999;
        assert_eq!(r.completed_at(), TRACE_EPOCH.add_secs(11));
        // Whole-plus-fraction: 1.5 s rounds to 2 s, not the floored 1 s.
        r.transfer_ms = 1_500;
        assert_eq!(r.completed_at(), TRACE_EPOCH.add_secs(12));
    }

    #[test]
    fn device_class_labels_match_paper() {
        assert_eq!(DeviceClass::Disk.label(), "Disk");
        assert_eq!(DeviceClass::TapeSilo.label(), "Tape (silo)");
        assert_eq!(DeviceClass::TapeManual.label(), "Tape (manual)");
        assert_eq!(DeviceClass::TapeManual.endpoint(), Endpoint::MssTapeManual);
    }
}
