//! K-way merge of trace streams.
//!
//! Sites collect logs in monthly chunks (NCAR rotated ~50 MB of raw log
//! per month, §4.1); analyses want one time-ordered stream. This module
//! merges any number of record iterators by start time, preserving the
//! relative order of equal-timestamp records from the same source.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::TraceError;
use crate::record::TraceRecord;
use crate::time::Timestamp;

/// Merges time-sorted record streams into one time-ordered stream.
///
/// Input streams yield `Result<TraceRecord, TraceError>` (the shape
/// [`crate::TraceReader`] produces). Errors surface in-place; the stream
/// that produced an error keeps going.
pub struct MergedTrace<I>
where
    I: Iterator<Item = Result<TraceRecord, TraceError>>,
{
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

#[derive(Debug)]
struct HeapEntry {
    start: Timestamp,
    source: usize,
    record: Result<TraceRecord, TraceError>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start && self.source == other.source
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.start, self.source).cmp(&(other.start, other.source))
    }
}

impl<I> MergedTrace<I>
where
    I: Iterator<Item = Result<TraceRecord, TraceError>>,
{
    /// Builds a merger over the given sources.
    pub fn new(sources: impl IntoIterator<Item = I>) -> Self {
        let mut merged = MergedTrace {
            sources: sources.into_iter().collect(),
            heap: BinaryHeap::new(),
        };
        for idx in 0..merged.sources.len() {
            merged.refill(idx);
        }
        merged
    }

    fn refill(&mut self, source: usize) {
        if let Some(item) = self.sources[source].next() {
            let start = match &item {
                Ok(rec) => rec.start,
                // Surface errors promptly: schedule at the epoch floor.
                Err(_) => Timestamp::from_unix(i64::MIN / 2),
            };
            self.heap.push(Reverse(HeapEntry {
                start,
                source,
                record: item,
            }));
        }
    }
}

impl<I> Iterator for MergedTrace<I>
where
    I: Iterator<Item = Result<TraceRecord, TraceError>>,
{
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse(entry) = self.heap.pop()?;
        self.refill(entry.source);
        Some(entry.record)
    }
}

/// Convenience: merges in-memory sorted record vectors.
pub fn merge_sorted(traces: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let sources = traces
        .into_iter()
        .map(|v| v.into_iter().map(Ok).collect::<Vec<_>>().into_iter());
    MergedTrace::new(sources)
        .map(|r| r.expect("infallible in-memory sources"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Endpoint;
    use crate::time::TRACE_EPOCH;

    fn rec(t: i64, path: &str) -> TraceRecord {
        TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(t), 1, path, 1)
    }

    #[test]
    fn merges_two_sorted_streams() {
        let a = vec![rec(0, "/a0"), rec(10, "/a10"), rec(20, "/a20")];
        let b = vec![rec(5, "/b5"), rec(15, "/b15")];
        let merged = merge_sorted(vec![a, b]);
        let times: Vec<i64> = merged.iter().map(|r| r.start.since_epoch()).collect();
        assert_eq!(times, [0, 5, 10, 15, 20]);
    }

    #[test]
    fn equal_timestamps_prefer_earlier_sources() {
        let a = vec![rec(7, "/a")];
        let b = vec![rec(7, "/b")];
        let merged = merge_sorted(vec![a, b]);
        assert_eq!(merged[0].mss_path, "/a");
        assert_eq!(merged[1].mss_path, "/b");
    }

    #[test]
    fn empty_and_single_sources() {
        assert!(merge_sorted(vec![]).is_empty());
        assert!(merge_sorted(vec![vec![], vec![]]).is_empty());
        let single = merge_sorted(vec![vec![rec(1, "/x")]]);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn errors_pass_through() {
        let good: Vec<Result<TraceRecord, TraceError>> = vec![Ok(rec(3, "/ok"))];
        let bad: Vec<Result<TraceRecord, TraceError>> =
            vec![Err(TraceError::parse(1, "boom")), Ok(rec(9, "/late"))];
        let merged: Vec<_> = MergedTrace::new(vec![good.into_iter(), bad.into_iter()]).collect();
        assert_eq!(merged.len(), 3);
        assert!(merged[0].is_err(), "error should surface first");
        assert!(merged[1].as_ref().is_ok_and(|r| r.mss_path == "/ok"));
        assert!(merged[2].as_ref().is_ok_and(|r| r.mss_path == "/late"));
    }

    #[test]
    fn three_way_merge_is_globally_sorted() {
        let mut traces = Vec::new();
        for s in 0..3i64 {
            traces.push((0..50).map(|i| rec(s + i * 3, "/f")).collect::<Vec<_>>());
        }
        let merged = merge_sorted(traces);
        assert_eq!(merged.len(), 150);
        for w in merged.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }
}
