//! K-way merge of trace streams.
//!
//! Sites collect logs in monthly chunks (NCAR rotated ~50 MB of raw log
//! per month, §4.1); analyses want one time-ordered stream. This module
//! merges any number of record iterators by start time, preserving the
//! relative order of equal-timestamp records from the same source.
//!
//! Errors carry no timestamp of their own, so they are surfaced at the
//! position their source has reached: an error between two records of a
//! source appears immediately before that source's next record, an
//! error after a source's last record appears at that record's start,
//! and a source that never yields a record surfaces its errors after
//! every real record. An error deep in one monthly chunk therefore
//! never leapfrogs valid earlier records from other sources — a
//! stop-on-first-error consumer keeps the valid prefix it deserved.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::TraceError;
use crate::record::TraceRecord;
use crate::time::Timestamp;

/// Merges time-sorted record streams into one time-ordered stream.
///
/// Input streams yield `Result<TraceRecord, TraceError>` (the shape
/// [`crate::TraceReader`] produces). Errors surface in-place — at the
/// stream position their source had reached, see the module docs — and
/// the stream that produced an error keeps going.
pub struct MergedTrace<I>
where
    I: Iterator<Item = Result<TraceRecord, TraceError>>,
{
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Per-source monotone push counter: orders a source's error
    /// entries before the record that anchors their timestamp.
    seq: Vec<u64>,
    /// Start time of the last record each source yielded, if any.
    last_start: Vec<Option<Timestamp>>,
}

#[derive(Debug)]
struct HeapEntry {
    start: Timestamp,
    source: usize,
    seq: u64,
    record: Result<TraceRecord, TraceError>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start && self.source == other.source && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.start, self.source, self.seq).cmp(&(other.start, other.source, other.seq))
    }
}

impl<I> MergedTrace<I>
where
    I: Iterator<Item = Result<TraceRecord, TraceError>>,
{
    /// Builds a merger over the given sources.
    pub fn new(sources: impl IntoIterator<Item = I>) -> Self {
        let sources: Vec<I> = sources.into_iter().collect();
        let n = sources.len();
        let mut merged = MergedTrace {
            sources,
            heap: BinaryHeap::new(),
            seq: vec![0; n],
            last_start: vec![None; n],
        };
        for idx in 0..n {
            merged.refill(idx);
        }
        merged
    }

    /// Pulls from `source` until its next record (or exhaustion),
    /// anchoring any errors encountered on the way at the position the
    /// source has reached.
    fn refill(&mut self, source: usize) {
        let mut pending: Vec<TraceError> = Vec::new();
        loop {
            match self.sources[source].next() {
                Some(Ok(rec)) => {
                    let start = rec.start;
                    self.last_start[source] = Some(start);
                    for err in pending {
                        self.push(source, start, Err(err));
                    }
                    self.push(source, start, Ok(rec));
                    return;
                }
                Some(Err(err)) => pending.push(err),
                None => {
                    // Trailing errors anchor at the source's last
                    // record; a source that never produced one cannot
                    // claim a position, so its errors sort after every
                    // real record.
                    let anchor = self.last_start[source]
                        .unwrap_or_else(|| Timestamp::from_unix(i64::MAX / 2));
                    for err in pending {
                        self.push(source, anchor, Err(err));
                    }
                    return;
                }
            }
        }
    }

    fn push(&mut self, source: usize, start: Timestamp, record: Result<TraceRecord, TraceError>) {
        let seq = self.seq[source];
        self.seq[source] += 1;
        self.heap.push(Reverse(HeapEntry {
            start,
            source,
            seq,
            record,
        }));
    }
}

impl<I> Iterator for MergedTrace<I>
where
    I: Iterator<Item = Result<TraceRecord, TraceError>>,
{
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse(entry) = self.heap.pop()?;
        // Error entries ride ahead of the record that anchors them, so
        // only a popped record means its source needs another pull.
        if entry.record.is_ok() {
            self.refill(entry.source);
        }
        Some(entry.record)
    }
}

/// Convenience: merges in-memory sorted record vectors.
pub fn merge_sorted(traces: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let sources = traces
        .into_iter()
        .map(|v| v.into_iter().map(Ok).collect::<Vec<_>>().into_iter());
    MergedTrace::new(sources)
        .map(|r| r.expect("infallible in-memory sources"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Endpoint;
    use crate::time::TRACE_EPOCH;

    fn rec(t: i64, path: &str) -> TraceRecord {
        TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(t), 1, path, 1)
    }

    #[test]
    fn merges_two_sorted_streams() {
        let a = vec![rec(0, "/a0"), rec(10, "/a10"), rec(20, "/a20")];
        let b = vec![rec(5, "/b5"), rec(15, "/b15")];
        let merged = merge_sorted(vec![a, b]);
        let times: Vec<i64> = merged.iter().map(|r| r.start.since_epoch()).collect();
        assert_eq!(times, [0, 5, 10, 15, 20]);
    }

    #[test]
    fn equal_timestamps_prefer_earlier_sources() {
        let a = vec![rec(7, "/a")];
        let b = vec![rec(7, "/b")];
        let merged = merge_sorted(vec![a, b]);
        assert_eq!(merged[0].mss_path, "/a");
        assert_eq!(merged[1].mss_path, "/b");
    }

    #[test]
    fn empty_and_single_sources() {
        assert!(merge_sorted(vec![]).is_empty());
        assert!(merge_sorted(vec![vec![], vec![]]).is_empty());
        let single = merge_sorted(vec![vec![rec(1, "/x")]]);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn errors_pass_through() {
        let good: Vec<Result<TraceRecord, TraceError>> = vec![Ok(rec(3, "/ok"))];
        let bad: Vec<Result<TraceRecord, TraceError>> =
            vec![Err(TraceError::parse(1, "boom")), Ok(rec(9, "/late"))];
        let merged: Vec<_> = MergedTrace::new(vec![good.into_iter(), bad.into_iter()]).collect();
        assert_eq!(merged.len(), 3);
        // The bad source's leading error anchors at its next record
        // (t=9), so the other source's valid t=3 record comes first.
        assert!(merged[0].as_ref().is_ok_and(|r| r.mss_path == "/ok"));
        assert!(merged[1].is_err(), "error surfaces before its anchor");
        assert!(merged[2].as_ref().is_ok_and(|r| r.mss_path == "/late"));
    }

    #[test]
    fn deep_error_does_not_leapfrog_other_sources() {
        // Regression: an error between t=1 and t=50 of source B used to
        // schedule at the epoch floor and pop before source A's t=0.
        let a: Vec<Result<TraceRecord, TraceError>> =
            vec![Ok(rec(0, "/a0")), Ok(rec(100, "/a100"))];
        let b: Vec<Result<TraceRecord, TraceError>> = vec![
            Ok(rec(1, "/b1")),
            Err(TraceError::parse(7, "mid-chunk")),
            Ok(rec(50, "/b50")),
        ];
        let merged: Vec<_> = MergedTrace::new(vec![a.into_iter(), b.into_iter()]).collect();
        let shape: Vec<String> = merged
            .iter()
            .map(|r| match r {
                Ok(rec) => rec.mss_path.clone(),
                Err(_) => "<err>".to_string(),
            })
            .collect();
        assert_eq!(shape, ["/a0", "/b1", "<err>", "/b50", "/a100"]);
    }

    #[test]
    fn trailing_errors_anchor_at_last_record() {
        let a: Vec<Result<TraceRecord, TraceError>> = vec![
            Ok(rec(5, "/a5")),
            Err(TraceError::parse(9, "truncated tail")),
        ];
        let b: Vec<Result<TraceRecord, TraceError>> = vec![Ok(rec(2, "/b2")), Ok(rec(8, "/b8"))];
        let merged: Vec<_> = MergedTrace::new(vec![a.into_iter(), b.into_iter()]).collect();
        let shape: Vec<&str> = merged
            .iter()
            .map(|r| match r {
                Ok(rec) => rec.mss_path.as_str(),
                Err(_) => "<err>",
            })
            .collect();
        // The tail error anchors at t=5 (source A's last record), after
        // that record but before B's t=8.
        assert_eq!(shape, ["/b2", "/a5", "<err>", "/b8"]);
    }

    #[test]
    fn all_error_source_surfaces_after_real_records() {
        let garbage: Vec<Result<TraceRecord, TraceError>> = vec![
            Err(TraceError::parse(1, "soup")),
            Err(TraceError::parse(2, "soup")),
        ];
        let good: Vec<Result<TraceRecord, TraceError>> = vec![Ok(rec(3, "/ok"))];
        let merged: Vec<_> =
            MergedTrace::new(vec![garbage.into_iter(), good.into_iter()]).collect();
        assert_eq!(merged.len(), 3);
        assert!(merged[0].is_ok());
        assert!(merged[1].is_err() && merged[2].is_err());
    }

    #[test]
    fn three_way_merge_is_globally_sorted() {
        let mut traces = Vec::new();
        for s in 0..3i64 {
            traces.push((0..50).map(|i| rec(s + i * 3, "/f")).collect::<Vec<_>>());
        }
        let merged = merge_sorted(traces);
        assert_eq!(merged.len(), 150);
        for w in merged.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }
}
