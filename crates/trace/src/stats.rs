//! Single-pass accumulation of the Table 3 overall trace statistics.
//!
//! Table 3 reports, for reads, writes, and their total: reference counts,
//! gigabytes transferred, and average file size broken down by MSS device
//! (disk, silo tape, manual tape), plus average seconds to first byte.
//! Errored references (4.76% of the raw trace) are tallied separately and
//! excluded from the main cells, exactly as in §5.1.

use serde::{Deserialize, Serialize};

use crate::record::{DeviceClass, Direction, ErrorKind, TraceRecord};

/// Accumulator for one (direction × device) cell of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accum {
    /// Successful references in this cell.
    pub references: u64,
    /// Bytes transferred by those references.
    pub bytes: u64,
    /// Sum of startup latencies (seconds) for averaging.
    pub latency_sum_s: f64,
}

impl Accum {
    fn observe(&mut self, rec: &TraceRecord) {
        self.references += 1;
        self.bytes += rec.file_size;
        self.latency_sum_s += rec.startup_latency_s as f64;
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &Accum) {
        self.references += other.references;
        self.bytes += other.bytes;
        self.latency_sum_s += other.latency_sum_s;
    }

    /// Gigabytes transferred (10^9 bytes, as the paper reports).
    pub fn gigabytes(&self) -> f64 {
        self.bytes as f64 / 1.0e9
    }

    /// Average file size in megabytes, or 0 for an empty cell.
    pub fn avg_file_size_mb(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.bytes as f64 / 1.0e6 / self.references as f64
        }
    }

    /// Average seconds to first byte, or 0 for an empty cell.
    pub fn avg_latency_s(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.latency_sum_s / self.references as f64
        }
    }
}

/// Per-direction statistics: the total plus the three device rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DirectionStats {
    /// Direction total across devices.
    pub total: Accum,
    /// Breakdown by device class, indexed in [`DeviceClass::ALL`] order.
    pub by_device: [Accum; 3],
}

impl DirectionStats {
    /// The accumulator for one device class.
    pub fn device(&self, class: DeviceClass) -> &Accum {
        &self.by_device[device_index(class)]
    }

    /// Adds another direction's stats into this one.
    pub fn merge(&mut self, other: &DirectionStats) {
        self.total.merge(&other.total);
        for (a, b) in self.by_device.iter_mut().zip(other.by_device.iter()) {
            a.merge(b);
        }
    }
}

/// Per-device breakdown helper: share of a quantity relative to a total.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceBreakdown {
    /// Device this share describes.
    pub device: DeviceClass,
    /// Fraction of the direction total (0..=1).
    pub fraction: f64,
}

/// Full Table 3 accumulator plus the §5.1 error census.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Read-side statistics.
    pub reads: DirectionStats,
    /// Write-side statistics.
    pub writes: DirectionStats,
    /// Raw references seen, including errored ones.
    pub raw_references: u64,
    /// Errored references by kind `[not-found, media, premature]`.
    pub errors: [u64; 3],
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one record; errored records count only toward the error census.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.raw_references += 1;
        if let Some(kind) = rec.error {
            self.errors[(kind.code() - 1) as usize] += 1;
            return;
        }
        let Some(device) = rec.mss_device() else {
            return;
        };
        let dir = match rec.direction() {
            Direction::Read => &mut self.reads,
            Direction::Write => &mut self.writes,
        };
        dir.total.observe(rec);
        dir.by_device[device_index(device)].observe(rec);
    }

    /// Consumes an iterator of records.
    pub fn observe_all<'a>(&mut self, records: impl IntoIterator<Item = &'a TraceRecord>) {
        for rec in records {
            self.observe(rec);
        }
    }

    /// Statistics for one direction.
    pub fn direction(&self, dir: Direction) -> &DirectionStats {
        match dir {
            Direction::Read => &self.reads,
            Direction::Write => &self.writes,
        }
    }

    /// Combined reads + writes (the paper's "Total" column).
    pub fn combined(&self) -> DirectionStats {
        let mut c = self.reads.clone();
        c.merge(&self.writes);
        c
    }

    /// Successful references across both directions.
    pub fn total_references(&self) -> u64 {
        self.reads.total.references + self.writes.total.references
    }

    /// Total errored references.
    pub fn total_errors(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Errors for one kind.
    pub fn errors_of(&self, kind: ErrorKind) -> u64 {
        self.errors[(kind.code() - 1) as usize]
    }

    /// Fraction of raw references that errored (the paper's 4.76%).
    pub fn error_fraction(&self) -> f64 {
        if self.raw_references == 0 {
            0.0
        } else {
            self.total_errors() as f64 / self.raw_references as f64
        }
    }

    /// Read share of successful references (the paper's 2:1 ratio ⇒ ~0.66).
    pub fn read_reference_share(&self) -> f64 {
        let total = self.total_references();
        if total == 0 {
            0.0
        } else {
            self.reads.total.references as f64 / total as f64
        }
    }

    /// Read share of bytes transferred (paper: 73%).
    pub fn read_byte_share(&self) -> f64 {
        let total = self.reads.total.bytes + self.writes.total.bytes;
        if total == 0 {
            0.0
        } else {
            self.reads.total.bytes as f64 / total as f64
        }
    }

    /// Per-device share of successful references across both directions
    /// (paper totals: disk 66%, silo 20%, manual 12%).
    pub fn device_reference_shares(&self) -> [DeviceBreakdown; 3] {
        let combined = self.combined();
        let total = combined.total.references.max(1) as f64;
        DeviceClass::ALL.map(|device| DeviceBreakdown {
            device,
            fraction: combined.device(device).references as f64 / total,
        })
    }

    /// Merges another accumulator into this one (for parallel shards).
    pub fn merge(&mut self, other: &TraceStats) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.raw_references += other.raw_references;
        for (a, b) in self.errors.iter_mut().zip(other.errors.iter()) {
            *a += b;
        }
    }
}

fn device_index(class: DeviceClass) -> usize {
    match class {
        DeviceClass::Disk => 0,
        DeviceClass::TapeSilo => 1,
        DeviceClass::TapeManual => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use crate::time::TRACE_EPOCH;

    fn rec(dir: Direction, dev: DeviceClass, size: u64, lat: u32) -> TraceRecord {
        let ep = dev.endpoint();
        let mut r = match dir {
            Direction::Read => TraceRecord::read(ep, TRACE_EPOCH, size, "/f", 1),
            Direction::Write => TraceRecord::write(ep, TRACE_EPOCH, size, "/f", 1),
        };
        r.startup_latency_s = lat;
        r
    }

    #[test]
    fn cells_accumulate_by_direction_and_device() {
        let mut s = TraceStats::new();
        s.observe(&rec(Direction::Read, DeviceClass::Disk, 1_000_000, 10));
        s.observe(&rec(
            Direction::Read,
            DeviceClass::TapeSilo,
            80_000_000,
            100,
        ));
        s.observe(&rec(Direction::Write, DeviceClass::Disk, 4_000_000, 20));
        assert_eq!(s.reads.total.references, 2);
        assert_eq!(s.writes.total.references, 1);
        assert_eq!(s.reads.device(DeviceClass::Disk).references, 1);
        assert_eq!(s.reads.device(DeviceClass::TapeSilo).bytes, 80_000_000);
        assert_eq!(s.writes.device(DeviceClass::Disk).avg_file_size_mb(), 4.0);
        assert_eq!(s.combined().total.references, 3);
    }

    #[test]
    fn errors_counted_separately() {
        let mut s = TraceStats::new();
        let mut bad = rec(Direction::Read, DeviceClass::Disk, 5, 0);
        bad.error = Some(ErrorKind::FileNotFound);
        s.observe(&bad);
        s.observe(&rec(Direction::Read, DeviceClass::Disk, 5, 0));
        assert_eq!(s.raw_references, 2);
        assert_eq!(s.total_references(), 1);
        assert_eq!(s.total_errors(), 1);
        assert_eq!(s.errors_of(ErrorKind::FileNotFound), 1);
        assert!((s.error_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shares_match_hand_computation() {
        let mut s = TraceStats::new();
        for _ in 0..2 {
            s.observe(&rec(Direction::Read, DeviceClass::Disk, 10, 0));
        }
        s.observe(&rec(Direction::Write, DeviceClass::TapeSilo, 30, 0));
        assert!((s.read_reference_share() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.read_byte_share() - 0.4).abs() < 1e-12);
        let shares = s.device_reference_shares();
        assert!((shares[0].fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!((shares[1].fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(shares[2].fraction, 0.0);
    }

    #[test]
    fn avg_latency_averages_over_cell() {
        let mut s = TraceStats::new();
        s.observe(&rec(Direction::Read, DeviceClass::TapeManual, 1, 100));
        s.observe(&rec(Direction::Read, DeviceClass::TapeManual, 1, 300));
        assert_eq!(
            s.reads.device(DeviceClass::TapeManual).avg_latency_s(),
            200.0
        );
        assert_eq!(s.reads.device(DeviceClass::Disk).avg_latency_s(), 0.0);
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let recs: Vec<_> = (0..10)
            .map(|i| {
                rec(
                    if i % 3 == 0 {
                        Direction::Write
                    } else {
                        Direction::Read
                    },
                    DeviceClass::ALL[i % 3],
                    (i as u64 + 1) * 1000,
                    i as u32,
                )
            })
            .collect();
        let mut all = TraceStats::new();
        all.observe_all(&recs);
        let mut a = TraceStats::new();
        let mut b = TraceStats::new();
        a.observe_all(&recs[..5]);
        b.observe_all(&recs[5..]);
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = TraceStats::new();
        assert_eq!(s.error_fraction(), 0.0);
        assert_eq!(s.read_reference_share(), 0.0);
        assert_eq!(s.read_byte_share(), 0.0);
        assert_eq!(s.reads.total.avg_file_size_mb(), 0.0);
    }
}
