//! Trace substrate for the Miller & Katz NCAR file-migration study.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`TraceRecord`] — one mass-storage-system (MSS) request, carrying the
//!   fields of Table 2 of the paper (source/destination device, flags,
//!   delta-encoded start time, startup latency, transfer time, file size,
//!   MSS and local path, and requesting user).
//! * [`codec`] — the compact machine-readable ASCII trace format of §4.2,
//!   with delta-encoded timestamps and a same-user flag bit, plus the
//!   verbose "system log" format it was distilled from (used to reproduce
//!   the 50 MB → 10–11 MB per month compaction claim).
//! * [`time`] — a self-contained proleptic-Gregorian calendar (the offline
//!   crate set has no `chrono`), weekday/hour arithmetic, and the US
//!   holiday calendar behind the Figure 6 read-rate dips.
//! * [`stats`] — a single-pass accumulator producing the rows of Table 3.
//!
//! The crate is deliberately free of policy: generation lives in
//! `fmig-workload`, device timing in `fmig-sim`, and analysis in
//! `fmig-analysis`.
//!
//! # Examples
//!
//! ```
//! use fmig_trace::{Direction, Endpoint, TraceRecord, Timestamp};
//!
//! let rec = TraceRecord::read(
//!     Endpoint::MssTapeSilo,
//!     Timestamp::from_unix(655_886_400),
//!     80 << 20,
//!     "/USER/model/run1/day001",
//!     4242,
//! );
//! assert_eq!(rec.direction(), Direction::Read);
//! assert_eq!(rec.mss_device(), Some(fmig_trace::DeviceClass::TapeSilo));
//! ```

pub mod codec;
pub mod error;
pub mod flags;
pub mod ident;
pub mod ingest;
pub mod line;
pub mod merge;
pub mod record;
pub mod stats;
pub mod time;

pub use codec::{TraceReader, TraceWriter, VerboseLogWriter};
pub use error::TraceError;
pub use flags::FlagWord;
pub use ident::{FileId, FileTable};
pub use ingest::{FormatId, IngestConfig, IngestStream, Sampler};
pub use line::MAX_LINE_BYTES;
pub use merge::{merge_sorted, MergedTrace};
pub use record::{DeviceClass, Direction, Endpoint, ErrorKind, TraceRecord};
pub use stats::{DeviceBreakdown, DirectionStats, TraceStats};
pub use time::{CivilDate, Holiday, Timestamp, Weekday, TRACE_EPOCH, TRACE_SECONDS};
