//! Dense file identity: intern every MSS path exactly once, hand out a
//! [`FileId`] — a `u32` index — and key all downstream per-file state by
//! that index instead of a hashed string or a hashed `u64`.
//!
//! The paper replays months of MSS reference traffic; at the `large` and
//! `huge` preset scales (~10^6 distinct files, ~10^6..10^7 references)
//! per-reference hashing is the dominant constant factor in the replay
//! hot path. A dense id turns every per-file lookup in the cache, the
//! MRC engine, the hierarchy engine, and residency replay into an array
//! index. The single-pass MRC engine (PR 4) proved this locally with its
//! private `IdMap`; this module is the workspace-wide generalization,
//! and the per-module copies are gone.
//!
//! Identity assignment is *first appearance in trace order*: the first
//! path [`FileTable::intern`] sees gets id 0, the next new path id 1,
//! and so on. Replay tie-breaks (equal-priority eviction picks the
//! smallest id) therefore reproduce the historical string-keyed
//! behaviour bit-for-bit, because the old path interned ids in exactly
//! this order too.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Dense per-file identity: an index into the [`FileTable`] that
/// interned the file's path, and into every arena keyed by file.
///
/// `u32` bounds the universe at ~4.3 billion distinct files — three
/// orders of magnitude above the paper's 900 k-file store and enough
/// for any trace import on the roadmap — while keeping arena indices,
/// rank keys, and prepared references compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(u32);

impl FileId {
    /// Wraps a raw dense index.
    pub const fn new(raw: u32) -> Self {
        FileId(raw)
    }

    /// The raw dense index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as an arena index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<u32> for FileId {
    fn from(raw: u32) -> Self {
        FileId(raw)
    }
}

impl From<u64> for FileId {
    /// Convenience for literal-heavy test code; panics if the value
    /// does not fit the dense `u32` space.
    fn from(raw: u64) -> Self {
        FileId(u32::try_from(raw).expect("file id exceeds the dense u32 space"))
    }
}

impl From<i32> for FileId {
    /// Convenience for bare integer literals (which Rust infers as
    /// `i32`); panics on negative values.
    fn from(raw: i32) -> Self {
        FileId(u32::try_from(raw).expect("file ids are non-negative"))
    }
}

impl From<usize> for FileId {
    /// Convenience for index-derived ids; panics if the value does not
    /// fit the dense `u32` space.
    fn from(raw: usize) -> Self {
        FileId(u32::try_from(raw).expect("file id exceeds the dense u32 space"))
    }
}

impl From<FileId> for u64 {
    fn from(id: FileId) -> u64 {
        u64::from(id.0)
    }
}

/// Path → [`FileId`] interner: every distinct path is stored once and
/// mapped to the next dense id, in first-appearance order.
///
/// This is the single id-assignment authority for the workspace.
/// Trace preparation interns each reference's MSS path through one of
/// these; the workload generator interns its directory paths; residency
/// replay interns per-file state. Ids are never reused for a different
/// path, so an id is a stable name for the file for the lifetime of the
/// table — arenas indexed by it may reuse *slots* when a file leaves
/// and re-enters a cache, but the identity itself never aliases.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileTable {
    names: Vec<String>,
    index: HashMap<String, FileId>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with room for `cap` files.
    pub fn with_capacity(cap: usize) -> Self {
        FileTable {
            names: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Interns a path, assigning the next dense id on first sight.
    pub fn intern(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.index.get(path) {
            return id;
        }
        let id = FileId::from(self.names.len());
        self.names.push(path.to_owned());
        self.index.insert(path.to_owned(), id);
        id
    }

    /// Looks up an already-interned path without assigning an id.
    pub fn get(&self, path: &str) -> Option<FileId> {
        self.index.get(path).copied()
    }

    /// The path a dense id was assigned to, if the id came from this
    /// table.
    pub fn name(&self, id: FileId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct files interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, path)` in dense-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (FileId::from(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_first_appearance_order() {
        let mut t = FileTable::new();
        assert_eq!(t.intern("/a"), FileId::new(0));
        assert_eq!(t.intern("/b"), FileId::new(1));
        assert_eq!(t.intern("/a"), FileId::new(0));
        assert_eq!(t.intern("/c"), FileId::new(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.name(FileId::new(1)), Some("/b"));
        assert_eq!(t.get("/c"), Some(FileId::new(2)));
        assert_eq!(t.get("/missing"), None);
    }

    #[test]
    fn ids_convert_and_order_like_their_raw_index() {
        let a = FileId::from(7u64);
        let b = FileId::from(9u32);
        assert!(a < b);
        assert_eq!(a.index(), 7);
        assert_eq!(u64::from(b), 9);
        assert_eq!(format!("{a}"), "7");
    }

    #[test]
    fn iter_walks_dense_order() {
        let mut t = FileTable::with_capacity(2);
        t.intern("/x");
        t.intern("/y");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(FileId::new(0), "/x"), (FileId::new(1), "/y")]);
    }

    #[test]
    #[should_panic(expected = "dense u32 space")]
    fn oversized_u64_ids_panic() {
        let _ = FileId::from(u64::from(u32::MAX) + 1);
    }
}
