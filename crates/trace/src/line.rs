//! Bounded line reading shared by the codec reader and the ingest
//! parsers.
//!
//! `BufRead::read_line` grows its buffer without limit, so a trace file
//! whose "line" is a gigabyte of garbage (no newline, or a binary blob
//! fed to the wrong tool) allocates a gigabyte before the parser ever
//! sees a byte. This module mirrors the serve protocol's pre-allocation
//! check (`ProtoError::Oversized` rejects a length prefix before the
//! payload buffer exists): a line is only buffered up to
//! [`MAX_LINE_BYTES`]; anything longer is drained to its newline
//! *without being stored* and reported as [`LineRead::Oversized`], so
//! hostile input costs bounded memory and the stream keeps going.

use std::io::{self, BufRead};

/// Longest line the trace readers will buffer, in bytes.
///
/// Generous for every supported format — compact-codec lines run tens
/// of bytes, external-format lines a few hundred — while keeping the
/// worst-case allocation per line small and fixed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Outcome of one bounded line read.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// End of input; no bytes remained.
    Eof,
    /// One line, without its trailing newline.
    Line(Vec<u8>),
    /// The line exceeded the byte bound; it was consumed (through its
    /// newline, or to EOF) but not buffered.
    Oversized,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes.
///
/// The final line of a stream may lack a newline; it is returned as a
/// normal [`LineRead::Line`]. Bytes of an oversized line beyond the
/// bound are consumed but never stored.
pub fn read_line_bounded<R: BufRead>(input: &mut R, max: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, newline, overflow) = {
            let chunk = input.fill_buf()?;
            if chunk.is_empty() {
                return Ok(if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line(buf)
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if buf.len() + pos > max {
                        (pos + 1, true, true)
                    } else {
                        buf.extend_from_slice(&chunk[..pos]);
                        (pos + 1, true, false)
                    }
                }
                None => {
                    if buf.len() + chunk.len() > max {
                        (chunk.len(), false, true)
                    } else {
                        buf.extend_from_slice(chunk);
                        (chunk.len(), false, false)
                    }
                }
            }
        };
        input.consume(consumed);
        if overflow {
            if !newline {
                drain_past_newline(input)?;
            }
            return Ok(LineRead::Oversized);
        }
        if newline {
            return Ok(LineRead::Line(buf));
        }
    }
}

/// Consumes input through the next newline (or EOF) without storing it.
fn drain_past_newline<R: BufRead>(input: &mut R) -> io::Result<()> {
    loop {
        let (consumed, found) = {
            let chunk = input.fill_buf()?;
            if chunk.is_empty() {
                return Ok(());
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (chunk.len(), false),
            }
        };
        input.consume(consumed);
        if found {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn lines(data: &[u8], max: usize) -> Vec<LineRead> {
        let mut input = Cursor::new(data.to_vec());
        let mut out = Vec::new();
        loop {
            let r = read_line_bounded(&mut input, max).unwrap();
            let eof = r == LineRead::Eof;
            out.push(r);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_reports_eof() {
        let got = lines(b"ab\ncd\n", 10);
        assert_eq!(
            got,
            vec![
                LineRead::Line(b"ab".to_vec()),
                LineRead::Line(b"cd".to_vec()),
                LineRead::Eof
            ]
        );
    }

    #[test]
    fn final_line_without_newline_is_returned() {
        let got = lines(b"ab\ncd", 10);
        assert_eq!(got[1], LineRead::Line(b"cd".to_vec()));
        assert_eq!(got[2], LineRead::Eof);
    }

    #[test]
    fn oversized_line_is_drained_not_buffered() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let got = lines(&data, 10);
        assert_eq!(
            got,
            vec![
                LineRead::Oversized,
                LineRead::Line(b"ok".to_vec()),
                LineRead::Eof
            ]
        );
    }

    #[test]
    fn oversized_final_line_without_newline() {
        let data = vec![b'x'; 100];
        let got = lines(&data, 10);
        assert_eq!(got, vec![LineRead::Oversized, LineRead::Eof]);
    }

    #[test]
    fn exact_bound_is_not_oversized() {
        let mut data = vec![b'x'; 10];
        data.push(b'\n');
        let got = lines(&data, 10);
        assert_eq!(got[0], LineRead::Line(vec![b'x'; 10]));
    }

    #[test]
    fn tiny_buffered_reader_still_bounds() {
        // Force the multi-chunk path with a 3-byte BufReader.
        let mut data = vec![b'y'; 50];
        data.push(b'\n');
        data.extend_from_slice(b"z\n");
        let mut input = std::io::BufReader::with_capacity(3, Cursor::new(data));
        assert_eq!(
            read_line_bounded(&mut input, 8).unwrap(),
            LineRead::Oversized
        );
        assert_eq!(
            read_line_bounded(&mut input, 8).unwrap(),
            LineRead::Line(b"z".to_vec())
        );
        assert_eq!(read_line_bounded(&mut input, 8).unwrap(), LineRead::Eof);
    }
}
