//! The compact ASCII trace format of §4.2 and the verbose log it replaces.
//!
//! The paper processed 50 MB/month of human-readable system logs into
//! 10–11 MB/month of machine-readable traces by dropping redundant fields
//! and delta-encoding times (after Samples' Mache trace compaction). The
//! format implemented here follows Table 2 field-for-field:
//!
//! ```text
//! # fmig-trace v1
//! # epoch <unix-seconds>
//! <src> <dst> <flags-hex> <dstart> <latency-s> <xfer-ms> <size> <mss-path> <local-path> <uid>
//! ...
//! ```
//!
//! * `dstart` is the start time in seconds **since the previous record's
//!   start time** (the first record is relative to the header epoch).
//! * When the same-user flag bit is set, the `uid` column is written as
//!   `-` and recovered from the previous record on read.
//! * Paths are percent-escaped so the format stays line- and
//!   whitespace-delimited; file names are otherwise stored verbatim
//!   ("they could not be compressed without losing information", §4.1).
//!
//! Traces stay ASCII "so they would be easy to read on different machines
//! with different byte orderings" (§4.2).

use std::io::{BufRead, Write};

use crate::error::TraceError;
use crate::flags::FlagWord;
use crate::line::{read_line_bounded, LineRead, MAX_LINE_BYTES};
use crate::record::{Endpoint, TraceRecord};
use crate::time::Timestamp;

/// Format identification line written at the top of every trace.
pub const MAGIC: &str = "# fmig-trace v1";

/// Streaming writer producing the compact trace format.
///
/// # Examples
///
/// ```
/// use fmig_trace::{TraceRecord, TraceWriter, Endpoint, Timestamp};
///
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf, Timestamp::from_unix(0)).unwrap();
/// let rec = TraceRecord::read(Endpoint::MssDisk, Timestamp::from_unix(5), 100, "/a/b", 1);
/// w.write_record(&rec).unwrap();
/// assert!(String::from_utf8(buf).unwrap().starts_with("# fmig-trace v1"));
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    prev_start: Timestamp,
    prev_uid: Option<u32>,
    records: u64,
    bytes: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header; `epoch` anchors the first
    /// record's time delta.
    pub fn new(mut out: W, epoch: Timestamp) -> Result<Self, TraceError> {
        let header = format!("{MAGIC}\n# epoch {}\n", epoch.as_unix());
        out.write_all(header.as_bytes())?;
        Ok(TraceWriter {
            out,
            prev_start: epoch,
            prev_uid: None,
            records: 0,
            bytes: header.len() as u64,
        })
    }

    /// Appends one record, delta-encoding its start time.
    ///
    /// Records must be fed in non-decreasing start order; out-of-order
    /// records are rejected rather than silently given negative deltas.
    pub fn write_record(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        let delta = rec.start.seconds_since(self.prev_start);
        if delta < 0 {
            return Err(TraceError::parse(
                self.records + 2,
                format!("record starts {delta}s before its predecessor"),
            ));
        }
        let same_user = self.prev_uid == Some(rec.uid);
        let flags = FlagWord::new(rec.direction(), rec.error, rec.compressed, same_user);
        let uid_field = if same_user {
            "-".to_string()
        } else {
            rec.uid.to_string()
        };
        let line = format!(
            "{} {} {:x} {} {} {} {} {} {} {}\n",
            rec.source.mnemonic(),
            rec.destination.mnemonic(),
            flags.bits(),
            delta,
            rec.startup_latency_s,
            rec.transfer_ms,
            rec.file_size,
            escape(&rec.mss_path),
            escape(&rec.local_path),
            uid_field,
        );
        self.out.write_all(line.as_bytes())?;
        self.bytes += line.len() as u64;
        self.records += 1;
        self.prev_start = rec.start;
        self.prev_uid = Some(rec.uid);
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Total bytes emitted, including the header.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for the compact trace format.
///
/// Iterates records, reconstructing absolute start times and same-user
/// uids. Malformed lines surface as `Err` items without poisoning the
/// stream, matching the paper's practice of skipping errored references.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    input: R,
    prev_start: Timestamp,
    prev_uid: Option<u32>,
    line_no: u64,
    done: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Creates a reader, validating the two header lines.
    ///
    /// Header lines are read through the bounded line reader
    /// ([`crate::line::MAX_LINE_BYTES`]), so a garbage stream with no
    /// newlines is rejected without buffering it.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let magic = header_line(&mut input)?;
        if magic.trim_end() != MAGIC {
            return Err(TraceError::BadHeader(format!(
                "expected {MAGIC:?}, found {:?}",
                magic.trim_end()
            )));
        }
        let epoch_line = header_line(&mut input)?;
        let epoch = epoch_line
            .trim_end()
            .strip_prefix("# epoch ")
            .and_then(|s| s.parse::<i64>().ok())
            .ok_or_else(|| TraceError::BadHeader("missing `# epoch <secs>` line".into()))?;
        Ok(TraceReader {
            input,
            prev_start: Timestamp::from_unix(epoch),
            prev_uid: None,
            line_no: 2,
            done: false,
        })
    }

    fn parse_line(&mut self, line: &str) -> Result<TraceRecord, TraceError> {
        let ln = self.line_no;
        let mut it = line.split_ascii_whitespace();
        let mut field = |name: &str| {
            it.next()
                .ok_or_else(|| TraceError::parse(ln, format!("missing field `{name}`")))
        };

        let source = Endpoint::from_mnemonic(field("source")?)
            .ok_or_else(|| TraceError::parse(ln, "unknown source endpoint"))?;
        let destination = Endpoint::from_mnemonic(field("destination")?)
            .ok_or_else(|| TraceError::parse(ln, "unknown destination endpoint"))?;
        let flag_bits = u16::from_str_radix(field("flags")?, 16)
            .map_err(|e| TraceError::parse(ln, format!("bad flags: {e}")))?;
        let flags = FlagWord::from_bits(flag_bits)
            .ok_or_else(|| TraceError::parse(ln, "invalid flag bits"))?;
        let delta: i64 = parse_num(field("dstart")?, ln, "dstart")?;
        if delta < 0 {
            return Err(TraceError::parse(ln, "negative start delta"));
        }
        let startup_latency_s: u32 = parse_num(field("latency")?, ln, "latency")?;
        let transfer_ms: u64 = parse_num(field("xfer")?, ln, "xfer")?;
        let file_size: u64 = parse_num(field("size")?, ln, "size")?;
        let mss_path = unescape(field("mss-path")?)
            .ok_or_else(|| TraceError::parse(ln, "bad escape in mss path"))?;
        let local_path = unescape(field("local-path")?)
            .ok_or_else(|| TraceError::parse(ln, "bad escape in local path"))?;
        let uid_field = field("uid")?;
        if it.next().is_some() {
            return Err(TraceError::parse(ln, "trailing fields"));
        }

        let uid = if uid_field == "-" {
            if !flags.same_user() {
                return Err(TraceError::parse(ln, "`-` uid without same-user flag"));
            }
            self.prev_uid
                .ok_or_else(|| TraceError::parse(ln, "same-user flag on first record"))?
        } else {
            let explicit: u32 = parse_num(uid_field, ln, "uid")?;
            if flags.same_user() && self.prev_uid != Some(explicit) {
                return Err(TraceError::parse(ln, "same-user flag contradicts uid"));
            }
            explicit
        };

        let start = self.prev_start.add_secs(delta);
        let dir_from_endpoints = if source == Endpoint::Cray {
            crate::record::Direction::Write
        } else {
            crate::record::Direction::Read
        };
        if flags.direction() != dir_from_endpoints {
            return Err(TraceError::parse(
                ln,
                "flag direction contradicts endpoints",
            ));
        }

        self.prev_start = start;
        self.prev_uid = Some(uid);
        Ok(TraceRecord {
            source,
            destination,
            start,
            startup_latency_s,
            transfer_ms,
            file_size,
            mss_path,
            local_path,
            uid,
            error: flags.error(),
            compressed: flags.compressed(),
        })
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match read_line_bounded(&mut self.input, MAX_LINE_BYTES) {
                Ok(LineRead::Eof) => {
                    self.done = true;
                    return None;
                }
                Ok(LineRead::Oversized) => {
                    self.line_no += 1;
                    return Some(Err(TraceError::parse(
                        self.line_no,
                        format!("line exceeds {MAX_LINE_BYTES} bytes"),
                    )));
                }
                Ok(LineRead::Line(bytes)) => {
                    self.line_no += 1;
                    // Invalid UTF-8 is a recoverable per-line
                    // diagnostic, like any other malformed line.
                    let Ok(line) = std::str::from_utf8(&bytes) else {
                        return Some(Err(TraceError::parse(
                            self.line_no,
                            "line is not valid UTF-8",
                        )));
                    };
                    let trimmed = line.trim_end();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    return Some(self.parse_line(trimmed));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            }
        }
    }
}

/// Reads one bounded header line as UTF-8, mapping oversize and invalid
/// encodings to [`TraceError::BadHeader`].
fn header_line<R: BufRead>(input: &mut R) -> Result<String, TraceError> {
    match read_line_bounded(input, MAX_LINE_BYTES)? {
        LineRead::Eof => Err(TraceError::BadHeader("unexpected end of stream".into())),
        LineRead::Oversized => Err(TraceError::BadHeader(format!(
            "header line exceeds {MAX_LINE_BYTES} bytes"
        ))),
        LineRead::Line(bytes) => String::from_utf8(bytes)
            .map_err(|_| TraceError::BadHeader("header is not valid UTF-8".into())),
    }
}

/// Writer mimicking the raw MSCP/bitfile-mover system log (§4.1).
///
/// Every field is labelled, dates are human-readable, and each request is
/// spread across MSCP and mover records joined by a sequence number —
/// exactly the redundancy the compact format strips. Comparing
/// [`VerboseLogWriter::bytes_written`] against
/// [`TraceWriter::bytes_written`] reproduces the paper's ~5× compaction
/// (50 MB → 10–11 MB per month).
#[derive(Debug)]
pub struct VerboseLogWriter<W: Write> {
    out: W,
    seq: u64,
    bytes: u64,
}

impl<W: Write> VerboseLogWriter<W> {
    /// Creates a verbose log writer.
    pub fn new(out: W) -> Self {
        VerboseLogWriter {
            out,
            seq: 0,
            bytes: 0,
        }
    }

    /// Logs one request in the labelled multi-record style of the original
    /// system logs.
    pub fn write_record(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        self.seq += 1;
        let user = format!("u{:05}", rec.uid);
        let project = format!("proj{:03}", rec.uid % 211);
        let status = match rec.error {
            None => "COMPLETE".to_string(),
            Some(e) => format!("ERROR({e})"),
        };
        // The original logs write one MSCP record at request time, one at
        // transfer start, and a mover record at completion.
        let entry = format!(
            "MSCP  seq={seq} date=[{start}] op={op} user={user} uname={user} project={project} \
             source={src} dest={dst} mssfile={mss} localfile={local} size={size} request=QUEUED\n\
             MSCP  seq={seq} date=[{first}] op={op} user={user} project={project} \
             latency={lat}s request=STARTED\n\
             MOVER seq={seq} date=[{done}] op={op} user={user} bytes={size} \
             elapsed={xfer}ms status={status}\n",
            seq = self.seq,
            start = rec.start,
            first = rec.first_byte_at(),
            done = rec.completed_at(),
            op = match rec.direction() {
                crate::record::Direction::Read => "lread",
                crate::record::Direction::Write => "lwrite",
            },
            src = rec.source,
            dst = rec.destination,
            mss = rec.mss_path,
            local = rec.local_path,
            size = rec.file_size,
            lat = rec.startup_latency_s,
            xfer = rec.transfer_ms,
        );
        self.out.write_all(entry.as_bytes())?;
        self.bytes += entry.len() as u64;
        Ok(())
    }

    /// Total bytes logged so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Number of requests logged.
    pub fn records_written(&self) -> u64 {
        self.seq
    }
}

/// Percent-escapes whitespace, `%`, and control bytes so paths survive the
/// whitespace-delimited format.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b' ' | b'%' | b'\t' | b'\n' | b'\r' => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

/// Inverse of [`escape`]; returns `None` on malformed escapes.
pub(crate) fn unescape(s: &str) -> Option<String> {
    if s == "%00" {
        return Some(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            let v = u8::from_str_radix(hex, 16).ok()?;
            out.push(v as char);
            i += 3;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Some(out)
}

fn parse_num<T: core::str::FromStr>(s: &str, line: u64, name: &str) -> Result<T, TraceError>
where
    T::Err: core::fmt::Display,
{
    s.parse()
        .map_err(|e| TraceError::parse(line, format!("bad {name}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Direction, ErrorKind};
    use crate::time::TRACE_EPOCH;

    fn sample_records() -> Vec<TraceRecord> {
        let mut r1 = TraceRecord::read(
            Endpoint::MssTapeSilo,
            TRACE_EPOCH.add_secs(10),
            80_000_000,
            "/CCM/run 1/day001",
            100,
        );
        r1.startup_latency_s = 85;
        r1.transfer_ms = 40_000;
        let mut r2 = TraceRecord::write(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(14),
            2_000_000,
            "/CCM/run 1/log%1",
            100,
        );
        r2.compressed = true;
        let mut r3 = TraceRecord::read(
            Endpoint::MssTapeManual,
            TRACE_EPOCH.add_secs(500),
            150_000_000,
            "/OLD/archive/tape17",
            7,
        );
        r3.error = Some(ErrorKind::FileNotFound);
        vec![r1, r2, r3]
    }

    fn roundtrip(records: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, TRACE_EPOCH).unwrap();
        for r in records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
        TraceReader::new(std::io::Cursor::new(buf))
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let records = sample_records();
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn same_user_uid_elided_and_recovered() {
        let records = sample_records();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, TRACE_EPOCH).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        // Second record shares uid 100 with the first, so its uid column is `-`.
        let line2 = text.lines().nth(3).unwrap();
        assert!(line2.ends_with(" -"), "line was {line2:?}");
    }

    #[test]
    fn out_of_order_write_rejected() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, TRACE_EPOCH).unwrap();
        let r1 = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(10), 1, "/a", 1);
        let r0 = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(5), 1, "/a", 1);
        w.write_record(&r1).unwrap();
        assert!(w.write_record(&r0).is_err());
    }

    #[test]
    fn bad_header_rejected() {
        let err = TraceReader::new(std::io::Cursor::new(b"nope\n".to_vec())).unwrap_err();
        assert!(matches!(err, TraceError::BadHeader(_)));
        let err = TraceReader::new(std::io::Cursor::new(
            format!("{MAGIC}\n# epoch x\n").into_bytes(),
        ))
        .unwrap_err();
        assert!(matches!(err, TraceError::BadHeader(_)));
    }

    #[test]
    fn malformed_line_is_an_err_item_not_a_poison() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, TRACE_EPOCH).unwrap();
        let r = TraceRecord::read(Endpoint::MssDisk, TRACE_EPOCH.add_secs(1), 9, "/a", 1);
        w.write_record(&r).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("disk cray zz 1 0 0 9 /a /tmp/wk/a 1\n");
        // A second good record after the bad one (delta from the *bad* line
        // is not consumed, so reuse the previous good time base).
        text.push_str("disk cray 0 3 0 0 9 /a /tmp/wk/a 1\n");
        let items: Vec<_> = TraceReader::new(std::io::Cursor::new(text.into_bytes()))
            .unwrap()
            .collect();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok());
        assert!(items[1].is_err());
        assert!(items[2].is_ok());
    }

    #[test]
    fn direction_flag_must_match_endpoints() {
        let text = format!(
            "{MAGIC}\n# epoch 0\ncray disk 0 1 0 0 9 /a /tmp/wk/a 1\n" // flags say read, endpoints say write
        );
        let items: Vec<_> = TraceReader::new(std::io::Cursor::new(text.into_bytes()))
            .unwrap()
            .collect();
        assert!(items[0].is_err());
    }

    #[test]
    fn escape_handles_empty_and_specials() {
        assert_eq!(escape(""), "%00");
        assert_eq!(unescape("%00").unwrap(), "");
        let s = "a b%c\td";
        assert_eq!(unescape(&escape(s)).unwrap(), s);
        assert!(unescape("%zz").is_none());
        assert!(unescape("abc%2").is_none());
    }

    #[test]
    fn verbose_log_is_much_larger_than_compact() {
        let records = sample_records();
        let mut compact = Vec::new();
        let mut w = TraceWriter::new(&mut compact, TRACE_EPOCH).unwrap();
        let mut verbose = VerboseLogWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).unwrap();
            verbose.write_record(r).unwrap();
        }
        assert_eq!(verbose.records_written(), 3);
        // The paper reports roughly 5x; we only insist on "substantially larger".
        assert!(
            verbose.bytes_written() > 3 * w.bytes_written(),
            "verbose {} vs compact {}",
            verbose.bytes_written(),
            w.bytes_written()
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text =
            format!("{MAGIC}\n# epoch 0\n\n# interlude\ndisk cray 0 1 0 0 9 /a /tmp/wk/a 1\n");
        let recs: Vec<_> = TraceReader::new(std::io::Cursor::new(text.into_bytes()))
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].direction(), Direction::Read);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::TRACE_EPOCH;
    use proptest::prelude::*;

    fn arb_endpoint_pair() -> impl Strategy<Value = (Endpoint, Endpoint)> {
        prop_oneof![
            prop_oneof![
                Just(Endpoint::MssDisk),
                Just(Endpoint::MssTapeSilo),
                Just(Endpoint::MssTapeManual),
            ]
            .prop_map(|d| (d, Endpoint::Cray)),
            prop_oneof![
                Just(Endpoint::MssDisk),
                Just(Endpoint::MssTapeSilo),
                Just(Endpoint::MssTapeManual),
            ]
            .prop_map(|d| (Endpoint::Cray, d)),
        ]
    }

    fn arb_path() -> impl Strategy<Value = String> {
        proptest::collection::vec(
            prop_oneof![
                proptest::char::range('a', 'z'),
                Just('/'),
                Just(' '),
                Just('%'),
                Just('.'),
            ],
            1..40,
        )
        .prop_map(|cs| cs.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Encode→decode is the identity on arbitrary well-formed records.
        #[test]
        fn codec_roundtrips(
            specs in proptest::collection::vec(
                (arb_endpoint_pair(), 0i64..5000, 0u32..100_000, 0u64..10_000_000,
                 0u64..300_000_000, arb_path(), 0u32..5000, 0u8..4, any::<bool>()),
                1..50,
            )
        ) {
            let mut t = TRACE_EPOCH;
            let mut records = Vec::new();
            for ((src, dst), dt, lat, xfer, size, path, uid, err, comp) in specs {
                t = t.add_secs(dt);
                let mut rec = if src == Endpoint::Cray {
                    TraceRecord::write(dst, t, size, path, uid)
                } else {
                    TraceRecord::read(src, t, size, path, uid)
                };
                rec.startup_latency_s = lat;
                rec.transfer_ms = xfer;
                rec.error = crate::record::ErrorKind::from_code(err);
                rec.compressed = comp;
                records.push(rec);
            }
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf, TRACE_EPOCH).unwrap();
            for r in &records {
                w.write_record(r).unwrap();
            }
            w.finish().unwrap();
            let back: Vec<_> = TraceReader::new(std::io::Cursor::new(buf))
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap();
            prop_assert_eq!(back, records);
        }

        /// Path escaping roundtrips for arbitrary strings.
        #[test]
        fn escape_roundtrips(s in arb_path()) {
            prop_assert_eq!(unescape(&escape(&s)).unwrap(), s);
        }
    }
}
