//! Error type shared by the trace codecs.

use std::io;

/// Failures arising while reading or writing trace streams.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line in a trace stream.
    Parse {
        /// 1-based line number within the stream.
        line: u64,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The stream header is missing or incompatible.
    BadHeader(String),
}

impl TraceError {
    /// Convenience constructor for parse failures.
    pub fn parse(line: u64, message: impl Into<String>) -> Self {
        TraceError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::BadHeader(msg) => write!(f, "bad trace header: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TraceError::parse(12, "bad flags");
        assert_eq!(e.to_string(), "trace parse error at line 12: bad flags");
        let e = TraceError::BadHeader("missing epoch".into());
        assert!(e.to_string().contains("missing epoch"));
        let e = TraceError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_exposed() {
        use std::error::Error as _;
        let e = TraceError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(TraceError::parse(1, "x").source().is_none());
    }
}
