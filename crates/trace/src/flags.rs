//! The packed flag word of the trace format (§4.2).
//!
//! Table 2 describes a `flags` field carrying "read/write, error
//! information, compression information", plus "a bit in the flag field
//! which indicates that the request was made by the same user who made the
//! previous request". This module packs those into a 16-bit word:
//!
//! ```text
//! bit 0       direction: 0 = read, 1 = write
//! bits 1..4   error code: 0 = ok, 1 = not found, 2 = media, 3 = premature
//! bit 4       compressed transfer
//! bit 5       same user as previous record
//! bits 6..16  reserved, must be zero
//! ```

use serde::{Deserialize, Serialize};

use crate::record::{Direction, ErrorKind};

const DIR_WRITE: u16 = 1 << 0;
const ERR_SHIFT: u16 = 1;
const ERR_MASK: u16 = 0b111 << ERR_SHIFT;
const COMPRESSED: u16 = 1 << 4;
const SAME_USER: u16 = 1 << 5;
const RESERVED: u16 = !(DIR_WRITE | ERR_MASK | COMPRESSED | SAME_USER);

/// A decoded-or-encodable trace flag word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlagWord(u16);

impl FlagWord {
    /// Builds a flag word from its component fields.
    pub fn new(
        direction: Direction,
        error: Option<ErrorKind>,
        compressed: bool,
        same_user: bool,
    ) -> Self {
        let mut bits = 0u16;
        if direction == Direction::Write {
            bits |= DIR_WRITE;
        }
        if let Some(kind) = error {
            bits |= (kind.code() as u16) << ERR_SHIFT;
        }
        if compressed {
            bits |= COMPRESSED;
        }
        if same_user {
            bits |= SAME_USER;
        }
        FlagWord(bits)
    }

    /// Reconstructs a flag word from raw bits, rejecting reserved bits and
    /// unknown error codes.
    pub fn from_bits(bits: u16) -> Option<Self> {
        if bits & RESERVED != 0 {
            return None;
        }
        let code = ((bits & ERR_MASK) >> ERR_SHIFT) as u8;
        if code != 0 && ErrorKind::from_code(code).is_none() {
            return None;
        }
        Some(FlagWord(bits))
    }

    /// Raw 16-bit representation written to the trace.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Transfer direction carried in bit 0.
    pub const fn direction(self) -> Direction {
        if self.0 & DIR_WRITE != 0 {
            Direction::Write
        } else {
            Direction::Read
        }
    }

    /// Error kind carried in bits 1–3, if any.
    pub fn error(self) -> Option<ErrorKind> {
        ErrorKind::from_code(((self.0 & ERR_MASK) >> ERR_SHIFT) as u8)
    }

    /// Whether the transfer was compressed.
    pub const fn compressed(self) -> bool {
        self.0 & COMPRESSED != 0
    }

    /// Whether this request came from the same user as the previous one.
    pub const fn same_user(self) -> bool {
        self.0 & SAME_USER != 0
    }

    /// Returns a copy with the same-user bit set as given.
    #[must_use]
    pub const fn with_same_user(self, same: bool) -> Self {
        if same {
            FlagWord(self.0 | SAME_USER)
        } else {
            FlagWord(self.0 & !SAME_USER)
        }
    }
}

impl core::fmt::Display for FlagWord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_fields() {
        for dir in Direction::ALL {
            for err in [
                None,
                Some(ErrorKind::FileNotFound),
                Some(ErrorKind::MediaError),
            ] {
                for comp in [false, true] {
                    for same in [false, true] {
                        let w = FlagWord::new(dir, err, comp, same);
                        assert_eq!(w.direction(), dir);
                        assert_eq!(w.error(), err);
                        assert_eq!(w.compressed(), comp);
                        assert_eq!(w.same_user(), same);
                        assert_eq!(FlagWord::from_bits(w.bits()), Some(w));
                    }
                }
            }
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        assert_eq!(FlagWord::from_bits(1 << 6), None);
        assert_eq!(FlagWord::from_bits(0xFF00), None);
    }

    #[test]
    fn unknown_error_code_rejected() {
        // Code 5 in bits 1..4 is not a valid ErrorKind.
        assert_eq!(FlagWord::from_bits(5 << 1), None);
    }

    #[test]
    fn with_same_user_toggles_only_that_bit() {
        let w = FlagWord::new(Direction::Write, Some(ErrorKind::MediaError), true, false);
        let w2 = w.with_same_user(true);
        assert!(w2.same_user());
        assert_eq!(w2.direction(), Direction::Write);
        assert_eq!(w2.error(), Some(ErrorKind::MediaError));
        assert!(w2.compressed());
        assert_eq!(w2.with_same_user(false), w);
    }

    #[test]
    fn default_is_clean_read() {
        let w = FlagWord::default();
        assert_eq!(w.direction(), Direction::Read);
        assert_eq!(w.error(), None);
        assert!(!w.compressed());
        assert!(!w.same_user());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any 16-bit pattern either decodes to a word that re-encodes to
        /// itself, or is rejected outright — never silently normalised.
        #[test]
        fn from_bits_is_partial_identity(bits in any::<u16>()) {
            if let Some(w) = FlagWord::from_bits(bits) {
                prop_assert_eq!(w.bits(), bits);
            }
        }

        /// Construction from fields always produces decodable bits.
        #[test]
        fn constructed_words_always_decode(
            write in any::<bool>(),
            err in 0u8..=3,
            comp in any::<bool>(),
            same in any::<bool>(),
        ) {
            let dir = if write { Direction::Write } else { Direction::Read };
            let err = ErrorKind::from_code(err);
            let w = FlagWord::new(dir, err, comp, same);
            prop_assert_eq!(FlagWord::from_bits(w.bits()), Some(w));
            prop_assert_eq!(w.direction(), dir);
            prop_assert_eq!(w.error(), err);
        }
    }
}
