//! Columnar on-disk replay store for imported traces.
//!
//! A multi-GB external trace cannot be re-parsed (or held in memory as
//! a `Vec` of records) every time a sweep cell replays it. The store
//! pays the parse cost once, at import: records stream through a
//! [`StoreWriter`] that interns paths into dense [`FileId`]s and lays
//! the replay-relevant fields out as fixed-width column files, then a
//! backward pass fills in each reference's *next-use time* — the same
//! quantity `TracePrep` computes in memory for generated traces — so
//! replay needs no lookahead. A [`StoreReader`] streams the columns
//! back in bounded chunks; peak memory is O(distinct files) + one
//! chunk, never O(trace length).
//!
//! # Layout
//!
//! A store is a directory:
//!
//! | file           | contents                                          |
//! |----------------|---------------------------------------------------|
//! | `manifest.txt` | record/file counts, time window, referenced bytes |
//! | `start.col`    | per record: start time, Unix seconds, `i64` LE    |
//! | `file.col`     | per record: dense [`FileId`], `u32` LE            |
//! | `size.col`     | per record: size in bytes (≥ 1), `u64` LE         |
//! | `meta.col`     | per record: bit 0 = write, bits 1–2 device class  |
//! | `next.col`     | per record: next use of the same file, `i64` LE, `i64::MIN` = never |
//! | `paths.txt`    | one escaped path per line, [`FileId`] order        |
//! | `stats.txt`    | the full [`TraceStats`] census, including errors  |
//!
//! Only replayable records occupy the columns; errored references live
//! in `stats.txt` alone, mirroring how `TracePrep` drops them before
//! replay. Sizes are stored pre-clamped to ≥ 1 byte, again matching
//! the in-memory preparation, so a store replay and an in-memory
//! replay of the same records are bit-identical.
//!
//! `referenced_bytes` in the manifest is the sum over files of the
//! *largest* size each file was seen with — the denominator the sweep
//! uses to turn cache fractions into byte capacities.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{escape, unescape};
use crate::error::TraceError;
use crate::ident::{FileId, FileTable};
use crate::ingest::{FormatId, IngestConfig, IngestCounts};
use crate::line::{read_line_bounded, LineRead, MAX_LINE_BYTES};
use crate::record::{DeviceClass, TraceRecord};
use crate::stats::{Accum, TraceStats};

/// Magic first line of `manifest.txt`.
const MANIFEST_MAGIC: &str = "# fmig-store v1";
/// Magic first line of `stats.txt`.
const STATS_MAGIC: &str = "# fmig-store-stats v1";
/// `next.col` sentinel: the file is never referenced again.
const NEVER_AGAIN: i64 = i64::MIN;
/// Records per chunk for the import-time backward pass and the default
/// replay granularity (64 Ki records ≈ 1.8 MiB across all columns).
pub const CHUNK_RECORDS: usize = 1 << 16;

/// Summary of a finished store, persisted as `manifest.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Replayable (non-errored) records in the columns.
    pub records: u64,
    /// Distinct files across those records.
    pub files: u64,
    /// Start time of the first record (Unix seconds; 0 if empty).
    pub epoch: i64,
    /// Start time of the last record (Unix seconds; 0 if empty).
    pub last: i64,
    /// Sum over files of the largest size each was seen with.
    pub referenced_bytes: u64,
    /// Read records among [`Self::records`].
    pub read_records: u64,
}

/// One decoded row of the column files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRow {
    /// Start time, Unix seconds.
    pub start: i64,
    /// Dense file identity (indexes `paths.txt`).
    pub file: FileId,
    /// Size in bytes, already clamped ≥ 1.
    pub size: u64,
    /// True for writes.
    pub write: bool,
    /// MSS storage class.
    pub device: DeviceClass,
    /// Start time of this file's next reference, if any.
    pub next_use: Option<i64>,
}

/// Streaming writer: append records in time order, then [`finish`].
///
/// [`finish`]: StoreWriter::finish
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    start: BufWriter<File>,
    file: BufWriter<File>,
    size: BufWriter<File>,
    meta: BufWriter<File>,
    table: FileTable,
    /// Largest size each file was seen with (clamped ≥ 1).
    max_size: Vec<u64>,
    stats: TraceStats,
    records: u64,
    read_records: u64,
    first_start: Option<i64>,
    last_start: i64,
}

impl StoreWriter {
    /// Creates the store directory (and parents) and opens the columns.
    pub fn create(dir: &Path) -> Result<Self, TraceError> {
        fs::create_dir_all(dir)?;
        let col = |name: &str| -> Result<BufWriter<File>, TraceError> {
            Ok(BufWriter::new(File::create(dir.join(name))?))
        };
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            start: col("start.col")?,
            file: col("file.col")?,
            size: col("size.col")?,
            meta: col("meta.col")?,
            table: FileTable::new(),
            max_size: Vec::new(),
            stats: TraceStats::new(),
            records: 0,
            read_records: 0,
            first_start: None,
            last_start: i64::MIN,
        })
    }

    /// Appends one record.
    ///
    /// Errored records join the stats census but occupy no columns.
    /// Records must arrive in non-decreasing start order (the ingest
    /// driver's monotone clamp guarantees this; the writer re-checks so
    /// a buggy caller cannot produce a store that replays out of
    /// order).
    pub fn append(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        self.stats.observe(rec);
        if rec.error.is_some() {
            return Ok(());
        }
        let Some(device) = rec.mss_device() else {
            return Err(TraceError::parse(
                self.stats.raw_references,
                "record has no MSS endpoint",
            ));
        };
        let start = rec.start.as_unix();
        if start < self.last_start {
            return Err(TraceError::parse(
                self.stats.raw_references,
                format!(
                    "start times must not decrease ({start} after {})",
                    self.last_start
                ),
            ));
        }
        self.last_start = start;
        self.first_start.get_or_insert(start);

        let id = self.table.intern(&rec.mss_path);
        let size = rec.file_size.max(1);
        if id.index() == self.max_size.len() {
            self.max_size.push(size);
        } else {
            let slot = &mut self.max_size[id.index()];
            *slot = (*slot).max(size);
        }

        let write = rec.direction() == crate::record::Direction::Write;
        if !write {
            self.read_records += 1;
        }
        let device_bits = match device {
            DeviceClass::Disk => 0u8,
            DeviceClass::TapeSilo => 1,
            DeviceClass::TapeManual => 2,
        };
        self.start.write_all(&start.to_le_bytes())?;
        self.file.write_all(&id.raw().to_le_bytes())?;
        self.size.write_all(&size.to_le_bytes())?;
        self.meta
            .write_all(&[u8::from(write) | (device_bits << 1)])?;
        self.records += 1;
        Ok(())
    }

    /// Replayable records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Distinct files interned so far.
    pub fn files(&self) -> usize {
        self.table.len()
    }

    /// The running census (including errored records).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Flushes the columns, derives `next.col` with a backward pass,
    /// and writes paths, stats, and the manifest.
    pub fn finish(self) -> Result<StoreManifest, TraceError> {
        let StoreWriter {
            dir,
            start,
            file,
            size,
            meta,
            table,
            max_size,
            stats,
            records,
            read_records,
            first_start,
            last_start,
            ..
        } = self;
        for mut w in [start, file, size, meta] {
            w.flush()?;
        }

        write_next_column(&dir, records, table.len())?;

        let mut paths = BufWriter::new(File::create(dir.join("paths.txt"))?);
        for (_, path) in table.iter() {
            writeln!(paths, "{}", escape(path))?;
        }
        paths.flush()?;

        write_stats(&dir.join("stats.txt"), &stats)?;

        let manifest = StoreManifest {
            records,
            files: table.len() as u64,
            epoch: first_start.unwrap_or(0),
            last: if records == 0 { 0 } else { last_start },
            referenced_bytes: max_size.iter().sum(),
            read_records,
        };
        let mut m = BufWriter::new(File::create(dir.join("manifest.txt"))?);
        writeln!(m, "{MANIFEST_MAGIC}")?;
        writeln!(m, "records {}", manifest.records)?;
        writeln!(m, "files {}", manifest.files)?;
        writeln!(m, "epoch {}", manifest.epoch)?;
        writeln!(m, "last {}", manifest.last)?;
        writeln!(m, "referenced_bytes {}", manifest.referenced_bytes)?;
        writeln!(m, "read_records {}", manifest.read_records)?;
        m.flush()?;
        Ok(manifest)
    }
}

/// Fills `next.col` from `start.col` + `file.col` with one backward
/// chunked pass: O(files) memory for the per-file "next seen" table,
/// one chunk of column data at a time.
fn write_next_column(dir: &Path, records: u64, files: usize) -> Result<(), TraceError> {
    let mut start_col = File::open(dir.join("start.col"))?;
    let mut file_col = File::open(dir.join("file.col"))?;
    let mut next_col = File::create(dir.join("next.col"))?;
    next_col.set_len(records * 8)?;

    let mut next_seen: Vec<i64> = vec![NEVER_AGAIN; files];
    let chunk = CHUNK_RECORDS as u64;
    let chunks = records.div_ceil(chunk);
    let mut start_buf = vec![0u8; CHUNK_RECORDS * 8];
    let mut file_buf = vec![0u8; CHUNK_RECORDS * 4];
    let mut next_buf = vec![0u8; CHUNK_RECORDS * 8];
    for c in (0..chunks).rev() {
        let lo = c * chunk;
        let n = (records - lo).min(chunk) as usize;
        start_col.seek(SeekFrom::Start(lo * 8))?;
        start_col.read_exact(&mut start_buf[..n * 8])?;
        file_col.seek(SeekFrom::Start(lo * 4))?;
        file_col.read_exact(&mut file_buf[..n * 4])?;
        for i in (0..n).rev() {
            let start = i64::from_le_bytes(start_buf[i * 8..i * 8 + 8].try_into().unwrap());
            let file = u32::from_le_bytes(file_buf[i * 4..i * 4 + 4].try_into().unwrap()) as usize;
            next_buf[i * 8..i * 8 + 8].copy_from_slice(&next_seen[file].to_le_bytes());
            next_seen[file] = start;
        }
        next_col.seek(SeekFrom::Start(lo * 8))?;
        next_col.write_all(&next_buf[..n * 8])?;
    }
    next_col.sync_data().ok();
    Ok(())
}

fn write_stats(path: &Path, stats: &TraceStats) -> Result<(), TraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{STATS_MAGIC}")?;
    writeln!(w, "raw {}", stats.raw_references)?;
    writeln!(
        w,
        "errors {} {} {}",
        stats.errors[0], stats.errors[1], stats.errors[2]
    )?;
    let cell = |w: &mut BufWriter<File>, name: &str, a: &Accum| -> Result<(), TraceError> {
        writeln!(w, "{name} {} {} {}", a.references, a.bytes, a.latency_sum_s)?;
        Ok(())
    };
    for (dir_name, d) in [("reads", &stats.reads), ("writes", &stats.writes)] {
        cell(&mut w, &format!("{dir_name}.total"), &d.total)?;
        for (i, a) in d.by_device.iter().enumerate() {
            cell(&mut w, &format!("{dir_name}.dev{i}"), a)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a `stats.txt` back into a [`TraceStats`].
fn read_stats(path: &Path) -> Result<TraceStats, TraceError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(STATS_MAGIC) {
        return Err(TraceError::BadHeader("stats.txt magic mismatch".into()));
    }
    let mut stats = TraceStats::new();
    let mut fields = |expect: &str| -> Result<Vec<String>, TraceError> {
        let line = lines
            .next()
            .ok_or_else(|| TraceError::BadHeader(format!("stats.txt missing `{expect}`")))?;
        let mut parts = line.split_ascii_whitespace().map(str::to_string);
        match parts.next() {
            Some(tag) if tag == expect => Ok(parts.collect()),
            _ => Err(TraceError::BadHeader(format!(
                "stats.txt expected `{expect}`"
            ))),
        }
    };
    let num = |v: &[String], i: usize| -> Result<u64, TraceError> {
        v.get(i)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TraceError::BadHeader("stats.txt malformed number".into()))
    };
    let raw = fields("raw")?;
    stats.raw_references = num(&raw, 0)?;
    let errs = fields("errors")?;
    for i in 0..3 {
        stats.errors[i] = num(&errs, i)?;
    }
    for dir_name in ["reads", "writes"] {
        for cell_name in ["total", "dev0", "dev1", "dev2"] {
            let v = fields(&format!("{dir_name}.{cell_name}"))?;
            let accum = Accum {
                references: num(&v, 0)?,
                bytes: num(&v, 1)?,
                latency_sum_s: v
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TraceError::BadHeader("stats.txt malformed latency".into()))?,
            };
            let d = if dir_name == "reads" {
                &mut stats.reads
            } else {
                &mut stats.writes
            };
            match cell_name {
                "total" => d.total = accum,
                "dev0" => d.by_device[0] = accum,
                "dev1" => d.by_device[1] = accum,
                _ => d.by_device[2] = accum,
            }
        }
    }
    Ok(stats)
}

/// Handle on a finished store; cheap to clone, opens fresh file handles
/// per [`rows`] call so parallel sweep cells can stream independently.
///
/// [`rows`]: StoreReader::rows
#[derive(Debug, Clone)]
pub struct StoreReader {
    dir: PathBuf,
    manifest: StoreManifest,
}

impl StoreReader {
    /// Opens a store, validating the manifest against the column files.
    ///
    /// Column lengths are checked against the record count up front, so
    /// a truncated or tampered store fails here — not with a short read
    /// mid-replay.
    pub fn open(dir: &Path) -> Result<Self, TraceError> {
        let text = fs::read_to_string(dir.join("manifest.txt"))?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(TraceError::BadHeader(format!(
                "`{}` is not a fmig trace store (manifest magic mismatch)",
                dir.display()
            )));
        }
        let mut field = |name: &str| -> Result<i64, TraceError> {
            let line = lines
                .next()
                .ok_or_else(|| TraceError::BadHeader(format!("manifest missing `{name}`")))?;
            let value = line
                .strip_prefix(name)
                .map(str::trim)
                .ok_or_else(|| TraceError::BadHeader(format!("manifest expected `{name}`")))?;
            value
                .parse()
                .map_err(|_| TraceError::BadHeader(format!("manifest `{name}` is not a number")))
        };
        let records = u64::try_from(field("records")?)
            .map_err(|_| TraceError::BadHeader("negative record count".into()))?;
        let files = u64::try_from(field("files")?)
            .map_err(|_| TraceError::BadHeader("negative file count".into()))?;
        if files > u64::from(u32::MAX) {
            return Err(TraceError::BadHeader(
                "file count exceeds dense id space".into(),
            ));
        }
        let manifest = StoreManifest {
            records,
            files,
            epoch: field("epoch")?,
            last: field("last")?,
            referenced_bytes: u64::try_from(field("referenced_bytes")?)
                .map_err(|_| TraceError::BadHeader("negative referenced_bytes".into()))?,
            read_records: u64::try_from(field("read_records")?)
                .map_err(|_| TraceError::BadHeader("negative read_records".into()))?,
        };
        for (name, width) in [
            ("start.col", 8u64),
            ("file.col", 4),
            ("size.col", 8),
            ("meta.col", 1),
            ("next.col", 8),
        ] {
            let len = fs::metadata(dir.join(name))?.len();
            if len != records * width {
                return Err(TraceError::BadHeader(format!(
                    "{name} holds {len} bytes, expected {} for {records} records",
                    records * width
                )));
            }
        }
        Ok(StoreReader {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads the full census back from `stats.txt`.
    pub fn stats(&self) -> Result<TraceStats, TraceError> {
        read_stats(&self.dir.join("stats.txt"))
    }

    /// Reads `paths.txt` back into a [`FileTable`] (O(files) memory;
    /// only needed for reporting, never for replay).
    pub fn file_table(&self) -> Result<FileTable, TraceError> {
        let mut input = BufReader::new(File::open(self.dir.join("paths.txt"))?);
        let mut table = FileTable::with_capacity(self.manifest.files as usize);
        let mut line_no = 0u64;
        loop {
            match read_line_bounded(&mut input, MAX_LINE_BYTES)? {
                LineRead::Eof => break,
                LineRead::Oversized => {
                    return Err(TraceError::parse(line_no + 1, "path line exceeds bound"))
                }
                LineRead::Line(bytes) => {
                    line_no += 1;
                    let text = String::from_utf8(bytes)
                        .map_err(|_| TraceError::parse(line_no, "path is not valid UTF-8"))?;
                    let path = unescape(text.trim_end())
                        .ok_or_else(|| TraceError::parse(line_no, "malformed path escape"))?;
                    table.intern(&path);
                }
            }
        }
        if table.len() as u64 != self.manifest.files {
            return Err(TraceError::BadHeader(format!(
                "paths.txt holds {} paths, manifest says {}",
                table.len(),
                self.manifest.files
            )));
        }
        Ok(table)
    }

    /// Opens a chunked streaming pass over the rows.
    pub fn rows(&self, chunk_records: usize) -> Result<StoreRows, TraceError> {
        assert!(chunk_records > 0, "chunk size must be positive");
        let open = |name: &str| -> Result<BufReader<File>, TraceError> {
            Ok(BufReader::new(File::open(self.dir.join(name))?))
        };
        Ok(StoreRows {
            start: open("start.col")?,
            file: open("file.col")?,
            size: open("size.col")?,
            meta: open("meta.col")?,
            next: open("next.col")?,
            remaining: self.manifest.records,
            chunk: chunk_records,
        })
    }

    /// Collects every row; test/report convenience, O(records) memory.
    pub fn read_all(&self) -> Result<Vec<StoreRow>, TraceError> {
        let mut rows = self.rows(CHUNK_RECORDS)?;
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while rows.next_chunk(&mut buf)? {
            out.extend_from_slice(&buf);
        }
        Ok(out)
    }
}

/// One streaming pass over a store's rows; see [`StoreReader::rows`].
#[derive(Debug)]
pub struct StoreRows {
    start: BufReader<File>,
    file: BufReader<File>,
    size: BufReader<File>,
    meta: BufReader<File>,
    next: BufReader<File>,
    remaining: u64,
    chunk: usize,
}

impl StoreRows {
    /// Decodes the next chunk into `out` (cleared first). Returns
    /// `false` when the store is exhausted.
    pub fn next_chunk(&mut self, out: &mut Vec<StoreRow>) -> Result<bool, TraceError> {
        out.clear();
        if self.remaining == 0 {
            return Ok(false);
        }
        let n = self.remaining.min(self.chunk as u64) as usize;
        let mut start_buf = vec![0u8; n * 8];
        let mut file_buf = vec![0u8; n * 4];
        let mut size_buf = vec![0u8; n * 8];
        let mut meta_buf = vec![0u8; n];
        let mut next_buf = vec![0u8; n * 8];
        self.start.read_exact(&mut start_buf)?;
        self.file.read_exact(&mut file_buf)?;
        self.size.read_exact(&mut size_buf)?;
        self.meta.read_exact(&mut meta_buf)?;
        self.next.read_exact(&mut next_buf)?;
        out.reserve(n);
        for i in 0..n {
            let meta = meta_buf[i];
            let device = match meta >> 1 {
                0 => DeviceClass::Disk,
                1 => DeviceClass::TapeSilo,
                2 => DeviceClass::TapeManual,
                other => {
                    return Err(TraceError::BadHeader(format!(
                        "meta.col holds invalid device bits {other}"
                    )))
                }
            };
            let next = i64::from_le_bytes(next_buf[i * 8..i * 8 + 8].try_into().unwrap());
            out.push(StoreRow {
                start: i64::from_le_bytes(start_buf[i * 8..i * 8 + 8].try_into().unwrap()),
                file: FileId::new(u32::from_le_bytes(
                    file_buf[i * 4..i * 4 + 4].try_into().unwrap(),
                )),
                size: u64::from_le_bytes(size_buf[i * 8..i * 8 + 8].try_into().unwrap()),
                write: meta & 1 != 0,
                device,
                next_use: (next != NEVER_AGAIN).then_some(next),
            });
        }
        self.remaining -= n as u64;
        Ok(true)
    }
}

/// Outcome of one [`import`] run.
#[derive(Debug, Clone)]
pub struct ImportReport {
    /// The finished store's manifest.
    pub manifest: StoreManifest,
    /// The ingest driver's tallies.
    pub counts: IngestCounts,
    /// The census (identical to the store's `stats.txt`).
    pub stats: TraceStats,
}

/// Imports an external trace into a store directory in one streaming
/// pass.
///
/// Per-line diagnostics go to `on_error` and the import continues;
/// only an exhausted error budget (or I/O failure) aborts.
pub fn import<R: BufRead>(
    format: FormatId,
    input: R,
    config: IngestConfig,
    dir: &Path,
    mut on_error: impl FnMut(&TraceError),
) -> Result<ImportReport, TraceError> {
    let mut writer = StoreWriter::create(dir)?;
    let mut stream = format.stream(input, config);
    while let Some(item) = stream.next() {
        match item {
            Ok(rec) => writer.append(&rec)?,
            Err(err) => {
                if stream.counts.parse_errors > config.error_budget {
                    return Err(err);
                }
                on_error(&err);
            }
        }
    }
    let stats = writer.stats().clone();
    let manifest = writer.finish()?;
    Ok(ImportReport {
        manifest,
        counts: stream.counts,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use std::collections::HashMap;
    use std::io::Cursor;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fmig-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(t: i64, path: &str, size: u64, write: bool, dev: DeviceClass) -> TraceRecord {
        let ep = dev.endpoint();
        let ts = Timestamp::from_unix(t);
        if write {
            TraceRecord::write(ep, ts, size, path, 1)
        } else {
            TraceRecord::read(ep, ts, size, path, 1)
        }
    }

    /// In-memory oracle for next.col: the same reverse sweep TracePrep
    /// runs over generated traces.
    fn oracle_next_use(recs: &[TraceRecord]) -> Vec<Option<i64>> {
        let mut next_seen: HashMap<String, i64> = HashMap::new();
        let mut out = vec![None; recs.len()];
        for (i, r) in recs.iter().enumerate().rev() {
            out[i] = next_seen.get(&r.mss_path).copied();
            next_seen.insert(r.mss_path.clone(), r.start.as_unix());
        }
        out
    }

    #[test]
    fn roundtrip_matches_the_in_memory_oracle() {
        let dir = temp_dir("roundtrip");
        // Enough records to cross a (shrunk) chunk boundary is covered
        // by the dedicated test below; here: mixed devices, repeated
        // files, growing sizes, a path needing escapes.
        let recs = vec![
            rec(100, "/a file", 10, false, DeviceClass::Disk),
            rec(100, "/b", 0, true, DeviceClass::TapeSilo),
            rec(105, "/a file", 25, false, DeviceClass::Disk),
            rec(109, "/c", 7, false, DeviceClass::TapeManual),
            rec(120, "/b", 3, true, DeviceClass::TapeSilo),
            rec(120, "/a file", 5, false, DeviceClass::Disk),
        ];
        let mut w = StoreWriter::create(&dir).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.records, 6);
        assert_eq!(manifest.files, 3);
        assert_eq!(manifest.epoch, 100);
        assert_eq!(manifest.last, 120);
        // /a file max 25, /b max 3 (0 clamps to 1, then 3), /c 7.
        assert_eq!(manifest.referenced_bytes, 25 + 3 + 7);
        assert_eq!(manifest.read_records, 4);

        let reader = StoreReader::open(&dir).unwrap();
        assert_eq!(reader.manifest(), &manifest);
        let rows = reader.read_all().unwrap();
        assert_eq!(rows.len(), recs.len());
        let expect_next = oracle_next_use(&recs);
        for ((row, r), next) in rows.iter().zip(&recs).zip(&expect_next) {
            assert_eq!(row.start, r.start.as_unix());
            assert_eq!(row.size, r.file_size.max(1));
            assert_eq!(row.write, r.direction() == crate::record::Direction::Write);
            assert_eq!(row.device, r.mss_device().unwrap());
            assert_eq!(row.next_use, *next, "next_use mismatch for {}", r.mss_path);
        }
        // Dense ids assign in first-appearance order; paths roundtrip
        // through escaping.
        let table = reader.file_table().unwrap();
        assert_eq!(table.name(FileId::new(0)), Some("/a file"));
        assert_eq!(table.name(FileId::new(2)), Some("/c"));
        // Stats survive the text roundtrip exactly.
        let stats = reader.stats().unwrap();
        let mut expect = TraceStats::new();
        expect.observe_all(&recs);
        assert_eq!(stats, expect);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_column_is_correct_across_chunk_boundaries() {
        let dir = temp_dir("chunks");
        // 3 files interleaved over far more records than one backward-
        // pass buffer position, exercising cross-chunk carry of the
        // next-seen table. (CHUNK_RECORDS is large; the property that
        // matters is carry across iterations of the inner loop, which
        // the oracle checks regardless.)
        let n = 10_000;
        let recs: Vec<TraceRecord> = (0..n)
            .map(|i| rec(i, &format!("/f{}", i % 3), 1, false, DeviceClass::Disk))
            .collect();
        let mut w = StoreWriter::create(&dir).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.finish().unwrap();
        let rows = StoreReader::open(&dir).unwrap().read_all().unwrap();
        let expect = oracle_next_use(&recs);
        for (row, next) in rows.iter().zip(&expect) {
            assert_eq!(row.next_use, *next);
        }
        // The last reference of each file is NEVER_AGAIN.
        assert!(rows[n as usize - 1].next_use.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_appends_are_rejected() {
        let dir = temp_dir("order");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.append(&rec(50, "/a", 1, false, DeviceClass::Disk))
            .unwrap();
        let err = w.append(&rec(49, "/b", 1, false, DeviceClass::Disk));
        assert!(err.is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_columns_fail_at_open() {
        let dir = temp_dir("trunc");
        let mut w = StoreWriter::create(&dir).unwrap();
        for i in 0..10 {
            w.append(&rec(i, "/f", 1, false, DeviceClass::Disk))
                .unwrap();
        }
        w.finish().unwrap();
        // Chop a column; open must notice before any replay starts.
        let col = dir.join("size.col");
        let f = fs::OpenOptions::new().write(true).open(&col).unwrap();
        f.set_len(72).unwrap();
        drop(f);
        let err = StoreReader::open(&dir).unwrap_err();
        assert!(err.to_string().contains("size.col"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let dir = temp_dir("nostore");
        fs::create_dir_all(&dir).unwrap();
        assert!(StoreReader::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_roundtrips() {
        let dir = temp_dir("empty");
        let w = StoreWriter::create(&dir).unwrap();
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.records, 0);
        let reader = StoreReader::open(&dir).unwrap();
        assert!(reader.read_all().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn import_streams_a_kv_trace_end_to_end() {
        let dir = temp_dir("import");
        let text = "\
# sample
1000 REST.GET.OBJECT alpha 100
2000 REST.PUT.OBJECT beta 50
not a line
3000 REST.GET.OBJECT alpha 100
4000 REST.DELETE.OBJECT beta
5000 REST.GET.OBJECT beta 60
";
        let mut diags = Vec::new();
        let report = import(
            FormatId::IbmKv,
            Cursor::new(text.as_bytes().to_vec()),
            IngestConfig::default(),
            &dir,
            |e| diags.push(e.to_string()),
        )
        .unwrap();
        assert_eq!(report.manifest.records, 4);
        assert_eq!(report.manifest.files, 2);
        assert_eq!(report.counts.skipped, 2, "comment + DELETE");
        assert_eq!(report.counts.parse_errors, 1);
        assert_eq!(diags.len(), 1);
        let rows = StoreReader::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(rows[0].next_use, Some(3));
        assert_eq!(rows[1].next_use, Some(5));
        assert!(rows[2].next_use.is_none() && rows[3].next_use.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn import_aborts_when_the_budget_is_gone() {
        let dir = temp_dir("budget");
        let text = "junk\nmore junk\nworse\n";
        let err = import(
            FormatId::IbmKv,
            Cursor::new(text.as_bytes().to_vec()),
            IngestConfig {
                error_budget: 1,
                sample: None,
            },
            &dir,
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("error budget exhausted"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
