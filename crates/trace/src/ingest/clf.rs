//! Common Log Format parser (CDN / web server request logs).
//!
//! Parses NCSA Common Log Format lines (the format Apache, nginx, and
//! most CDN edge logs default to or extend):
//!
//! ```text
//! 203.0.113.9 - alice [01/Aug/1995:00:00:01 -0400] "GET /images/logo.gif HTTP/1.0" 200 6245
//! ```
//!
//! Combined-format trailers (referrer, user agent) after the byte count
//! are tolerated and ignored.
//!
//! # Normalization
//!
//! * The request target (path + query string, untouched) is the file
//!   identity; `GET`/`HEAD` map to reads, `PUT`/`POST` to writes, every
//!   other method (`DELETE`, `OPTIONS`, ...) is skipped as outside the
//!   replay model.
//! * The timestamp is converted to UTC by subtracting the `±zzzz` zone
//!   offset from the civil time.
//! * The byte count is the file size (`-` and `0` become 0; the replay
//!   store later clamps sizes to ≥ 1 byte, matching native traces).
//! * Failed requests join the paper's error census: 404/410 as
//!   file-not-found, other 4xx as premature termination, 5xx as media
//!   error.
//! * The "user" is a stable hash of the authuser (falling back to the
//!   client host for anonymous requests).

use crate::error::TraceError;
use crate::ingest::{fnv1a64, FormatId, IngestFormat, RawEvent};
use crate::record::{DeviceClass, ErrorKind};
use crate::time::Timestamp;

/// Parser for Common Log Format request logs.
#[derive(Debug, Default)]
pub struct ClfFormat;

impl IngestFormat for ClfFormat {
    fn id(&self) -> FormatId {
        FormatId::Clf
    }

    fn parse_line(&mut self, line_no: u64, line: &str) -> Result<Option<RawEvent>, TraceError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let bad = |msg: &str| TraceError::parse(line_no, msg.to_string());

        let (host, rest) = line
            .split_once(' ')
            .ok_or_else(|| bad("missing ident field"))?;
        let (_ident, rest) = rest
            .split_once(' ')
            .ok_or_else(|| bad("missing authuser field"))?;
        let (authuser, rest) = rest
            .split_once(' ')
            .ok_or_else(|| bad("missing timestamp"))?;

        let rest = rest
            .strip_prefix('[')
            .ok_or_else(|| bad("timestamp must start with `[`"))?;
        let (stamp, rest) = rest
            .split_once(']')
            .ok_or_else(|| bad("unterminated `[timestamp]`"))?;
        let time = parse_clf_timestamp(line_no, stamp)?;

        let rest = rest
            .strip_prefix(" \"")
            .ok_or_else(|| bad("missing quoted request"))?;
        let (request, rest) = rest
            .split_once('"')
            .ok_or_else(|| bad("unterminated quoted request"))?;
        let mut req_parts = request.split(' ');
        let method = req_parts.next().unwrap_or("");
        let target = req_parts
            .next()
            .ok_or_else(|| bad("request line has no target"))?;
        let write = match method {
            "GET" | "HEAD" => false,
            "PUT" | "POST" => true,
            // Methods that move no replayable payload.
            "DELETE" | "OPTIONS" | "TRACE" | "CONNECT" | "PATCH" | "PROPFIND" => return Ok(None),
            other => return Err(bad(&format!("unknown method `{other}`"))),
        };

        let mut tail = rest.trim_start().split(' ');
        let status_text = tail.next().ok_or_else(|| bad("missing status code"))?;
        let status: u16 = status_text
            .parse()
            .map_err(|_| bad(&format!("status `{status_text}` is not a number")))?;
        if !(100..=599).contains(&status) {
            return Err(bad(&format!("status {status} out of range")));
        }
        let bytes_text = tail.next().ok_or_else(|| bad("missing byte count"))?;
        let size: u64 = if bytes_text == "-" {
            0
        } else {
            bytes_text
                .parse()
                .map_err(|_| bad(&format!("byte count `{bytes_text}` is not a number")))?
        };

        let error = match status {
            404 | 410 => Some(ErrorKind::FileNotFound),
            400..=499 => Some(ErrorKind::PrematureTermination),
            500..=599 => Some(ErrorKind::MediaError),
            _ => None,
        };
        let who = if authuser == "-" { host } else { authuser };
        Ok(Some(RawEvent {
            time,
            path: target.to_string(),
            size,
            write,
            device: DeviceClass::Disk,
            uid: (fnv1a64(who.as_bytes()) % 99_991) as u32,
            transfer_ms: 0,
            error,
        }))
    }
}

/// Parses `dd/Mon/yyyy:HH:MM:SS ±zzzz` into a UTC timestamp.
fn parse_clf_timestamp(line_no: u64, stamp: &str) -> Result<Timestamp, TraceError> {
    let bad = |msg: String| TraceError::parse(line_no, msg);
    let (civil, zone) = stamp
        .split_once(' ')
        .ok_or_else(|| bad("timestamp missing zone offset".into()))?;
    let mut parts = civil.splitn(2, ':');
    let date = parts.next().unwrap_or("");
    let clock = parts
        .next()
        .ok_or_else(|| bad("timestamp missing time of day".into()))?;

    let mut d = date.split('/');
    let (day, mon, year) = match (d.next(), d.next(), d.next(), d.next()) {
        (Some(day), Some(mon), Some(year), None) => (day, mon, year),
        _ => return Err(bad(format!("date `{date}` is not dd/Mon/yyyy"))),
    };
    let day: u8 = day.parse().map_err(|_| bad(format!("bad day `{day}`")))?;
    let month = month_number(mon).ok_or_else(|| bad(format!("bad month `{mon}`")))?;
    let year: i32 = year
        .parse()
        .map_err(|_| bad(format!("bad year `{year}`")))?;
    if !(1..=days_in_month(year, month)).contains(&day) {
        return Err(bad(format!("day {day} out of range for {mon} {year}")));
    }

    let mut c = clock.split(':');
    let (h, m, s) = match (c.next(), c.next(), c.next(), c.next()) {
        (Some(h), Some(m), Some(s), None) => (h, m, s),
        _ => return Err(bad(format!("time `{clock}` is not HH:MM:SS"))),
    };
    let hour: u8 = h.parse().map_err(|_| bad(format!("bad hour `{h}`")))?;
    let minute: u8 = m.parse().map_err(|_| bad(format!("bad minute `{m}`")))?;
    let second: u8 = s.parse().map_err(|_| bad(format!("bad second `{s}`")))?;
    if hour > 23 || minute > 59 || second > 60 {
        return Err(bad(format!("time `{clock}` out of range")));
    }

    let zbytes = zone.as_bytes();
    if zbytes.len() != 5 || !zbytes[1..].iter().all(u8::is_ascii_digit) {
        return Err(bad(format!("zone `{zone}` must be ±zzzz")));
    }
    let sign = match zbytes[0] {
        b'+' => 1i64,
        b'-' => -1i64,
        _ => return Err(bad(format!("zone `{zone}` must be ±zzzz"))),
    };
    let zh: i64 = zone[1..3].parse().expect("digits checked above");
    let zm: i64 = zone[3..5].parse().expect("digits checked above");
    if zh > 14 || zm > 59 {
        return Err(bad(format!("zone `{zone}` out of range")));
    }

    // Local civil time minus the zone offset is UTC.
    let local = Timestamp::from_civil_parts(year, month, day)
        .add_secs(hour as i64 * 3600 + minute as i64 * 60 + second as i64);
    Ok(local.add_secs(-sign * (zh * 3600 + zm * 60)))
}

fn month_number(mon: &str) -> Option<u8> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS.iter().position(|&m| m == mon).map(|i| i as u8 + 1)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Option<RawEvent>, TraceError> {
        ClfFormat.parse_line(1, line)
    }

    #[test]
    fn parses_the_classic_example() {
        let ev = parse(
            "203.0.113.9 - alice [01/Aug/1995:00:00:01 -0400] \"GET /images/logo.gif HTTP/1.0\" 200 6245",
        )
        .unwrap()
        .unwrap();
        // 1995-08-01 00:00:01 at UTC-4 is 04:00:01 UTC.
        assert_eq!(
            ev.time,
            Timestamp::from_civil_parts(1995, 8, 1).add_secs(4 * 3600 + 1)
        );
        assert_eq!(ev.path, "/images/logo.gif");
        assert_eq!(ev.size, 6245);
        assert!(!ev.write && ev.error.is_none());
    }

    #[test]
    fn methods_map_to_directions() {
        let put = parse("h - - [01/Jan/2000:12:00:00 +0000] \"PUT /up HTTP/1.1\" 201 10")
            .unwrap()
            .unwrap();
        assert!(put.write);
        let del = parse("h - - [01/Jan/2000:12:00:00 +0000] \"DELETE /x HTTP/1.1\" 204 0").unwrap();
        assert_eq!(del, None, "DELETE is outside the replay model");
        assert!(
            parse("h - - [01/Jan/2000:12:00:00 +0000] \"BREW /pot HTCPCP/1.0\" 418 0").is_err()
        );
    }

    #[test]
    fn statuses_join_the_error_census() {
        let miss = parse("h - - [01/Jan/2000:12:00:00 +0000] \"GET /gone HTTP/1.0\" 404 -")
            .unwrap()
            .unwrap();
        assert_eq!(miss.error, Some(ErrorKind::FileNotFound));
        assert_eq!(miss.size, 0, "`-` bytes");
        let cut = parse("h - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 403 0")
            .unwrap()
            .unwrap();
        assert_eq!(cut.error, Some(ErrorKind::PrematureTermination));
        let boom = parse("h - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 500 0")
            .unwrap()
            .unwrap();
        assert_eq!(boom.error, Some(ErrorKind::MediaError));
    }

    #[test]
    fn combined_format_trailers_are_tolerated() {
        let ev = parse(
            "h - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 7 \"http://ref\" \"agent\"",
        )
        .unwrap()
        .unwrap();
        assert_eq!(ev.size, 7);
    }

    #[test]
    fn zone_offsets_flip_sign_correctly() {
        let east = parse("h - - [01/Jan/2000:12:00:00 +0530] \"GET /x HTTP/1.0\" 200 1")
            .unwrap()
            .unwrap();
        assert_eq!(
            east.time,
            Timestamp::from_civil_parts(2000, 1, 1).add_secs(12 * 3600 - (5 * 3600 + 30 * 60))
        );
    }

    #[test]
    fn malformed_lines_are_diagnostics() {
        for bad in [
            "just one token",
            "h - - 01/Jan/2000:12:00:00 +0000 \"GET /x HTTP/1.0\" 200 1", // no brackets
            "h - - [01/Jan/2000:12:00:00 +0000] GET /x 200 1",            // no quotes
            "h - - [32/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 1", // day 32
            "h - - [29/Feb/1999:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 1", // not a leap year
            "h - - [01/Jan/2000:25:00:00 +0000] \"GET /x HTTP/1.0\" 200 1", // hour 25
            "h - - [01/Jan/2000:12:00:00 0000] \"GET /x HTTP/1.0\" 200 1", // no zone sign
            "h - - [01/Jan/2000:12:00:00 +00] \"GET /x HTTP/1.0\" 200 1", // short zone
            "h - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" ok 1", // bad status
            "h - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 999 1", // status range
            "h - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 two",
            "h - - [01/Jan/2000:12:00:00 +0000] \"GET\" 200 1", // no target
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Leap day on an actual leap year parses.
        assert!(
            parse("h - - [29/Feb/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 1")
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn anonymous_requests_hash_the_host() {
        let a = parse("hostA - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 1")
            .unwrap()
            .unwrap();
        let b = parse("hostB - - [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 1")
            .unwrap()
            .unwrap();
        assert_ne!(a.uid, b.uid);
        let named = parse("hostA - carol [01/Jan/2000:12:00:00 +0000] \"GET /x HTTP/1.0\" 200 1")
            .unwrap()
            .unwrap();
        assert_ne!(named.uid, a.uid);
    }
}
