//! IBM object store (COS) / KV access-trace parser.
//!
//! The IBM Cloud Object Storage traces (SNIA, "IBM Object Store Traces")
//! are whitespace-separated lines of the form
//!
//! ```text
//! <timestamp-ms> REST.<VERB>.OBJECT <key> [size] [range-start range-end]
//! 1219008 REST.GET.OBJECT 9af3 2952 0 1023
//! 1219020 REST.PUT.OBJECT 77ab 1430
//! ```
//!
//! * The timestamp is milliseconds from the start of the collection
//!   window.
//! * `REST.GET.OBJECT`/`REST.HEAD.OBJECT` are reads,
//!   `REST.PUT.OBJECT`/`REST.POST.OBJECT` writes; other verbs
//!   (`DELETE`, `COPY`, ...) are skipped as outside the replay model.
//! * The optional size is the object size in bytes; range trailers are
//!   tolerated and ignored (the replay model migrates whole files, the
//!   paper's MSS had no partial recalls).
//!
//! # Normalization
//!
//! The key becomes the file identity `/<key>`; keys are opaque hashes
//! in the published traces, so no further mapping applies. The format
//! carries no user identity — every record gets uid 0 — and no transfer
//! duration.

use crate::error::TraceError;
use crate::ingest::{FormatId, IngestFormat, RawEvent};
use crate::record::DeviceClass;
use crate::time::Timestamp;

/// Parser for IBM object store / KV access traces.
#[derive(Debug, Default)]
pub struct IbmKvFormat;

impl IngestFormat for IbmKvFormat {
    fn id(&self) -> FormatId {
        FormatId::IbmKv
    }

    fn parse_line(&mut self, line_no: u64, line: &str) -> Result<Option<RawEvent>, TraceError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let bad = |msg: String| TraceError::parse(line_no, msg);
        let mut fields = line.split_ascii_whitespace();
        let ms_text = fields.next().expect("non-empty line has a first token");
        let ms: u64 = ms_text
            .parse()
            .map_err(|_| bad(format!("timestamp `{ms_text}` is not a number")))?;
        let op = fields
            .next()
            .ok_or_else(|| bad("missing operation".into()))?;
        let verb = match op
            .strip_prefix("REST.")
            .and_then(|r| r.strip_suffix(".OBJECT"))
        {
            Some(v) => v,
            None => return Err(bad(format!("operation `{op}` is not REST.<verb>.OBJECT"))),
        };
        let write = match verb {
            "GET" | "HEAD" => false,
            "PUT" | "POST" => true,
            "DELETE" | "COPY" => return Ok(None),
            other => return Err(bad(format!("unknown verb `{other}`"))),
        };
        let key = fields
            .next()
            .ok_or_else(|| bad("missing object key".into()))?;
        let size: u64 = match fields.next() {
            None => 0,
            Some(text) => text
                .parse()
                .map_err(|_| bad(format!("size `{text}` is not a number")))?,
        };
        // Optional `range-start range-end` trailer: validate shape,
        // ignore content.
        let trailer: Vec<&str> = fields.collect();
        match trailer.len() {
            0 => {}
            2 => {
                for t in &trailer {
                    t.parse::<u64>()
                        .map_err(|_| bad(format!("range bound `{t}` is not a number")))?;
                }
            }
            _ => return Err(bad("trailing fields are not a range pair".into())),
        }
        Ok(Some(RawEvent {
            time: Timestamp::from_unix((ms / 1000) as i64),
            path: format!("/{key}"),
            size,
            write,
            device: DeviceClass::Disk,
            uid: 0,
            transfer_ms: 0,
            error: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Option<RawEvent>, TraceError> {
        IbmKvFormat.parse_line(1, line)
    }

    #[test]
    fn parses_get_with_range() {
        let ev = parse("1219008 REST.GET.OBJECT 9af3 2952 0 1023")
            .unwrap()
            .unwrap();
        assert_eq!(ev.time.as_unix(), 1219);
        assert_eq!(ev.path, "/9af3");
        assert_eq!(ev.size, 2952);
        assert!(!ev.write);
        assert_eq!(ev.uid, 0);
    }

    #[test]
    fn put_without_size_defaults_to_zero() {
        let ev = parse("5 REST.PUT.OBJECT k").unwrap().unwrap();
        assert!(ev.write);
        assert_eq!(ev.size, 0);
    }

    #[test]
    fn head_is_a_read_and_delete_skips() {
        assert!(!parse("5 REST.HEAD.OBJECT k 10").unwrap().unwrap().write);
        assert_eq!(parse("5 REST.DELETE.OBJECT k").unwrap(), None);
        assert_eq!(parse("5 REST.COPY.OBJECT k").unwrap(), None);
    }

    #[test]
    fn comments_and_blanks_skip() {
        assert_eq!(parse("# header").unwrap(), None);
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn malformed_lines_are_diagnostics() {
        for bad in [
            "notatime REST.GET.OBJECT k 1",
            "5",                     // timestamp alone
            "5 GET k 1",             // verb without REST. wrapper
            "5 REST.EAT.OBJECT k 1", // unknown verb
            "5 REST.GET.OBJECT k noSize",
            "5 REST.GET.OBJECT k 1 2",   // half a range
            "5 REST.GET.OBJECT k 1 a b", // non-numeric range
            "5 REST.GET.OBJECT k 1 2 3 4",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
