//! Real-trace ingestion: streaming parsers for public trace formats.
//!
//! Every result the sweep engine produces so far replays the synthetic
//! NCAR generator. This module closes the gap to *measured* reference
//! streams: one parser per external format — MSR Cambridge block traces
//! ([`msr`]), Common Log Format request logs ([`clf`]), and IBM object
//! store / KV access traces ([`ibmkv`]) — each normalizing line by line
//! into [`TraceRecord`] through a shared [`IngestFormat`] trait, plus a
//! columnar on-disk replay store ([`store`]) that replays multi-GB
//! imports under bounded memory.
//!
//! # Normalization rules
//!
//! External formats know nothing of the paper's MSS, so the driver
//! applies fixed, documented rules (see `docs/trace-ingestion.md` for
//! the full cookbook):
//!
//! * **Timestamps** are converted to Unix seconds. A record earlier
//!   than its predecessor is *clamped* to the predecessor's time (the
//!   codec and replay pipeline require monotone start times); clamps
//!   are counted in [`IngestCounts::clamped`].
//! * **Device class**: imported references carry no MSS tier, so every
//!   record lands on [`DeviceClass::Disk`].
//! * **Errors** (e.g. HTTP 404) map onto the paper's
//!   [`crate::ErrorKind`] census and are excluded from replay exactly
//!   like native errored references.
//!
//! # Error budget
//!
//! Malformed lines become [`TraceError::parse`] diagnostics — never
//! panics, never stream poison — and the stream keeps going, until the
//! running error count exceeds [`IngestConfig::error_budget`]; then one
//! final budget-exhausted error is emitted and the stream ends. A
//! mostly-garbage input therefore fails fast instead of producing a
//! silently tiny trace.
//!
//! # Downsampling
//!
//! [`Sampler`] keeps `keep`-in-`out_of` of the *files*, never of the
//! references: a file's whole reference stream survives or drops
//! together (`splitmix64(seed ^ fnv1a64(path)) % out_of < keep`), so
//! sampled traces preserve per-file locality and the same seed always
//! selects the byte-identical subset.

pub mod clf;
pub mod ibmkv;
pub mod msr;
pub mod store;

use std::io::BufRead;

use crate::error::TraceError;
use crate::line::{read_line_bounded, LineRead, MAX_LINE_BYTES};
use crate::record::{DeviceClass, ErrorKind, TraceRecord};
use crate::time::Timestamp;

/// One normalized external event, before the monotone clamp and the
/// per-file sampling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// Event time.
    pub time: Timestamp,
    /// Normalized file identity (becomes the MSS path).
    pub path: String,
    /// Bytes moved (0 when the format does not say).
    pub size: u64,
    /// True for writes (PUT/POST, block writes).
    pub write: bool,
    /// Storage class; external formats use [`DeviceClass::Disk`].
    pub device: DeviceClass,
    /// Requesting-user surrogate (a stable hash where the format has
    /// no numeric uid).
    pub uid: u32,
    /// Transfer duration in milliseconds (0 when the format does not
    /// say).
    pub transfer_ms: u64,
    /// Failure recorded by the source system, if any.
    pub error: Option<ErrorKind>,
}

/// A line-oriented external trace format.
///
/// Implementations parse one line at a time and never panic on hostile
/// input: a malformed line is a [`TraceError::parse`] diagnostic,
/// a header or comment line is `Ok(None)`.
pub trait IngestFormat {
    /// The format this parser implements.
    fn id(&self) -> FormatId;

    /// Parses one line. `Ok(None)` means the line carries no event
    /// (header, comment, or an operation outside the replay model).
    fn parse_line(&mut self, line_no: u64, line: &str) -> Result<Option<RawEvent>, TraceError>;
}

/// The supported external formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatId {
    /// MSR Cambridge block-trace CSV.
    Msr,
    /// Common Log Format (CDN / web request logs).
    Clf,
    /// IBM object store / KV access trace.
    IbmKv,
}

impl FormatId {
    /// Every format, in documentation order.
    pub const ALL: [FormatId; 3] = [FormatId::Msr, FormatId::Clf, FormatId::IbmKv];

    /// The stable identifier used on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            FormatId::Msr => "msr",
            FormatId::Clf => "clf",
            FormatId::IbmKv => "ibm-kv",
        }
    }

    /// Parses a stable identifier back to the format.
    pub fn parse(s: &str) -> Option<FormatId> {
        FormatId::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Builds a fresh parser for this format.
    pub fn parser(&self) -> Box<dyn IngestFormat> {
        match self {
            FormatId::Msr => Box::new(msr::MsrFormat),
            FormatId::Clf => Box::new(clf::ClfFormat),
            FormatId::IbmKv => Box::new(ibmkv::IbmKvFormat),
        }
    }

    /// Opens a normalizing record stream over `input`.
    pub fn stream<R: BufRead>(&self, input: R, config: IngestConfig) -> IngestStream<R> {
        IngestStream::new(self.parser(), input, config)
    }
}

/// Stable 64-bit FNV-1a hash; the per-file sampling identity.
///
/// Hand-rolled (not `DefaultHasher`) so the keep/drop decision is a
/// documented pure function of the bytes, stable across releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 finalizer used to whiten the sampling hash.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-file downsampler; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    keep: u32,
    out_of: u32,
    seed: u64,
}

impl Sampler {
    /// Keeps `keep` files in every `out_of` (by hash, not by count).
    ///
    /// # Panics
    ///
    /// Panics if `out_of` is 0 or `keep > out_of`.
    pub fn new(keep: u32, out_of: u32, seed: u64) -> Self {
        assert!(out_of > 0, "sampler denominator must be positive");
        assert!(keep <= out_of, "sampler keeps at most every file");
        Sampler { keep, out_of, seed }
    }

    /// The all-or-nothing decision for one file path.
    pub fn keeps(&self, path: &str) -> bool {
        if self.keep == self.out_of {
            return true;
        }
        splitmix64(self.seed ^ fnv1a64(path.as_bytes())) % u64::from(self.out_of)
            < u64::from(self.keep)
    }
}

/// Knobs for one import run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Maximum malformed lines tolerated before the stream aborts with
    /// a final budget-exhausted error.
    pub error_budget: u64,
    /// Optional per-file downsampler.
    pub sample: Option<Sampler>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            error_budget: 1000,
            sample: None,
        }
    }
}

/// Running tallies of one import; read them after the stream drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestCounts {
    /// Input lines consumed (including headers and comments).
    pub lines: u64,
    /// Records produced.
    pub records: u64,
    /// Lines that legitimately carry no event (headers, comments,
    /// out-of-model operations).
    pub skipped: u64,
    /// Malformed lines surfaced as parse diagnostics.
    pub parse_errors: u64,
    /// Records whose timestamp was clamped forward to keep the stream
    /// monotone.
    pub clamped: u64,
    /// Records dropped by the per-file downsampler.
    pub sampled_out: u64,
}

/// A normalizing record stream: external text in, [`TraceRecord`]s and
/// per-line diagnostics out.
///
/// Lines are read through the bounded reader
/// ([`crate::line::MAX_LINE_BYTES`]), so hostile input can neither
/// panic the parser nor grow an unbounded buffer.
pub struct IngestStream<R: BufRead> {
    format: Box<dyn IngestFormat>,
    input: R,
    config: IngestConfig,
    /// Monotone floor applied to event times.
    prev_time: Option<i64>,
    line_no: u64,
    done: bool,
    /// The running tallies.
    pub counts: IngestCounts,
}

impl<R: BufRead> IngestStream<R> {
    /// Builds a stream from a parser and its input.
    pub fn new(format: Box<dyn IngestFormat>, input: R, config: IngestConfig) -> Self {
        IngestStream {
            format,
            input,
            config,
            prev_time: None,
            line_no: 0,
            done: false,
            counts: IngestCounts::default(),
        }
    }

    /// The format being parsed.
    pub fn format(&self) -> FormatId {
        self.format.id()
    }

    fn diagnose(&mut self, err: TraceError) -> Option<Result<TraceRecord, TraceError>> {
        self.counts.parse_errors += 1;
        if self.counts.parse_errors > self.config.error_budget {
            self.done = true;
            return Some(Err(TraceError::parse(
                self.line_no,
                format!(
                    "error budget exhausted: {} malformed lines (budget {})",
                    self.counts.parse_errors, self.config.error_budget
                ),
            )));
        }
        Some(Err(err))
    }
}

impl<R: BufRead> Iterator for IngestStream<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let line = match read_line_bounded(&mut self.input, MAX_LINE_BYTES) {
                Ok(LineRead::Eof) => {
                    self.done = true;
                    return None;
                }
                Ok(LineRead::Oversized) => {
                    self.line_no += 1;
                    self.counts.lines += 1;
                    let err = TraceError::parse(
                        self.line_no,
                        format!("line exceeds {MAX_LINE_BYTES} bytes"),
                    );
                    return self.diagnose(err);
                }
                Ok(LineRead::Line(bytes)) => {
                    self.line_no += 1;
                    self.counts.lines += 1;
                    match String::from_utf8(bytes) {
                        Ok(s) => s,
                        Err(_) => {
                            let err = TraceError::parse(self.line_no, "line is not valid UTF-8");
                            return self.diagnose(err);
                        }
                    }
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            };
            let event = match self.format.parse_line(self.line_no, line.trim_end()) {
                Ok(Some(event)) => event,
                Ok(None) => {
                    self.counts.skipped += 1;
                    continue;
                }
                Err(e) => return self.diagnose(e),
            };
            if let Some(sampler) = &self.config.sample {
                if !sampler.keeps(&event.path) {
                    self.counts.sampled_out += 1;
                    continue;
                }
            }
            // Monotone clamp: the codec and the replay pipeline both
            // require non-decreasing start times.
            let mut time = event.time.as_unix();
            if let Some(prev) = self.prev_time {
                if time < prev {
                    time = prev;
                    self.counts.clamped += 1;
                }
            }
            self.prev_time = Some(time);
            let start = Timestamp::from_unix(time);
            let mut rec = if event.write {
                TraceRecord::write(
                    event.device.endpoint(),
                    start,
                    event.size,
                    event.path,
                    event.uid,
                )
            } else {
                TraceRecord::read(
                    event.device.endpoint(),
                    start,
                    event.size,
                    event.path,
                    event.uid,
                )
            };
            rec.transfer_ms = event.transfer_ms;
            rec.error = event.error;
            self.counts.records += 1;
            return Some(Ok(rec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn stream_all(
        format: FormatId,
        text: &str,
    ) -> (Vec<Result<TraceRecord, TraceError>>, IngestCounts) {
        let mut s = format.stream(
            Cursor::new(text.as_bytes().to_vec()),
            IngestConfig::default(),
        );
        let items: Vec<_> = s.by_ref().collect();
        (items, s.counts)
    }

    #[test]
    fn format_ids_round_trip() {
        for f in FormatId::ALL {
            assert_eq!(FormatId::parse(f.name()), Some(f));
            assert_eq!(f.parser().id(), f);
        }
        assert_eq!(FormatId::parse("nope"), None);
    }

    #[test]
    fn sampler_is_all_or_nothing_and_seeded() {
        let a = Sampler::new(1, 4, 7);
        let b = Sampler::new(1, 4, 7);
        let c = Sampler::new(1, 4, 8);
        let mut kept = 0;
        let mut diverged = false;
        for i in 0..256 {
            let path = format!("/obj/{i}");
            assert_eq!(a.keeps(&path), b.keeps(&path), "same seed, same decision");
            if a.keeps(&path) != c.keeps(&path) {
                diverged = true;
            }
            if a.keeps(&path) {
                kept += 1;
            }
        }
        assert!(diverged, "different seeds should differ somewhere");
        // 1-in-4 of 256 files: allow a wide band around 64.
        assert!((20..=120).contains(&kept), "kept {kept}/256");
        assert!(Sampler::new(4, 4, 0).keeps("/anything"));
    }

    #[test]
    fn clamp_keeps_times_monotone() {
        // Two IBM-KV events with the second 5 s in the past.
        let text = "10000 REST.GET.OBJECT a 5\n5000 REST.GET.OBJECT b 5\n";
        let (items, counts) = stream_all(FormatId::IbmKv, text);
        let recs: Vec<_> = items.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(recs[0].start, recs[1].start);
        assert_eq!(counts.clamped, 1);
        assert_eq!(counts.records, 2);
    }

    #[test]
    fn error_budget_aborts_the_stream() {
        let mut text = String::new();
        for _ in 0..10 {
            text.push_str("complete garbage\n");
        }
        text.push_str("10000 REST.GET.OBJECT tail 5\n");
        let mut s = FormatId::IbmKv.stream(
            Cursor::new(text.into_bytes()),
            IngestConfig {
                error_budget: 3,
                sample: None,
            },
        );
        let items: Vec<_> = s.by_ref().collect();
        // 3 budgeted diagnostics + the final budget-exhausted error,
        // and the stream never reaches the valid tail record.
        assert_eq!(items.len(), 4);
        assert!(items.iter().all(|i| i.is_err()));
        let last = items.last().unwrap().as_ref().unwrap_err();
        assert!(last.to_string().contains("error budget exhausted"));
    }

    #[test]
    fn sampled_out_files_drop_entirely() {
        let mut text = String::new();
        for i in 0..40 {
            for t in 0..3 {
                text.push_str(&format!(
                    "{} REST.GET.OBJECT obj{} 9\n",
                    1000 * (i * 3 + t),
                    i
                ));
            }
        }
        let mut s = FormatId::IbmKv.stream(
            Cursor::new(text.into_bytes()),
            IngestConfig {
                error_budget: 0,
                sample: Some(Sampler::new(1, 2, 42)),
            },
        );
        let recs: Vec<_> = s.by_ref().map(|r| r.unwrap()).collect();
        let counts = s.counts;
        assert_eq!(counts.records + counts.sampled_out, 120);
        // Every surviving file keeps all 3 of its references.
        let mut per_file: std::collections::HashMap<String, u32> = Default::default();
        for r in &recs {
            *per_file.entry(r.mss_path.clone()).or_default() += 1;
        }
        assert!(per_file.values().all(|&n| n == 3), "{per_file:?}");
        assert!(!per_file.is_empty() && per_file.len() < 40);
    }

    #[test]
    fn hashes_are_stable() {
        // Pinned values: the sampling decision is part of the on-disk
        // contract (same seed ⇒ same subset, forever).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::codec::TraceReader;
    use proptest::prelude::*;
    use std::io::Cursor;

    /// Drains a stream, checking the invariants hostile input must not
    /// break: no panic (by construction), monotone record times, and
    /// the error budget bounding the number of diagnostics.
    fn drain(format: FormatId, bytes: &[u8], budget: u64) -> IngestCounts {
        let mut stream = format.stream(
            Cursor::new(bytes.to_vec()),
            IngestConfig {
                error_budget: budget,
                sample: None,
            },
        );
        let mut prev = i64::MIN;
        let mut errors = 0u64;
        for item in stream.by_ref() {
            match item {
                Ok(rec) => {
                    assert!(rec.start.as_unix() >= prev, "non-monotone output");
                    prev = rec.start.as_unix();
                }
                Err(_) => errors += 1,
            }
        }
        assert!(
            errors <= budget.saturating_add(1),
            "diagnostics exceed budget+1"
        );
        stream.counts
    }

    /// One plausible-but-random line per format, biased toward almost-
    /// valid shapes (the interesting failure surface).
    fn arb_line() -> impl Strategy<Value = String> {
        prop_oneof![
            // Pure soup.
            proptest::collection::vec(
                prop_oneof![proptest::char::range(' ', '~'), Just(','), Just('"')],
                0..80
            )
            .prop_map(|cs| cs.into_iter().collect()),
            // MSR-shaped with random fields.
            (
                any::<u64>(),
                0u32..99,
                any::<u64>(),
                any::<u64>(),
                any::<u64>()
            )
                .prop_map(|(t, d, o, s, r)| format!("{t},host,{d},Read,{o},{s},{r}")),
            // CLF-shaped with a random day/zone (often invalid).
            (0u8..40, 0u8..30, -2i32..3).prop_map(|(day, hour, z)| format!(
                "h - - [{day:02}/Mar/1997:{hour:02}:00:00 {}{:04}] \"GET /x HTTP/1.0\" 200 5",
                if z < 0 { '-' } else { '+' },
                z.unsigned_abs() * 100
            )),
            // KV-shaped with a random verb.
            (any::<u64>(), "[A-Z]{2,6}", any::<u64>())
                .prop_map(|(t, v, s)| format!("{t} REST.{v}.OBJECT key{s} {s}")),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary byte soup — including embedded newlines, NULs, and
        /// invalid UTF-8 — never panics any parser and respects the
        /// error budget.
        #[test]
        fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            for format in FormatId::ALL {
                drain(format, &bytes, 16);
            }
        }

        /// Lines that *almost* parse exercise every validation branch
        /// without panicking; valid ones come out monotone.
        #[test]
        fn shaped_lines_never_panic(lines in proptest::collection::vec(arb_line(), 0..40)) {
            let text = lines.join("\n");
            for format in FormatId::ALL {
                drain(format, text.as_bytes(), u64::MAX);
            }
        }

        /// Truncating a valid input at any byte stays panic-free: the
        /// cut line is at worst one diagnostic, never a crash or a
        /// record from thin air.
        #[test]
        fn truncation_is_harmless(cut_back in 0usize..200, n in 1u64..20) {
            let mut text = String::new();
            for i in 0..n {
                text.push_str(&format!("{} REST.GET.OBJECT k{} {}\n", i * 1000, i % 5, i + 1));
            }
            let cut = text.len().saturating_sub(cut_back % text.len().max(1));
            let counts = drain(FormatId::IbmKv, &text.as_bytes()[..cut], 4);
            prop_assert!(counts.records <= n);
        }

        /// The compact-codec reader survives byte soup too: construction
        /// may reject the header, but nothing panics and iteration
        /// terminates.
        #[test]
        fn trace_reader_survives_byte_soup(
            soup in proptest::collection::vec(any::<u8>(), 0..2048),
            with_header in any::<bool>(),
        ) {
            let mut bytes = soup;
            if with_header {
                let mut v = b"# fmig-trace v1\n# epoch 655862400\n".to_vec();
                v.append(&mut bytes);
                bytes = v;
            }
            if let Ok(reader) = TraceReader::new(Cursor::new(bytes)) {
                // Bounded by input size; just drain it.
                for _ in reader {}
            }
        }

    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// MSR field mapping: a well-formed line parses to exactly the
        /// fields it encodes.
        #[test]
        fn msr_roundtrips(
            secs in 0u64..4_000_000_000,
            disk in 0u32..64,
            write in any::<bool>(),
            offset in 0u64..1u64 << 40,
            size in 0u64..1u64 << 30,
            resp_ms in 0u64..600_000,
        ) {
            let ticks = secs * 10_000_000;
            let line = format!(
                "{ticks},srv9,{disk},{},{offset},{size},{}",
                if write { "Write" } else { "Read" },
                resp_ms * 10_000,
            );
            let ev = msr::MsrFormat.parse_line(1, &line).unwrap().unwrap();
            prop_assert_eq!(ev.time.as_unix(), secs as i64 - 11_644_473_600);
            prop_assert_eq!(ev.write, write);
            prop_assert_eq!(ev.size, size);
            prop_assert_eq!(ev.transfer_ms, resp_ms);
            prop_assert_eq!(ev.path, format!("/msr/srv9/d{disk}/x{}", offset >> 20));
        }

        /// CLF timestamp conversion agrees with independent arithmetic
        /// for every in-range civil time and zone.
        #[test]
        fn clf_roundtrips(
            day in 1u8..29,
            hour in 0u8..24,
            minute in 0u8..60,
            zone_minutes in -720i64..721,
            status_ok in any::<bool>(),
            size in 0u64..1u64 << 30,
        ) {
            let (sign, mag) = if zone_minutes < 0 { ('-', -zone_minutes) } else { ('+', zone_minutes) };
            let line = format!(
                "edge7 - bob [{day:02}/Jun/2001:{hour:02}:{minute:02}:30 {sign}{:02}{:02}] \"GET /d/f.bin HTTP/1.1\" {} {size}",
                mag / 60, mag % 60,
                if status_ok { 200 } else { 404 },
            );
            let ev = clf::ClfFormat.parse_line(1, &line).unwrap().unwrap();
            let local = Timestamp::from_civil_parts(2001, 6, day)
                .add_secs(i64::from(hour) * 3600 + i64::from(minute) * 60 + 30);
            prop_assert_eq!(ev.time, local.add_secs(-zone_minutes * 60));
            prop_assert_eq!(ev.size, size);
            prop_assert_eq!(ev.error.is_some(), !status_ok);
        }

        /// KV lines parse to exactly their fields, with or without the
        /// optional range trailer.
        #[test]
        fn ibmkv_roundtrips(
            ms in 0u64..1u64 << 40,
            write in any::<bool>(),
            has_size in any::<bool>(),
            size_val in 0u64..1u64 << 30,
            range in any::<bool>(),
        ) {
            let size = has_size.then_some(size_val);
            let mut line = format!(
                "{ms} REST.{}.OBJECT deadbeef",
                if write { "PUT" } else { "GET" }
            );
            if let Some(s) = size {
                line.push_str(&format!(" {s}"));
                if range {
                    line.push_str(" 0 1023");
                }
            }
            let ev = ibmkv::IbmKvFormat.parse_line(1, &line).unwrap().unwrap();
            prop_assert_eq!(ev.time.as_unix(), (ms / 1000) as i64);
            prop_assert_eq!(ev.write, write);
            prop_assert_eq!(ev.size, size.unwrap_or(0));
            prop_assert_eq!(ev.path, "/deadbeef");
        }

        /// Same seed ⇒ byte-identical surviving subset, in one pass or
        /// two; and survival is per-file all-or-nothing.
        #[test]
        fn sampler_subset_is_deterministic(
            seed in any::<u64>(),
            keep in 1u32..4,
            refs in proptest::collection::vec((0u32..30, 1u64..100), 1..120),
        ) {
            let text: String = refs
                .iter()
                .enumerate()
                .map(|(i, (f, s))| format!("{} REST.GET.OBJECT f{f} {s}\n", i as u64 * 7))
                .collect();
            let run = || -> Vec<TraceRecord> {
                FormatId::IbmKv
                    .stream(
                        Cursor::new(text.as_bytes().to_vec()),
                        IngestConfig { error_budget: 0, sample: Some(Sampler::new(keep, 4, seed)) },
                    )
                    .map(|r| r.unwrap())
                    .collect()
            };
            let a = run();
            prop_assert_eq!(&a, &run());
            // All-or-nothing: a file either keeps every reference or none.
            let sampler = Sampler::new(keep, 4, seed);
            let expected: Vec<&(u32, u64)> =
                refs.iter().filter(|(f, _)| sampler.keeps(&format!("/f{f}"))).collect();
            prop_assert_eq!(a.len(), expected.len());
            for (rec, (f, s)) in a.iter().zip(expected) {
                prop_assert_eq!(&rec.mss_path, &format!("/f{f}"));
                prop_assert_eq!(rec.file_size, *s);
            }
        }
    }
}
