//! MSR Cambridge block-trace CSV parser.
//!
//! The MSR Cambridge traces (SNIA IOTTA) are CSV lines of the form
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,hm,1,Read,383496192,32768,1331
//! ```
//!
//! * `Timestamp` and `ResponseTime` are Windows FILETIME values: 100 ns
//!   ticks since 1601-01-01 (the response time is a duration in the
//!   same ticks).
//! * `Type` is `Read` or `Write` (case-insensitive).
//! * `Offset`/`Size` are bytes.
//!
//! # Normalization
//!
//! Block addresses are mapped onto the file-migration model by slicing
//! each disk into fixed [`EXTENT_BYTES`] extents: the "file" of a
//! request is `/msr/<host>/d<disk>/x<offset / EXTENT_BYTES>` and its
//! size is the request size. The requesting "user" is a stable hash of
//! the hostname, so per-user statistics group by trace host.

use crate::error::TraceError;
use crate::ingest::{fnv1a64, FormatId, IngestFormat, RawEvent};
use crate::record::DeviceClass;
use crate::time::Timestamp;

/// Extent size used to map block offsets to file identities (1 MiB).
pub const EXTENT_BYTES: u64 = 1 << 20;

/// Seconds between the FILETIME epoch (1601-01-01) and the Unix epoch.
const FILETIME_UNIX_OFFSET_S: i64 = 11_644_473_600;

/// FILETIME ticks per second (100 ns resolution).
const TICKS_PER_S: u64 = 10_000_000;

/// Parser for the MSR Cambridge CSV block format.
#[derive(Debug, Default)]
pub struct MsrFormat;

impl IngestFormat for MsrFormat {
    fn id(&self) -> FormatId {
        FormatId::Msr
    }

    fn parse_line(&mut self, line_no: u64, line: &str) -> Result<Option<RawEvent>, TraceError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        // Header row: some extracts ship the column names.
        if line.starts_with("Timestamp,") {
            return Ok(None);
        }
        let mut fields = line.split(',');
        let mut field = |name: &str| {
            fields
                .next()
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .ok_or_else(|| TraceError::parse(line_no, format!("missing field `{name}`")))
        };
        let ticks: u64 = parse_u64(line_no, "Timestamp", field("Timestamp")?)?;
        let host = field("Hostname")?;
        if !host
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(TraceError::parse(
                line_no,
                format!("hostname `{host}` has unexpected characters"),
            ));
        }
        let disk: u32 = parse_u64(line_no, "DiskNumber", field("DiskNumber")?)?
            .try_into()
            .map_err(|_| TraceError::parse(line_no, "disk number out of range"))?;
        let ty = field("Type")?;
        let write = if ty.eq_ignore_ascii_case("write") {
            true
        } else if ty.eq_ignore_ascii_case("read") {
            false
        } else {
            return Err(TraceError::parse(
                line_no,
                format!("unknown request type `{ty}`"),
            ));
        };
        let offset = parse_u64(line_no, "Offset", field("Offset")?)?;
        let size = parse_u64(line_no, "Size", field("Size")?)?;
        let resp_ticks = parse_u64(line_no, "ResponseTime", field("ResponseTime")?)?;

        let unix = (ticks / TICKS_PER_S) as i64 - FILETIME_UNIX_OFFSET_S;
        let host_hash = fnv1a64(host.as_bytes());
        Ok(Some(RawEvent {
            time: Timestamp::from_unix(unix),
            path: format!("/msr/{host}/d{disk}/x{}", offset / EXTENT_BYTES),
            size,
            write,
            device: DeviceClass::Disk,
            uid: (host_hash % 997) as u32,
            transfer_ms: resp_ticks / (TICKS_PER_S / 1000),
            error: None,
        }))
    }
}

fn parse_u64(line_no: u64, name: &str, text: &str) -> Result<u64, TraceError> {
    text.parse().map_err(|_| {
        TraceError::parse(line_no, format!("field `{name}` is not a number: `{text}`"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Option<RawEvent>, TraceError> {
        MsrFormat.parse_line(1, line)
    }

    #[test]
    fn parses_a_reference_line() {
        // 128166372003061629 ticks = 2007-02-01T11:40:00Z (ish).
        let ev = parse("128166372003061629,hm,1,Read,383496192,32768,1331")
            .unwrap()
            .unwrap();
        assert_eq!(
            ev.time.as_unix(),
            128_166_372_003_061_629 / 10_000_000 - 11_644_473_600
        );
        assert_eq!(ev.path, "/msr/hm/d1/x365");
        assert_eq!(ev.size, 32_768);
        assert!(!ev.write);
        assert_eq!(ev.device, DeviceClass::Disk);
        assert_eq!(ev.transfer_ms, 0, "1331 ticks is 133 µs");
        assert!(ev.error.is_none());
    }

    #[test]
    fn write_type_is_case_insensitive() {
        assert!(parse("1,h,0,WRITE,0,1,0").unwrap().unwrap().write);
        assert!(!parse("1,h,0,read,0,1,0").unwrap().unwrap().write);
    }

    #[test]
    fn header_comment_and_blank_lines_skip() {
        assert_eq!(
            parse("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime").unwrap(),
            None
        );
        assert_eq!(parse("# a comment").unwrap(), None);
        assert_eq!(parse("   ").unwrap(), None);
    }

    #[test]
    fn malformed_lines_are_diagnostics() {
        for bad in [
            "oops",
            "1,h,0,Read,0,1",             // missing ResponseTime
            "1,h,0,Chew,0,1,0",           // unknown type
            "x,h,0,Read,0,1,0",           // bad timestamp
            "1,h,nine,Read,0,1,0",        // bad disk
            "1,bad host,0,Read,0,1,0",    // space in hostname
            "1,h,99999999999,Read,0,1,0", // disk overflows u32
            "1,h,0,Read,0,,0",            // empty size
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn extents_partition_the_offset_space() {
        let a = parse("1,h,0,Read,0,1,0").unwrap().unwrap();
        let b = parse("1,h,0,Read,1048575,1,0").unwrap().unwrap();
        let c = parse("1,h,0,Read,1048576,1,0").unwrap().unwrap();
        assert_eq!(a.path, b.path);
        assert_ne!(b.path, c.path);
    }
}
