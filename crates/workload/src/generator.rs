//! The synthetic trace generator: ties namespace, population, and rate
//! models into a time-ordered stream of [`TraceRecord`]s.
//!
//! # Generative model
//!
//! * Each directory is a **dataset** born either before the trace window
//!   (its creation writes are invisible) or during it (a batch job writes
//!   its files in bursts of 20–200 with ~3 s gaps — the §5.2.1 request
//!   clustering).
//! * Datasets with re-written files receive later **update jobs** that
//!   rewrite the affected subset in another burst.
//! * Reads arrive in **sessions**: a researcher visits a dataset and
//!   steps through a contiguous run of its files with ~3 s gaps. Session
//!   times follow a clustered renewal process (same-day, next-morning,
//!   next-week, and months-later components — Figure 9) thinned by the
//!   diurnal/weekly/growth/holiday read-rate model (Figures 4–6).
//! * Every request may spawn **echo** re-requests of the same file within
//!   eight hours, reproducing §6's "about one third of all requests came
//!   within eight hours of another request for the same file".
//! * 4.76% of raw references are **errors**, dominated by requests for
//!   files that never existed (§5.1).
//! * Devices are assigned in a final chronological pass implementing the
//!   NCAR placement policy: files under 30 MB live on MSS disk while
//!   warm, larger files go to tape; cold data migrates to shelved
//!   cartridges needing an operator mount (§3.1, §6).

use fmig_trace::time::{Timestamp, DAY, HOUR, TRACE_END, TRACE_EPOCH, TRACE_SECONDS};
use fmig_trace::{DeviceClass, Endpoint, ErrorKind, FileId, FileTable, TraceRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist::{Discrete, Exp, LogNormal, Sample};
use crate::namespace::Namespace;
use crate::population::{build_dataset_files, sessions_needed, FileSpec, SizeModel};
use crate::preset::WorkloadConfig;
use crate::rate::RateModel;

/// Immutable metadata for one generated file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// Directory (dataset) id in the namespace.
    pub dir: u32,
    /// Position within the directory, used to derive the file name.
    pub name_seq: u32,
    /// File size in bytes.
    pub size: u64,
}

/// Direction-or-error discriminant of a raw event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventKind {
    /// Successful read (MSS → Cray).
    Read = 0,
    /// Successful write (Cray → MSS).
    Write = 1,
}

/// One generated event, prior to rendering as a [`TraceRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawEvent {
    /// Absolute time, seconds since the Unix epoch.
    pub time: i64,
    /// File index into [`Workload::files`], or `u32::MAX` for error
    /// events referencing files that never existed.
    pub file: u32,
    /// Requesting user.
    pub uid: u32,
    /// Read or write.
    pub kind: EventKind,
    /// MSS device class (0 disk / 1 silo / 2 manual).
    pub device: u8,
    /// Error code (0 = ok; `ErrorKind` codes otherwise).
    pub err: u8,
}

impl RawEvent {
    /// The device class assigned to this event.
    pub fn device_class(&self) -> DeviceClass {
        match self.device {
            0 => DeviceClass::Disk,
            1 => DeviceClass::TapeSilo,
            _ => DeviceClass::TapeManual,
        }
    }
}

/// A fully generated synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    config: WorkloadConfig,
    namespace: Namespace,
    /// Directory paths interned through the workspace-wide interner
    /// (see [`fmig_trace::FileTable`]), replacing a module-local
    /// `Vec<String>` id scheme. Distinct namespace nodes can render to
    /// the same path (sibling subtrees reuse name pools at scale), and
    /// the table dedupes those, so `dir_ids` carries the dense id for
    /// each namespace directory index.
    dirs: FileTable,
    dir_ids: Vec<FileId>,
    files: Vec<FileMeta>,
    events: Vec<RawEvent>,
}

impl Workload {
    /// Generates the full workload for a configuration.
    ///
    /// Deterministic in `config` (including its seed).
    pub fn generate(config: &WorkloadConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let namespace = Namespace::generate(config, &mut rng);
        let mut dirs = FileTable::with_capacity(namespace.len());
        let dir_ids: Vec<FileId> = (0..namespace.len() as u32)
            .map(|d| dirs.intern(&namespace.path(d)))
            .collect();
        let sizes = SizeModel::ncar(config.max_file_bytes);
        let read_model = RateModel::read(config.read_growth);
        let write_model = RateModel::write();
        let n_users = config.target_users();

        let mut files: Vec<FileMeta> = Vec::new();
        let mut events: Vec<RawEvent> = Vec::new();
        let mut dataset_births: Vec<i64> = Vec::with_capacity(namespace.len());

        let disk_gap = Exp::new(config.intra_burst_gap_s);
        let tape_gap = Exp::new(config.tape_paced_gap_s);
        let cold_gap = Exp::new(config.cold_session_gap_s);
        let echo_gap = Exp::new(40.0 * 60.0);
        let job_gap = LogNormal::from_median(2.0 * DAY as f64, 1.0);
        let rewrite_gap = LogNormal::from_median(3.0 * DAY as f64, 1.0);
        let first_read_lag = LogNormal::from_median(4.0 * HOUR as f64, 1.0);
        // Session-gap mixture: same-workday re-visits (folded away by the
        // paper's 8-hour dedup), the dominant next-morning return that
        // puts 70% of Figure 9's intervals under one day, next-week
        // returns, and the months-later long tail.
        let session_gap_mix = Discrete::new(&[0.24, 0.64, 0.08, 0.04]);
        let session_gaps: [LogNormal; 3] = [
            LogNormal::from_median(10.0 * HOUR as f64, 0.35),
            LogNormal::from_median(4.0 * DAY as f64, 0.8),
            LogNormal::from_median(60.0 * DAY as f64, 1.2),
        ];
        let same_day_gap = Exp::new(1.5 * HOUR as f64);

        for (dir_id, dir) in namespace.dirs().iter().enumerate() {
            let pre = rng.gen::<f64>() < config.pre_trace_fraction;
            let birth = if pre {
                TRACE_EPOCH.as_unix()
                    - (rng.gen::<f64>() * config.pre_trace_span_years * 365.25 * DAY as f64) as i64
                    - 1
            } else {
                TRACE_EPOCH.as_unix() + (rng.gen::<f64>() * TRACE_SECONDS as f64 * 0.98) as i64
            };
            dataset_births.push(birth);
            if dir.file_count == 0 {
                continue;
            }
            // Figure 6: reads grow ~2x across the trace while writes stay
            // flat. Re-read intensity scales with the dataset's birth
            // position; pre-trace datasets (read uniformly across the
            // window) stay neutral.
            let read_scale = if pre {
                1.0
            } else {
                let frac =
                    ((birth - TRACE_EPOCH.as_unix()) as f64 / TRACE_SECONDS as f64).clamp(0.0, 1.0);
                0.55 + 1.15 * frac
            };
            let specs = build_dataset_files(&mut rng, dir.file_count, pre, read_scale, &sizes);
            let base = files.len() as u32;
            for (i, spec) in specs.iter().enumerate() {
                files.push(FileMeta {
                    dir: dir_id as u32,
                    name_seq: i as u32,
                    size: spec.size,
                });
            }
            let owner = dir.owner_uid;

            // Large directories are project archives worked on by many
            // people: schedule them as independent ~180-file segments so
            // one visit stays within a working day. Without this, a
            // session over a 5,000-file directory spans days and drags
            // Figure 9's interreference intervals far past one day.
            const SEGMENT: usize = 180;
            let mut seg_birth = birth;
            for (seg_idx, seg) in specs.chunks(SEGMENT).enumerate() {
                let seg_base = base + (seg_idx * SEGMENT) as u32;
                if seg_idx > 0 {
                    // Later segments accumulate as the project produces
                    // more data.
                    seg_birth += (rng.gen::<f64>() * 6.0 * DAY as f64) as i64;
                }
                if !pre {
                    schedule_writes(
                        &mut rng,
                        &mut events,
                        config,
                        seg,
                        seg_base,
                        owner,
                        seg_birth,
                        &write_model,
                        &disk_gap,
                        &tape_gap,
                        &echo_gap,
                        &job_gap,
                        &rewrite_gap,
                    );
                }
                // Reading starts shortly after the segment lands — the
                // researcher reviews tonight's run tomorrow morning, not
                // after the whole project finishes writing.
                let first_session_nominal = if pre {
                    TRACE_EPOCH.as_unix() + (rng.gen::<f64>() * TRACE_SECONDS as f64) as i64
                } else {
                    seg_birth + first_read_lag.sample(&mut rng) as i64
                };
                schedule_reads(
                    &mut rng,
                    &mut events,
                    config,
                    seg,
                    seg_base,
                    owner,
                    n_users,
                    first_session_nominal,
                    seg_birth,
                    &read_model,
                    &disk_gap,
                    &tape_gap,
                    &cold_gap,
                    &echo_gap,
                    &session_gap_mix,
                    &session_gaps,
                    &same_day_gap,
                );
            }
        }

        // Drop anything outside the observation window, then order by time.
        events.retain(|e| e.time >= TRACE_EPOCH.as_unix() && e.time < TRACE_END.as_unix());
        inject_errors(&mut rng, &mut events, config, n_users);
        events.sort_by_key(|e| e.time);

        assign_devices(&mut rng, &mut events, config, &files, &dataset_births);

        Workload {
            config: config.clone(),
            namespace,
            dirs,
            dir_ids,
            files,
            events,
        }
    }

    /// The configuration this workload was generated from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The generated namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Metadata for every generated file.
    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// The raw time-ordered event stream.
    pub fn events(&self) -> &[RawEvent] {
        &self.events
    }

    /// Number of trace records this workload will emit.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the workload generated no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The MSS path of a generated file.
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range.
    pub fn file_path(&self, file: u32) -> String {
        file_path_of(&self.files, &self.dirs, &self.dir_ids, file)
    }

    /// Streams the workload as trace records, in time order.
    pub fn records(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.events
            .iter()
            .enumerate()
            .map(move |(i, ev)| render_event(&self.files, &self.dirs, &self.dir_ids, i, ev))
    }

    /// Consumes the workload into an owning record stream.
    ///
    /// Renders exactly what [`Workload::records`] renders, but without a
    /// live borrow: a sweep cell can hand the stream to the simulator or
    /// the analysis pass and let the per-record [`TraceRecord`]s (path
    /// strings included) be built and dropped one at a time instead of
    /// materializing the full annotated `Vec<TraceRecord>`.
    pub fn into_records(self) -> RecordStream {
        RecordStream {
            files: self.files,
            dirs: self.dirs,
            dir_ids: self.dir_ids,
            events: self.events.into_iter(),
            seq: 0,
        }
    }
}

/// Owning time-ordered record stream; see [`Workload::into_records`].
#[derive(Debug, Clone)]
pub struct RecordStream {
    files: Vec<FileMeta>,
    dirs: FileTable,
    dir_ids: Vec<FileId>,
    events: std::vec::IntoIter<RawEvent>,
    seq: usize,
}

impl Iterator for RecordStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let ev = self.events.next()?;
        let rec = render_event(&self.files, &self.dirs, &self.dir_ids, self.seq, &ev);
        self.seq += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.events.size_hint()
    }
}

impl ExactSizeIterator for RecordStream {}

fn file_path_of(files: &[FileMeta], dirs: &FileTable, dir_ids: &[FileId], file: u32) -> String {
    let meta = &files[file as usize];
    let dir = dirs
        .name(dir_ids[meta.dir as usize])
        .expect("directory interned");
    format!("{dir}/f{:04}", meta.name_seq)
}

fn render_event(
    files: &[FileMeta],
    dirs: &FileTable,
    dir_ids: &[FileId],
    seq: usize,
    ev: &RawEvent,
) -> TraceRecord {
    let start = Timestamp::from_unix(ev.time);
    if ev.err != 0 {
        let mut rec = TraceRecord::read(
            Endpoint::MssDisk,
            start,
            0,
            format!("/scratch/lost+{seq:07}"),
            ev.uid,
        );
        rec.error = ErrorKind::from_code(ev.err);
        return rec;
    }
    let meta = &files[ev.file as usize];
    let device = ev.device_class().endpoint();
    let path = file_path_of(files, dirs, dir_ids, ev.file);
    let mut rec = match ev.kind {
        EventKind::Read => TraceRecord::read(device, start, meta.size, path, ev.uid),
        EventKind::Write => TraceRecord::write(device, start, meta.size, path, ev.uid),
    };
    rec.transfer_ms = transfer_ms(meta.size, ev.device_class(), ev.file, ev.time);
    rec
}

/// Nominal transfer time: ~2–2.5 MB/s depending on device (§5.1.1: "both
/// the tapes and the disks can transfer at a peak rate of 3 MB/sec, but
/// the observed rates are usually closer to 2 MB/sec"), with ±15%
/// deterministic jitter derived from the event identity.
pub fn transfer_ms(size: u64, device: DeviceClass, file: u32, time: i64) -> u64 {
    let rate = match device {
        DeviceClass::Disk => 2.4e6,
        DeviceClass::TapeSilo => 2.2e6,
        DeviceClass::TapeManual => 2.0e6,
    };
    let h = splitmix64((file as u64) << 32 ^ time as u64);
    let jitter = 0.85 + 0.30 * ((h >> 11) as f64 / (1u64 << 53) as f64);
    (size as f64 / (rate * jitter) * 1000.0) as u64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pushes an event plus its geometric chain of within-8-hours echoes.
#[expect(clippy::too_many_arguments)]
fn push_with_echoes<R: Rng + ?Sized>(
    rng: &mut R,
    events: &mut Vec<RawEvent>,
    config: &WorkloadConfig,
    echo_gap: &Exp,
    time: i64,
    file: u32,
    uid: u32,
    kind: EventKind,
) {
    events.push(RawEvent {
        time,
        file,
        uid,
        kind,
        device: 0,
        err: 0,
    });
    let mut t = time;
    while rng.gen::<f64>() < config.echo_probability {
        t += (echo_gap.sample(rng) as i64).clamp(30, 7 * HOUR);
        events.push(RawEvent {
            time: t,
            file,
            uid,
            kind,
            device: 0,
            err: 0,
        });
    }
}

/// Schedules the creation-job bursts and update jobs for one dataset.
/// Returns the time of the last write issued.
#[expect(clippy::too_many_arguments)]
fn schedule_writes<R: Rng + ?Sized>(
    rng: &mut R,
    events: &mut Vec<RawEvent>,
    config: &WorkloadConfig,
    specs: &[FileSpec],
    base: u32,
    owner: u32,
    birth: i64,
    write_model: &RateModel,
    disk_gap: &Exp,
    tape_gap: &Exp,
    echo_gap: &Exp,
    job_gap: &LogNormal,
    rewrite_gap: &LogNormal,
) -> i64 {
    let mut last = birth;
    // Creation jobs: the dataset's files arrive in chunks of 20-200
    // (one climate-model run's output per job).
    let mut idx = 0usize;
    let mut job_t = birth;
    while idx < specs.len() {
        let chunk = rng.gen_range(20..=200).min(specs.len() - idx);
        let mut t = job_t as f64;
        #[expect(clippy::needless_range_loop)]
        for i in idx..idx + chunk {
            // `lwrite` is synchronous: a large file paces the script by
            // roughly its transfer time; small files stream out quickly.
            let gap = if specs[i].size >= config.tape_threshold_bytes {
                tape_gap
            } else {
                disk_gap
            };
            t += gap.sample(rng);
            push_with_echoes(
                rng,
                events,
                config,
                echo_gap,
                t as i64,
                base + i as u32,
                owner,
                EventKind::Write,
            );
        }
        last = t as i64;
        idx += chunk;
        if idx < specs.len() {
            let gap = job_gap.sample(rng);
            job_t = write_model
                .modulate(rng, Timestamp::from_unix(last), gap)
                .as_unix();
        }
    }
    // Update jobs: round k rewrites every file expecting more than k writes.
    let max_writes = specs.iter().map(|s| s.writes).max().unwrap_or(0);
    let mut round_t = last;
    for round in 1..max_writes {
        let gap = rewrite_gap.sample(rng);
        round_t = write_model
            .modulate(rng, Timestamp::from_unix(round_t), gap)
            .as_unix();
        if round_t >= TRACE_END.as_unix() {
            break;
        }
        let mut t = round_t as f64;
        for (i, spec) in specs.iter().enumerate() {
            if spec.writes > round {
                let gap = if spec.size >= config.tape_threshold_bytes {
                    tape_gap
                } else {
                    disk_gap
                };
                t += gap.sample(rng);
                push_with_echoes(
                    rng,
                    events,
                    config,
                    echo_gap,
                    t as i64,
                    base + i as u32,
                    owner,
                    EventKind::Write,
                );
            }
        }
        last = last.max(t as i64);
    }
    last
}

/// Schedules the read sessions for one dataset.
#[expect(clippy::too_many_arguments)]
fn schedule_reads<R: Rng + ?Sized>(
    rng: &mut R,
    events: &mut Vec<RawEvent>,
    config: &WorkloadConfig,
    specs: &[FileSpec],
    base: u32,
    owner: u32,
    n_users: u32,
    first_session_nominal: i64,
    birth: i64,
    read_model: &RateModel,
    disk_gap: &Exp,
    tape_gap: &Exp,
    cold_gap: &Exp,
    echo_gap: &Exp,
    gap_mix: &Discrete,
    session_gaps: &[LogNormal; 3],
    same_day_gap: &Exp,
) {
    let n_sessions = sessions_needed(specs);
    if n_sessions == 0 {
        return;
    }
    // Sweep files in and out of the active set as sessions advance.
    let mut by_entry: Vec<u32> = (0..specs.len() as u32)
        .filter(|&i| specs[i as usize].reads > 0)
        .collect();
    by_entry.sort_by_key(|&i| specs[i as usize].first_session);
    let mut next_entry = 0usize;
    let mut active: Vec<(u32, u32)> = Vec::new(); // (exit_session, file_offset)

    let mut tau = read_model
        .modulate(rng, Timestamp::from_unix(first_session_nominal), 0.0)
        .as_unix();
    let silo_residency_s = (config.silo_residency_days * DAY as f64) as i64;
    // Estimated last touch per file, mirroring the device-assignment
    // rule: files untouched longer than the silo residency live on the
    // shelf, and reading them paces the script at operator speed.
    let mut last_touch: Vec<i64> = vec![birth; specs.len()];
    for k in 0..n_sessions {
        if k > 0 {
            let gap = match gap_mix.index(rng) {
                0 => same_day_gap.sample(rng),
                i => session_gaps[i - 1].sample(rng),
            };
            tau = read_model
                .modulate(rng, Timestamp::from_unix(tau), gap)
                .as_unix();
        }
        while next_entry < by_entry.len() && specs[by_entry[next_entry] as usize].first_session <= k
        {
            let i = by_entry[next_entry];
            let spec = &specs[i as usize];
            active.push((spec.first_session + spec.reads, i));
            next_entry += 1;
        }
        active.retain(|&(exit, _)| exit > k);
        if tau >= TRACE_END.as_unix() {
            break;
        }
        if active.is_empty() {
            continue;
        }
        let uid = if rng.gen::<f64>() < 0.85 {
            owner
        } else {
            rng.gen_range(0..n_users)
        };
        let mut t = tau as f64;
        for &(_, i) in &active {
            // The synchronous `lread` paces the session: shelf files cost
            // an operator mount, silo files a robot mount plus seek plus
            // transfer, disk files almost nothing.
            let est_age = t as i64 - last_touch[i as usize];
            let gap = if est_age > silo_residency_s {
                cold_gap
            } else if specs[i as usize].size >= config.tape_threshold_bytes {
                tape_gap
            } else {
                disk_gap
            };
            t += gap.sample(rng);
            // Sessions respect the calendar: overnight and weekend work
            // pauses until the researcher returns (Figures 4-5).
            t = read_model
                .pace(rng, Timestamp::from_unix(t as i64))
                .as_unix() as f64;
            last_touch[i as usize] = t as i64;
            push_with_echoes(
                rng,
                events,
                config,
                echo_gap,
                t as i64,
                base + i,
                uid,
                EventKind::Read,
            );
        }
        // Sessions serialize: the researcher finishes stepping through
        // this visit before the next one begins, so the next session's
        // gap counts from the end of this one. Without this, a large
        // cold dataset would run dozens of operator-paced restage
        // trickles in parallel and swamp the shelf-tape operators.
        tau = t as i64;
    }
}

/// Adds the §5.1 error population: requests for files that never existed,
/// media errors, and premature terminations, at the configured fraction
/// of raw references.
fn inject_errors<R: Rng + ?Sized>(
    rng: &mut R,
    events: &mut Vec<RawEvent>,
    config: &WorkloadConfig,
    n_users: u32,
) {
    if events.is_empty() || config.error_fraction <= 0.0 {
        return;
    }
    let n_good = events.len();
    let n_err =
        ((n_good as f64) * config.error_fraction / (1.0 - config.error_fraction)).round() as usize;
    let kind_mix = Discrete::new(&[0.85, 0.10, 0.05]);
    for _ in 0..n_err {
        // Errors track overall activity: jitter around an existing event.
        let anchor = events[rng.gen_range(0..n_good)].time;
        let time = (anchor + rng.gen_range(-HOUR..HOUR))
            .clamp(TRACE_EPOCH.as_unix(), TRACE_END.as_unix() - 1);
        let err = match kind_mix.index(rng) {
            0 => ErrorKind::FileNotFound,
            1 => ErrorKind::MediaError,
            _ => ErrorKind::PrematureTermination,
        }
        .code();
        events.push(RawEvent {
            time,
            file: u32::MAX,
            uid: rng.gen_range(0..n_users),
            kind: EventKind::Read,
            device: 0,
            err,
        });
    }
}

/// Chronological device-placement pass (§3.1 policy + internal migration).
fn assign_devices<R: Rng + ?Sized>(
    rng: &mut R,
    events: &mut [RawEvent],
    config: &WorkloadConfig,
    files: &[FileMeta],
    dataset_births: &[i64],
) {
    const DISK: u8 = 0;
    const SILO: u8 = 1;
    const MANUAL: u8 = 2;
    let disk_residency = (config.disk_residency_days * DAY as f64) as i64;
    let silo_residency = (config.silo_residency_days * DAY as f64) as i64;
    // Per-file last-reference time; pre-trace files age from their
    // dataset's birth.
    let mut last_ref: Vec<i64> = files
        .iter()
        .map(|f| dataset_births[f.dir as usize])
        .collect();
    for ev in events.iter_mut() {
        if ev.err != 0 {
            continue;
        }
        let meta = &files[ev.file as usize];
        let small = meta.size < config.tape_threshold_bytes;
        ev.device = match ev.kind {
            EventKind::Write => {
                if small {
                    DISK
                } else {
                    // Shelf writes skew toward mid-size files (Table 3:
                    // manual write average 47.7 MB vs silo 79.8 MB).
                    let p = (config.manual_write_fraction * (5.0e7 / meta.size as f64).sqrt())
                        .clamp(0.01, 0.30);
                    if rng.gen::<f64>() < p {
                        MANUAL
                    } else {
                        SILO
                    }
                }
            }
            EventKind::Read => {
                let age = ev.time - last_ref[ev.file as usize];
                if small {
                    if age <= disk_residency {
                        DISK
                    } else if age <= silo_residency {
                        SILO
                    } else {
                        MANUAL
                    }
                } else if age <= silo_residency {
                    SILO
                } else {
                    MANUAL
                }
            }
        };
        last_ref[ev.file as usize] = ev.time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::Direction;

    fn small_workload() -> Workload {
        Workload::generate(&WorkloadConfig {
            scale: 0.002,
            seed: 11,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_workload();
        let b = small_workload();
        assert_eq!(a, b);
    }

    #[test]
    fn events_are_time_ordered_and_in_window() {
        let w = small_workload();
        assert!(!w.is_empty());
        let mut prev = i64::MIN;
        for ev in w.events() {
            assert!(ev.time >= prev, "events out of order");
            assert!(ev.time >= TRACE_EPOCH.as_unix() && ev.time < TRACE_END.as_unix());
            prev = ev.time;
        }
    }

    #[test]
    fn error_fraction_near_configured() {
        let w = small_workload();
        let errors = w.events().iter().filter(|e| e.err != 0).count();
        let frac = errors as f64 / w.len() as f64;
        assert!((frac - 0.0476).abs() < 0.01, "error fraction {frac}");
    }

    #[test]
    fn read_share_is_roughly_two_to_one() {
        let w = small_workload();
        let reads = w
            .events()
            .iter()
            .filter(|e| e.err == 0 && e.kind == EventKind::Read)
            .count();
        let writes = w
            .events()
            .iter()
            .filter(|e| e.err == 0 && e.kind == EventKind::Write)
            .count();
        let share = reads as f64 / (reads + writes) as f64;
        assert!((0.55..0.78).contains(&share), "read share {share}");
    }

    #[test]
    fn small_writes_hit_disk_large_writes_hit_tape() {
        let w = small_workload();
        for ev in w.events().iter().filter(|e| e.err == 0) {
            let size = w.files()[ev.file as usize].size;
            if ev.kind == EventKind::Write {
                if size < w.config().tape_threshold_bytes {
                    assert_eq!(ev.device_class(), DeviceClass::Disk);
                } else {
                    assert_ne!(ev.device_class(), DeviceClass::Disk);
                }
            }
        }
    }

    #[test]
    fn records_match_events() {
        let w = small_workload();
        let records: Vec<TraceRecord> = w.records().collect();
        assert_eq!(records.len(), w.len());
        for (rec, ev) in records.iter().zip(w.events()) {
            assert_eq!(rec.start.as_unix(), ev.time);
            assert_eq!(rec.uid, ev.uid);
            if ev.err == 0 {
                let expected = match ev.kind {
                    EventKind::Read => Direction::Read,
                    EventKind::Write => Direction::Write,
                };
                assert_eq!(rec.direction(), expected);
                assert_eq!(rec.mss_device(), Some(ev.device_class()));
                assert_eq!(rec.file_size, w.files()[ev.file as usize].size);
                assert!(rec.transfer_ms > 0 || rec.file_size < 4096);
            } else {
                assert!(rec.error.is_some());
            }
        }
    }

    #[test]
    fn owning_stream_matches_borrowed_records() {
        let w = small_workload();
        let borrowed: Vec<TraceRecord> = w.records().collect();
        let mut stream = w.clone().into_records();
        assert_eq!(stream.len(), w.len());
        let owned: Vec<TraceRecord> = stream.by_ref().collect();
        assert_eq!(borrowed, owned);
        assert_eq!(stream.len(), 0);
    }

    #[test]
    fn paths_are_unique_per_file_and_stable() {
        let w = small_workload();
        let n = w.files().len().min(500);
        let mut seen = std::collections::HashSet::new();
        for f in 0..n as u32 {
            let p = w.file_path(f);
            assert!(p.starts_with('/'));
            assert!(seen.insert(p.clone()), "duplicate path {p}");
            assert_eq!(w.file_path(f), p);
        }
    }

    #[test]
    fn transfer_time_tracks_size_and_device() {
        let ms_disk = transfer_ms(24_000_000, DeviceClass::Disk, 1, 1000);
        // 24 MB at ~2.4 MB/s is about 10s, within the ±15% jitter band.
        assert!((8_000..12_500).contains(&ms_disk), "disk {ms_disk}");
        let ms_tape = transfer_ms(24_000_000, DeviceClass::TapeManual, 1, 1000);
        assert!(ms_tape > ms_disk / 2, "tape not absurdly fast");
        // Deterministic.
        assert_eq!(ms_disk, transfer_ms(24_000_000, DeviceClass::Disk, 1, 1000));
    }

    #[test]
    fn echoes_create_same_file_re_requests_within_8h() {
        let w = small_workload();
        use std::collections::HashMap;
        let mut last_seen: HashMap<u32, i64> = HashMap::new();
        let mut within_8h = 0usize;
        let mut total = 0usize;
        for ev in w.events().iter().filter(|e| e.err == 0) {
            total += 1;
            if let Some(&prev) = last_seen.get(&ev.file) {
                if ev.time - prev <= 8 * HOUR {
                    within_8h += 1;
                }
            }
            last_seen.insert(ev.file, ev.time);
        }
        let frac = within_8h as f64 / total as f64;
        // §6: "about one third"; generous tolerance at tiny scale.
        assert!(
            (0.18..0.50).contains(&frac),
            "8-hour repeat fraction {frac}"
        );
    }
}
