//! Published NCAR numbers (calibration targets) and the workload config.
//!
//! [`PaperTargets`] transcribes every quantitative claim in Tables 3–4 and
//! Figures 3–12 of the paper; the generator is calibrated against these
//! and `fmig-analysis` compares measured values back to them. The
//! [`WorkloadConfig`] exposes the generator's tunables with defaults that
//! reproduce the published shape at any `scale`.

use serde::{Deserialize, Serialize};

/// Every number the paper reports that the reproduction targets.
///
/// Values are as printed in the paper; where the scan is ambiguous the
/// value consistent with the row/column percentages was chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperTargets {
    /// Raw references including errors (§5.1).
    pub raw_references: u64,
    /// Errored references (4.76% of raw).
    pub errored_references: u64,
    /// Successful read references (Table 3).
    pub read_references: u64,
    /// Successful write references (Table 3).
    pub write_references: u64,
    /// Read references by device `[disk, silo, manual]` (Table 3).
    pub read_refs_by_device: [u64; 3],
    /// Write references by device `[disk, silo, manual]` (Table 3).
    pub write_refs_by_device: [u64; 3],
    /// GB read / written (Table 3).
    pub gb_read: f64,
    /// GB written (Table 3).
    pub gb_written: f64,
    /// GB read by device `[disk, silo, manual]`.
    pub gb_read_by_device: [f64; 3],
    /// GB written by device `[disk, silo, manual]`.
    pub gb_written_by_device: [f64; 3],
    /// Average read / write file size in MB (Table 3).
    pub avg_read_mb: f64,
    /// Average write size in MB.
    pub avg_write_mb: f64,
    /// Average file size by device `[disk, silo, manual]`, reads, MB.
    pub avg_read_mb_by_device: [f64; 3],
    /// Average file size by device `[disk, silo, manual]`, writes, MB.
    pub avg_write_mb_by_device: [f64; 3],
    /// Mean seconds to first byte, reads / writes (Table 3).
    pub latency_read_s: f64,
    /// Mean seconds to first byte for writes.
    pub latency_write_s: f64,
    /// Mean latency by device `[disk, silo, manual]`, reads.
    pub latency_read_s_by_device: [f64; 3],
    /// Mean latency by device `[disk, silo, manual]`, writes.
    pub latency_write_s_by_device: [f64; 3],

    /// Files on the store that were referenced (Table 4, "over 900,000").
    pub store_files: u64,
    /// Average stored file size, MB (Table 4).
    pub store_avg_file_mb: f64,
    /// Directories (Table 4).
    pub store_directories: u64,
    /// Files in the largest directory (Table 4).
    pub largest_directory: u64,
    /// Maximum directory depth (Table 4).
    pub max_directory_depth: u32,
    /// Total referenced data, TB (Table 4).
    pub store_total_tb: f64,
    /// Active users (§5.1, "4,000 users").
    pub users: u64,

    /// Fraction of MSS request gaps under 10 s (Fig 7, "90%").
    pub global_gap_under_10s: f64,
    /// Mean interval between MSS requests, seconds (§5.2.1, 18 s).
    pub global_mean_gap_s: f64,
    /// Fraction of files with zero reads (Fig 8, 50%).
    pub files_never_read: f64,
    /// Fraction of files with zero writes (Fig 8, 21%).
    pub files_never_written: f64,
    /// Fraction of files accessed exactly once (§5.3, 57%).
    pub files_accessed_once: f64,
    /// Fraction of files accessed exactly twice (§5.3, 19%).
    pub files_accessed_twice: f64,
    /// Fraction written exactly once and never read (§5.3, 44%).
    pub files_write_once_never_read: f64,
    /// Fraction of files written exactly once (§5.3, 65%).
    pub files_written_once: f64,
    /// Fraction of files referenced more than ten times (Fig 8, ~5%).
    pub files_over_ten_refs: f64,
    /// Fraction of per-file interreference intervals under one day
    /// (Fig 9, 70%).
    pub file_gap_under_1d: f64,
    /// Fraction of requests within 8 hours of a previous request for the
    /// same file (§6, "about one third").
    pub requests_within_8h_of_same_file: f64,
    /// Fraction of dynamic requests at or under 1 MB (Fig 10, 40%).
    pub dynamic_under_1mb: f64,
    /// Fraction of stored files under 3 MB (Fig 11, ~50%).
    pub static_under_3mb_files: f64,
    /// Fraction of stored data in files under 3 MB (Fig 11, ~2%).
    pub static_under_3mb_data: f64,
    /// Fraction of directories with zero or one file (Fig 12, 75%).
    pub dirs_at_most_one_file: f64,
    /// Fraction of directories with at most ten files (Fig 12, 90%).
    pub dirs_at_most_ten_files: f64,
    /// Fraction of files held by the largest 5% of directories (Fig 12, ~50%).
    pub files_in_top5pct_dirs: f64,
    /// Trace length in days (§5.2.1).
    pub trace_days: u64,
}

impl PaperTargets {
    /// The published values.
    pub const fn ncar() -> Self {
        PaperTargets {
            raw_references: 3_688_817,
            errored_references: 175_633,
            read_references: 2_336_747,
            write_references: 1_179_047,
            read_refs_by_device: [1_419_280, 480_545, 436_922],
            write_refs_by_device: [927_722, 239_162, 12_163],
            gb_read: 63_926.2,
            gb_written: 23_389.9,
            gb_read_by_device: [5_080.4, 38_256.6, 20_589.2],
            gb_written_by_device: [3_727.9, 19_081.4, 580.6],
            avg_read_mb: 27.36,
            avg_write_mb: 19.84,
            avg_read_mb_by_device: [3.58, 79.61, 47.12],
            avg_write_mb_by_device: [4.02, 79.78, 47.74],
            latency_read_s: 98.1,
            latency_write_s: 38.6,
            latency_read_s_by_device: [32.47, 115.14, 292.58],
            latency_write_s_by_device: [25.39, 81.86, 203.84],
            store_files: 900_000,
            store_avg_file_mb: 25.0,
            store_directories: 143_245,
            largest_directory: 24_926,
            max_directory_depth: 12,
            store_total_tb: 23.0,
            users: 4_000,
            global_gap_under_10s: 0.90,
            global_mean_gap_s: 18.0,
            files_never_read: 0.50,
            files_never_written: 0.21,
            files_accessed_once: 0.57,
            files_accessed_twice: 0.19,
            files_write_once_never_read: 0.44,
            files_written_once: 0.65,
            files_over_ten_refs: 0.05,
            file_gap_under_1d: 0.70,
            requests_within_8h_of_same_file: 1.0 / 3.0,
            dynamic_under_1mb: 0.40,
            static_under_3mb_files: 0.50,
            static_under_3mb_data: 0.02,
            dirs_at_most_one_file: 0.75,
            dirs_at_most_ten_files: 0.90,
            files_in_top5pct_dirs: 0.50,
            trace_days: 731,
        }
    }

    /// Read share of successful references implied by Table 3 (~0.665).
    pub fn read_share(&self) -> f64 {
        self.read_references as f64 / (self.read_references + self.write_references) as f64
    }

    /// Error fraction implied by §5.1 (~0.0476).
    pub fn error_fraction(&self) -> f64 {
        self.errored_references as f64 / self.raw_references as f64
    }
}

impl Default for PaperTargets {
    fn default() -> Self {
        Self::ncar()
    }
}

/// Tunable parameters of the synthetic workload generator.
///
/// The defaults are calibrated so the generated trace matches
/// [`PaperTargets`] in shape at any `scale`; `scale = 1.0` approximates
/// the full two-year NCAR volume (~3.5 M successful references, ~900 k
/// files), which takes a few hundred MB of memory. Tests and examples use
/// small scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Linear scale on files, directories, users, and traffic.
    pub scale: f64,
    /// RNG seed; equal seeds give identical traces.
    pub seed: u64,
    /// Mean number of files per directory (Table 4 implies ~6.3).
    pub mean_files_per_dir: f64,
    /// Fraction of datasets created before the trace window opens
    /// (their creation writes are not in the trace).
    pub pre_trace_fraction: f64,
    /// How many years before the epoch pre-existing datasets may be born.
    pub pre_trace_span_years: f64,
    /// Mean gap between requests inside one burst (session or batch job)
    /// for disk-resident (small) files — staging scripts fire these
    /// nearly back to back.
    pub intra_burst_gap_s: f64,
    /// Mean gap before a tape-resident (large) file inside a burst: the
    /// synchronous `lread`/`lwrite` blocks until the previous transfer
    /// completes, so large-file requests pace themselves at roughly the
    /// observed silo latency plus transfer (~2.5 minutes).
    pub tape_paced_gap_s: f64,
    /// Mean gap inside the first (shelf-restage) session of a pre-trace
    /// dataset: each file needs an operator mount, so these trickle.
    pub cold_session_gap_s: f64,
    /// Probability that an access spawns an echoed re-request within 8 h
    /// (§6's "one third of all requests" dedup target).
    pub echo_probability: f64,
    /// Days a small file stays disk-resident without references before the
    /// MSS migrates it to tape.
    pub disk_residency_days: f64,
    /// Days a tape file stays in the silo without references before its
    /// cartridge is shelved.
    pub silo_residency_days: f64,
    /// Fraction of tape writes that go to operator-mounted drives
    /// (Table 3 implies ~4.8% of tape writes).
    pub manual_write_fraction: f64,
    /// Fraction of raw references that fail (§5.1: 4.76%).
    pub error_fraction: f64,
    /// MSS file size cap in bytes (files cannot span cartridges, §3.1).
    pub max_file_bytes: u64,
    /// Placement threshold: files at or above this go straight to tape.
    pub tape_threshold_bytes: u64,
    /// Read-rate growth factor across the two years (Fig 6: roughly 2x).
    pub read_growth: f64,
}

impl WorkloadConfig {
    /// A configuration at the given scale with the calibrated defaults.
    pub fn at_scale(scale: f64) -> Self {
        WorkloadConfig {
            scale,
            ..Self::default()
        }
    }

    /// Target number of directories at this scale.
    pub fn target_dirs(&self) -> usize {
        ((PaperTargets::ncar().store_directories as f64 * self.scale).round() as usize).max(8)
    }

    /// Target number of users at this scale.
    pub fn target_users(&self) -> u32 {
        ((PaperTargets::ncar().users as f64 * self.scale).round() as u32).max(4)
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            scale: 0.01,
            seed: 0x4E43_4152, // "NCAR"
            mean_files_per_dir: 6.3,
            pre_trace_fraction: 0.22,
            pre_trace_span_years: 3.0,
            intra_burst_gap_s: 3.0,
            tape_paced_gap_s: 140.0,
            cold_session_gap_s: 340.0,
            echo_probability: 0.25,
            disk_residency_days: 60.0,
            silo_residency_days: 70.0,
            manual_write_fraction: 0.048,
            error_fraction: 0.0476,
            max_file_bytes: 200_000_000,
            tape_threshold_bytes: 30_000_000,
            read_growth: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_internally_consistent() {
        let t = PaperTargets::ncar();
        // Successful ≈ raw - errors (the paper's own figures disagree by
        // ~2,600 references, about 0.07%; we only require closeness).
        let successful = t.read_references + t.write_references;
        let implied = t.raw_references - t.errored_references;
        let gap = successful.abs_diff(implied) as f64 / implied as f64;
        assert!(gap < 0.002, "gap {gap}");
        // Device rows sum to the direction totals.
        assert_eq!(t.read_refs_by_device.iter().sum::<u64>(), t.read_references);
        assert_eq!(
            t.write_refs_by_device.iter().sum::<u64>(),
            t.write_references
        );
        // Read share is the paper's 2:1.
        assert!((t.read_share() - 0.665).abs() < 0.01);
        assert!((t.error_fraction() - 0.0476).abs() < 0.0005);
    }

    #[test]
    fn gb_rows_consistent_with_totals() {
        let t = PaperTargets::ncar();
        let read_sum: f64 = t.gb_read_by_device.iter().sum();
        let write_sum: f64 = t.gb_written_by_device.iter().sum();
        assert!((read_sum - t.gb_read).abs() / t.gb_read < 0.01);
        assert!((write_sum - t.gb_written).abs() / t.gb_written < 0.01);
    }

    #[test]
    fn avg_sizes_consistent_with_gb_and_refs() {
        let t = PaperTargets::ncar();
        // avg read MB = GB read * 1000 / read refs (paper rounds; allow 3%).
        let implied = t.gb_read * 1e3 / t.read_references as f64;
        assert!(
            (implied - t.avg_read_mb).abs() / t.avg_read_mb < 0.03,
            "implied {implied}"
        );
    }

    #[test]
    fn store_totals_consistent() {
        let t = PaperTargets::ncar();
        let implied_tb = t.store_files as f64 * t.store_avg_file_mb / 1e6;
        assert!((implied_tb - t.store_total_tb).abs() / t.store_total_tb < 0.05);
    }

    #[test]
    fn config_scaling() {
        let c = WorkloadConfig::at_scale(0.1);
        assert_eq!(c.target_dirs(), 14_325);
        assert_eq!(c.target_users(), 400);
        let tiny = WorkloadConfig::at_scale(1e-9);
        assert!(tiny.target_dirs() >= 8);
        assert!(tiny.target_users() >= 4);
    }
}
