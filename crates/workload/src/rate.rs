//! Time-varying arrival-rate model (the periodicity of Figures 4–6).
//!
//! The paper's central systems observation is that **reads are
//! human-driven and periodic while writes are machine-driven and flat**:
//!
//! * Figure 4 — reads jump at 8 AM when scientists arrive and tail off
//!   slowly after 4 PM ("most scientists are more likely to stay late
//!   than to arrive early"); writes barely move over the day.
//! * Figure 5 — reads dip on weekends and bottom out early Monday
//!   morning (maintenance + drained batch queues); writes are flat.
//! * Figure 6 — reads grow roughly 2× across the two years and dip at
//!   Thanksgiving/Christmas; writes stay level because the Cray already
//!   runs at full capacity.
//!
//! [`RateModel`] turns those shapes into a dimensionless weight
//! `w(t) ∈ (0, 1]` used to thin nominal event times into calendar-aware
//! ones (see [`RateModel::modulate`]).

use fmig_trace::time::{Timestamp, Weekday, HOUR, TRACE_SECONDS};
use rand::Rng;

use crate::dist::{Exp, Sample};

/// Relative read intensity for each hour of the day (Figure 4 shape).
///
/// Values are unitless multipliers, maximum 1.0 at the mid-morning peak;
/// the overnight floor is machine-initiated reads from batch jobs.
pub const READ_DIURNAL: [f64; 24] = [
    0.22, 0.18, 0.16, 0.15, 0.15, 0.16, 0.20, 0.35, // 00-07: night floor, early risers
    0.78, 1.00, 1.00, 0.97, 0.90, 0.95, 1.00, 0.98, // 08-15: the 8 AM jump and working day
    0.90, 0.75, 0.60, 0.50, 0.42, 0.36, 0.30, 0.25, // 16-23: slow evening tail-off
];

/// Relative write intensity per hour: nearly flat with a small daytime
/// bump ("users do actually make some write requests", §5.2).
pub const WRITE_DIURNAL: [f64; 24] = [
    0.88, 0.87, 0.86, 0.86, 0.86, 0.86, 0.88, 0.90, //
    0.94, 1.00, 1.00, 0.98, 0.96, 0.97, 1.00, 0.98, //
    0.96, 0.94, 0.92, 0.91, 0.90, 0.89, 0.89, 0.88, //
];

/// Relative read intensity per weekday, Sunday first (Figure 5 shape).
///
/// Monday carries a small extra dip: the Cray is taken down for Monday
/// morning maintenance and the weekend batch queues have drained.
pub const READ_WEEKLY: [f64; 7] = [0.45, 0.82, 1.00, 1.00, 0.98, 0.95, 0.50];

/// Relative write intensity per weekday: the Cray runs batch all weekend.
pub const WRITE_WEEKLY: [f64; 7] = [0.95, 0.93, 1.00, 1.00, 0.99, 0.98, 0.96];

/// Extra Monday-early-morning read suppression (before 6 AM).
const MONDAY_MORNING_FACTOR: f64 = 0.55;

/// Which direction's periodicity profile to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateKind {
    /// Human-driven, strongly periodic, grows over the trace.
    Read,
    /// Machine-driven, flat, capacity-limited.
    Write,
}

/// The composed rate model for one direction.
#[derive(Debug, Clone)]
pub struct RateModel {
    kind: RateKind,
    /// Total growth multiplier applied linearly across the trace window
    /// (reads ~2.0, writes 1.0).
    growth: f64,
}

impl RateModel {
    /// Read-side model with the given end-of-trace growth factor.
    pub fn read(growth: f64) -> Self {
        RateModel {
            kind: RateKind::Read,
            growth: growth.max(1.0),
        }
    }

    /// Write-side model (no growth, no holiday response).
    pub fn write() -> Self {
        RateModel {
            kind: RateKind::Write,
            growth: 1.0,
        }
    }

    /// The dimensionless intensity weight at instant `t`, in `(0, 1]`
    /// relative to [`RateModel::max_weight`].
    pub fn weight(&self, t: Timestamp) -> f64 {
        let hour = t.hour_of_day() as usize;
        let dow = t.weekday();
        let mut w = match self.kind {
            RateKind::Read => READ_DIURNAL[hour] * READ_WEEKLY[dow.index() as usize],
            RateKind::Write => WRITE_DIURNAL[hour] * WRITE_WEEKLY[dow.index() as usize],
        };
        if self.kind == RateKind::Read {
            if dow == Weekday::Monday && hour < 6 {
                w *= MONDAY_MORNING_FACTOR;
            }
            if let Some(holiday) = t.holiday() {
                w *= holiday.read_rate_factor();
            }
            w *= self.growth_factor(t);
        }
        w
    }

    /// Linear growth multiplier at `t`: 1.0 at the epoch, `growth` at the
    /// end of the trace, clamped outside the window.
    pub fn growth_factor(&self, t: Timestamp) -> f64 {
        if self.growth <= 1.0 {
            return 1.0;
        }
        let frac = (t.since_epoch() as f64 / TRACE_SECONDS as f64).clamp(0.0, 1.0);
        1.0 + (self.growth - 1.0) * frac
    }

    /// Upper bound on [`RateModel::weight`] over the trace window.
    pub fn max_weight(&self) -> f64 {
        self.growth.max(1.0)
    }

    /// Thins a nominal next-event time into one that respects the
    /// calendar, by the standard rejection step of non-homogeneous
    /// process simulation.
    ///
    /// Starting from `t`, a candidate `t + gap` is accepted with
    /// probability `weight/max_weight`; rejected candidates are pushed
    /// forward by small exponential increments, which is exactly how a
    /// scientist who "would have" looked at results overnight ends up
    /// issuing the read the next morning.
    pub fn modulate<R: Rng + ?Sized>(&self, rng: &mut R, t: Timestamp, gap_s: f64) -> Timestamp {
        let retry = Exp::new(0.75 * HOUR as f64);
        let mut candidate = t.add_secs(gap_s.max(0.0) as i64);
        let max_w = self.max_weight();
        // Bounded retries keep pathological configurations from spinning;
        // the expected total advance covers several days of rejection.
        for _ in 0..192 {
            let accept = self.weight(candidate) / max_w;
            if rng.gen::<f64>() < accept {
                break;
            }
            candidate = candidate.add_secs(retry.sample(rng).max(60.0) as i64);
        }
        candidate
    }

    /// Paces an in-progress session: unlike [`RateModel::modulate`],
    /// which thins *arrivals* (and therefore penalises the low-growth
    /// early trace), this uses the weight relative to the current growth
    /// level. A request issued overnight or on a quiet weekend is pushed
    /// toward the next active period; daytime weekday requests pass
    /// through untouched. This is what suspends a multi-day restage
    /// session over the weekend.
    pub fn pace<R: Rng + ?Sized>(&self, rng: &mut R, t: Timestamp) -> Timestamp {
        let retry = Exp::new(0.5 * HOUR as f64);
        let mut candidate = t;
        for _ in 0..144 {
            let relative = self.weight(candidate) / self.growth_factor(candidate);
            if rng.gen::<f64>() < relative / 0.9 {
                break;
            }
            candidate = candidate.add_secs(retry.sample(rng).max(60.0) as i64);
        }
        candidate
    }

    /// Mean weight over one canonical (non-holiday) week, used to convert
    /// desired event counts into nominal gap lengths.
    pub fn mean_weekly_weight(&self) -> f64 {
        let (diurnal, weekly) = match self.kind {
            RateKind::Read => (&READ_DIURNAL, &READ_WEEKLY),
            RateKind::Write => (&WRITE_DIURNAL, &WRITE_WEEKLY),
        };
        let d_mean: f64 = diurnal.iter().sum::<f64>() / 24.0;
        let w_mean: f64 = weekly.iter().sum::<f64>() / 7.0;
        d_mean * w_mean
    }
}

/// Convenience: true during the 9 AM–5 PM working window on a weekday.
pub fn is_working_hours(t: Timestamp) -> bool {
    !t.weekday().is_weekend() && (9..17).contains(&t.hour_of_day())
}

/// Integrates a model's weight over `[start, end)` with hourly steps —
/// used by tests and by expected-count calibration.
pub fn integrate_weight(model: &RateModel, start: Timestamp, end: Timestamp) -> f64 {
    let mut sum = 0.0;
    let mut t = start;
    while t < end {
        sum += model.weight(t.add_secs(HOUR / 2));
        t = t.add_secs(HOUR);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::{CivilDate, DAY, TRACE_EPOCH};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// 1990-10-02 (Tuesday) at the given hour.
    fn tuesday(hour: i64) -> Timestamp {
        TRACE_EPOCH.add_secs(DAY + hour * HOUR)
    }

    #[test]
    fn reads_peak_in_working_hours() {
        let m = RateModel::read(1.0);
        let morning = m.weight(tuesday(10));
        let night = m.weight(tuesday(3));
        assert!(
            morning > 4.0 * night,
            "working-hours weight {morning} vs night {night}"
        );
    }

    #[test]
    fn writes_are_nearly_flat() {
        let m = RateModel::write();
        let lo = (0..24)
            .map(|h| m.weight(tuesday(h)))
            .fold(f64::MAX, f64::min);
        let hi = (0..24).map(|h| m.weight(tuesday(h))).fold(0.0, f64::max);
        assert!(hi / lo < 1.3, "write diurnal swing {}", hi / lo);
    }

    #[test]
    fn weekend_read_dip() {
        let m = RateModel::read(1.0);
        // 1990-10-06 is a Saturday, 10-07 Sunday.
        let sat = m.weight(TRACE_EPOCH.add_secs(5 * DAY + 10 * HOUR));
        let tue = m.weight(tuesday(10));
        assert!(sat < 0.6 * tue, "saturday {sat} vs tuesday {tue}");
    }

    #[test]
    fn monday_morning_is_the_weekly_minimum_of_workdays() {
        let m = RateModel::read(1.0);
        // Monday 1990-10-08 at 4 AM vs Tuesday at 4 AM.
        let mon = m.weight(TRACE_EPOCH.add_secs(7 * DAY + 4 * HOUR));
        let tue = m.weight(TRACE_EPOCH.add_secs(8 * DAY + 4 * HOUR));
        assert!(mon < tue, "monday {mon} vs tuesday {tue}");
    }

    #[test]
    fn holidays_suppress_reads_not_writes() {
        // Christmas day 1991 at 11 AM (a Wednesday).
        let xmas = Timestamp::from_civil(CivilDate::new(1991, 12, 25), 11, 0, 0);
        let week_before = Timestamp::from_civil(CivilDate::new(1991, 12, 11), 11, 0, 0);
        let r = RateModel::read(1.0);
        assert!(r.weight(xmas) < 0.5 * r.weight(week_before));
        let w = RateModel::write();
        assert!((w.weight(xmas) - w.weight(week_before)).abs() < 1e-12);
    }

    #[test]
    fn growth_doubles_read_weight_across_trace() {
        let m = RateModel::read(2.0);
        let early = m.weight(tuesday(10));
        // Same Tuesday slot, ~104 weeks later (1992-09-29).
        let late = m.weight(tuesday(10).add_secs(728 * DAY));
        let ratio = late / early;
        assert!((ratio - 2.0).abs() < 0.1, "growth ratio {ratio}");
        assert_eq!(m.max_weight(), 2.0);
    }

    #[test]
    fn modulate_moves_events_toward_active_periods() {
        let m = RateModel::read(1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 4000;
        let mut weight_before = 0.0;
        let mut weight_after = 0.0;
        for i in 0..n {
            // Nominal events scattered across a fortnight at 3 AM-ish.
            let t0 = TRACE_EPOCH.add_secs((i % 14) * DAY + 3 * HOUR);
            let t = m.modulate(&mut rng, t0, 60.0);
            assert!(t >= t0, "time went backwards");
            weight_before += m.weight(t0.add_secs(60));
            weight_after += m.weight(t);
        }
        // Thinning must land events in times of substantially higher
        // intensity than their 3 AM nominal slots.
        let lift = weight_after / weight_before;
        assert!(lift > 1.6, "modulation weight lift only {lift}");
        // And a working-hours slot must pass through essentially
        // untouched most of the time.
        let mut moved = 0;
        for _ in 0..1000 {
            let t0 = TRACE_EPOCH.add_secs(DAY + 10 * HOUR); // Tuesday 10:00
            let t = m.modulate(&mut rng, t0, 30.0);
            if t.seconds_since(t0) > HOUR {
                moved += 1;
            }
        }
        assert!(moved < 300, "daytime events displaced too often: {moved}");
    }

    #[test]
    fn integrate_weight_reflects_weekly_mass() {
        let read = RateModel::read(1.0);
        let week0 = integrate_weight(&read, TRACE_EPOCH, TRACE_EPOCH.add_secs(7 * DAY));
        let flat = RateModel::write();
        let week0_w = integrate_weight(&flat, TRACE_EPOCH, TRACE_EPOCH.add_secs(7 * DAY));
        // Write mass is much closer to its ceiling than read mass.
        assert!(week0 / (7.0 * 24.0) < 0.7);
        assert!(week0_w / (7.0 * 24.0) > 0.85);
        assert!((read.mean_weekly_weight() - week0 / (7.0 * 24.0)).abs() < 0.05);
    }
}
