//! Random-variate distributions used by the workload generator.
//!
//! The offline crate set contains `rand` but not `rand_distr`, so the
//! handful of distributions the generator needs — exponential, lognormal,
//! bounded Pareto, discrete mixtures, geometric — are implemented here
//! from first principles (inverse-CDF sampling and Box–Muller).

use rand::Rng;

/// A continuous or discrete sampling distribution.
pub trait Sample {
    /// Draws one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Exponential distribution with the given mean (not rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Creates an exponential distribution with mean `mean` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "bad exponential mean {mean}"
        );
        Exp { mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Sample for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; `1 - u` keeps the argument away from ln(0).
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }
}

/// Lognormal distribution parameterised by the median and shape.
///
/// `ln X ~ Normal(ln median, sigma²)`; the mean is
/// `median · exp(sigma²/2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with the given median and log-space sigma.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `sigma < 0`.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0 && median.is_finite(), "bad median {median}");
        assert!(sigma >= 0.0 && sigma.is_finite(), "bad sigma {sigma}");
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// The distribution mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// The distribution median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto distribution truncated to `[lo, hi]`, sampled by inverse CDF.
///
/// Heavy-tailed sizes and reference counts in the study (directory sizes
/// reaching 24,926 files, files referenced up to ~250 times) are drawn
/// from bounded Pareto tails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "bad alpha {alpha}");
        assert!(0.0 < lo && lo < hi, "bad bounds [{lo}, {hi}]");
        BoundedPareto { alpha, lo, hi }
    }

    /// The analytic mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        if (a - 1.0).abs() < 1e-9 {
            // alpha = 1 limit: pdf ∝ x^-2, so E[X] = ln(h/l) / (1/l - 1/h).
            (h / l).ln() / (1.0 / l - 1.0 / h)
        } else {
            // pdf ∝ x^(-a-1) on [l,h]; normaliser C = a·l^a / (1 - (l/h)^a).
            let c = a * l.powf(a) / (1.0 - (l / h).powf(a));
            c * (h.powf(1.0 - a) - l.powf(1.0 - a)) / (1.0 - a)
        }
    }
}

impl Sample for BoundedPareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        (la - u * (la - ha)).powf(-1.0 / a)
    }
}

/// Discrete distribution over `0..weights.len()` proportional to weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Builds a discrete distribution from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut sum = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
            sum += w;
            cumulative.push(sum);
        }
        assert!(sum > 0.0, "weights sum to zero");
        for c in &mut cumulative {
            *c /= sum;
        }
        Discrete { cumulative }
    }

    /// Draws an index in `0..len`.
    pub fn index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in cumulative weights"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Geometric distribution: number of failures before the first success.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "bad geometric p {p}");
        Geometric { p }
    }

    /// Draws the number of failures before the first success (>= 0).
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inverse CDF: floor(ln U / ln(1-p)).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - self.p).ln()).floor() as u32
    }

    /// Expected number of failures, `(1-p)/p`.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }
}

/// One standard-normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// A Poisson variate; Knuth's method for small means, normal
/// approximation above 64.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0 && mean.is_finite(), "bad poisson mean {mean}");
    if mean == 0.0 {
        return 0;
    }
    if mean > 64.0 {
        let v = mean + mean.sqrt() * standard_normal(rng);
        return v.max(0.0).round() as u64;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xFACE)
    }

    fn empirical_mean(mut f: impl FnMut(&mut SmallRng) -> f64, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exp::new(18.0);
        let m = empirical_mean(|r| d.sample(r), 40_000);
        assert!((m - 18.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::from_median(8.0, 0.5);
        assert!((d.median() - 8.0).abs() < 1e-12);
        assert!((d.mean() - 8.0 * (0.125f64).exp()).abs() < 1e-9);
        let mut r = rng();
        let mut below = 0;
        let n = 20_000;
        for _ in 0..n {
            if d.sample(&mut r) < 8.0 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "median fraction {frac}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = BoundedPareto::new(1.2, 11.0, 25_000.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((11.0..=25_000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_tail_is_heavy() {
        let d = BoundedPareto::new(1.0, 1.0, 250.0);
        let mut r = rng();
        let n = 50_000;
        let over8 = (0..n).filter(|_| d.sample(&mut r) > 8.0).count();
        let frac = over8 as f64 / n as f64;
        // P(X > 8) for alpha=1 bounded pareto on [1,250] is about 0.125.
        assert!((frac - 0.125).abs() < 0.02, "tail fraction {frac}");
    }

    #[test]
    fn bounded_pareto_analytic_mean_matches_empirical() {
        for d in [
            BoundedPareto::new(1.25, 11.0, 25_000.0),
            BoundedPareto::new(1.0, 1.0, 250.0),
            BoundedPareto::new(2.5, 0.5, 100.0),
        ] {
            let m = empirical_mean(|r| d.sample(r), 200_000);
            let rel = (m - d.mean()).abs() / d.mean();
            assert!(rel < 0.08, "analytic {} vs empirical {m}", d.mean());
        }
    }

    #[test]
    fn discrete_matches_weights() {
        let d = Discrete::new(&[1.0, 3.0, 6.0]);
        let mut r = rng();
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[d.index(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.015);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.015);
    }

    #[test]
    fn geometric_mean_converges() {
        let g = Geometric::new(0.25);
        assert!((g.mean() - 3.0).abs() < 1e-12);
        let m = empirical_mean(|r| g.sample_count(r) as f64, 40_000);
        assert!((m - 3.0).abs() < 0.15, "mean {m}");
        assert_eq!(Geometric::new(1.0).sample_count(&mut rng()), 0);
    }

    #[test]
    fn poisson_small_and_large_means() {
        let m_small = empirical_mean(|r| sample_poisson(r, 3.5) as f64, 30_000);
        assert!((m_small - 3.5).abs() < 0.1, "small mean {m_small}");
        let m_large = empirical_mean(|r| sample_poisson(r, 400.0) as f64, 5_000);
        assert!((m_large - 400.0).abs() < 2.0, "large mean {m_large}");
        assert_eq!(sample_poisson(&mut rng(), 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "bad exponential mean")]
    fn exponential_rejects_nonpositive_mean() {
        let _ = Exp::new(0.0);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn discrete_rejects_zero_weights() {
        let _ = Discrete::new(&[0.0, 0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Exponential samples are non-negative for any positive mean.
        #[test]
        fn exp_nonnegative(mean in 0.001f64..1e6, seed in any::<u64>()) {
            let mut r = SmallRng::seed_from_u64(seed);
            let d = Exp::new(mean);
            for _ in 0..32 {
                prop_assert!(d.sample(&mut r) >= 0.0);
            }
        }

        /// Bounded Pareto never escapes its bounds.
        #[test]
        fn pareto_in_bounds(
            alpha in 0.1f64..4.0,
            lo in 0.1f64..100.0,
            span in 1.0f64..1e5,
            seed in any::<u64>(),
        ) {
            let hi = lo + span;
            let d = BoundedPareto::new(alpha, lo, hi);
            let mut r = SmallRng::seed_from_u64(seed);
            for _ in 0..32 {
                let x = d.sample(&mut r);
                prop_assert!(x >= lo * 0.999 && x <= hi * 1.001, "x = {}", x);
            }
        }

        /// Discrete index is always a valid index.
        #[test]
        fn discrete_in_range(
            weights in proptest::collection::vec(0.0f64..10.0, 1..12),
            seed in any::<u64>(),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let d = Discrete::new(&weights);
            let mut r = SmallRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(d.index(&mut r) < weights.len());
            }
        }
    }
}
