//! Per-file size and reference-behaviour models (Figures 8, 10, 11).
//!
//! # Reference classes
//!
//! §5.3 pins down the joint distribution of per-file read and write
//! counts (after the paper's 8-hour dedup rule):
//!
//! * 50% of files never read, 21% never written;
//! * 57% accessed exactly once, 19% exactly twice;
//! * 44% written once and never read; 65% written exactly once;
//! * ~5% referenced more than ten times (Figure 8 runs to 250).
//!
//! Solving those marginals gives the class table in [`sample_class`]:
//!
//! | writes | reads | probability |
//! |---|---|---|
//! | 1 | 0 | 0.44 |
//! | 0 | 1 | 0.13 |
//! | 1 | 1 | 0.11 |
//! | 2 | 0 | 0.04 |
//! | 3+ | 0 | 0.02 |
//! | 0 | 2 | 0.04 |
//! | 0 | 3+ | 0.04 |
//! | 2+ | 1 | 0.01 |
//! | 1 | 2+ | 0.10 |
//! | 2+ | 2+ | 0.07 |
//!
//! Files that are never written existed before the trace window opened,
//! so classes are sampled **conditioned on the dataset's era**: pre-trace
//! datasets draw from the `writes = 0` rows, in-trace datasets from the
//! rest. The marginal table is recovered when ~21% of files live in
//! pre-trace datasets.
//!
//! # Sizes
//!
//! Figure 11 wants ~half the files under 3 MB holding ~2% of the data
//! with a 25 MB overall mean; Figure 10 adds a write-side bump near 8 MB.
//! Sizes come from a three-component lognormal mixture (small files,
//! large model output, and an 8 MB "history tape" component biased
//! toward write-once files), floored at 2 KB and capped at the MSS's
//! 200 MB file limit.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::{BoundedPareto, Discrete, Geometric, LogNormal, Sample};

/// Read/write count tail: bounded Pareto on `[1, 250]` with shape 0.85,
/// giving Figure 8's few-percent of files referenced more than ten times.
fn count_tail<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    BoundedPareto::new(0.85, 1.0, 250.0).sample(rng).floor() as u32
}

/// A sampled per-file behaviour: dedup-rule reference counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSample {
    /// Target number of dedup-distinct writes in the trace window.
    pub writes: u32,
    /// Target number of dedup-distinct reads in the trace window.
    pub reads: u32,
}

/// Draws a reference class, conditioned on whether the file pre-dates the
/// trace window (pre-trace files can only show `writes = 0`).
pub fn sample_class<R: Rng + ?Sized>(rng: &mut R, pre_existing: bool) -> ClassSample {
    if pre_existing {
        // Conditional on w = 0 (marginal mass 0.21): rows (0,1), (0,2), (0,3+).
        let mix = Discrete::new(&[0.13, 0.04, 0.04]);
        match mix.index(rng) {
            0 => ClassSample {
                writes: 0,
                reads: 1,
            },
            1 => ClassSample {
                writes: 0,
                reads: 2,
            },
            _ => ClassSample {
                writes: 0,
                reads: 2 + count_tail(rng),
            },
        }
    } else {
        // Conditional on w >= 1 (marginal mass 0.79).
        let mix = Discrete::new(&[0.44, 0.11, 0.04, 0.02, 0.01, 0.10, 0.07]);
        let extra_w = Geometric::new(0.5);
        match mix.index(rng) {
            0 => ClassSample {
                writes: 1,
                reads: 0,
            },
            1 => ClassSample {
                writes: 1,
                reads: 1,
            },
            2 => ClassSample {
                writes: 2,
                reads: 0,
            },
            3 => ClassSample {
                writes: 3 + extra_w.sample_count(rng),
                reads: 0,
            },
            4 => ClassSample {
                writes: 2 + extra_w.sample_count(rng),
                reads: 1,
            },
            5 => ClassSample {
                writes: 1,
                reads: 1 + count_tail(rng),
            },
            _ => ClassSample {
                writes: 2 + extra_w.sample_count(rng),
                reads: 1 + count_tail(rng),
            },
        }
    }
}

/// The three-component file-size mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeModel {
    small: LogNormal,
    large: LogNormal,
    bump: LogNormal,
    floor: u64,
    cap: u64,
}

impl SizeModel {
    /// The calibrated NCAR size model with the given MSS file-size cap.
    pub fn ncar(cap: u64) -> Self {
        SizeModel {
            small: LogNormal::from_median(0.5e6, 1.6),
            large: LogNormal::from_median(40.0e6, 1.0),
            bump: LogNormal::from_median(8.0e6, 0.35),
            floor: 2_048,
            cap,
        }
    }

    /// Samples a file size in bytes.
    ///
    /// The bias selects component weights: write-once archive files carry
    /// most of the 8 MB bump (Figure 10's write bump); hot re-read files
    /// skew large (Table 3: average read 27 MB > average write 20 MB).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, bias: SizeBias) -> u64 {
        let weights: [f64; 3] = match bias {
            SizeBias::Archive => [0.40, 0.30, 0.30],
            SizeBias::Normal => [0.58, 0.37, 0.05],
            SizeBias::HotRead => [0.45, 0.46, 0.09],
        };
        let mix = Discrete::new(&weights);
        let raw = match mix.index(rng) {
            0 => self.small.sample(rng),
            1 => self.large.sample(rng),
            _ => self.bump.sample(rng),
        };
        (raw as u64).clamp(self.floor, self.cap)
    }
}

/// Which size-mixture weights to use for a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeBias {
    /// Write-once-never-read output: heavy 8 MB bump mass.
    Archive,
    /// Ordinary files.
    Normal,
    /// Frequently re-read files: skewed large.
    HotRead,
}

/// The full specification of one synthetic file, before scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    /// File size in bytes.
    pub size: u64,
    /// Dedup-distinct write target.
    pub writes: u32,
    /// Dedup-distinct read target.
    pub reads: u32,
    /// Index of the first dataset read-session this file participates in;
    /// the file joins `reads` consecutive sessions from here.
    pub first_session: u32,
}

/// Builds the file specs for one dataset (directory).
///
/// Files join consecutive dataset sessions starting at a geometrically
/// distributed offset, which makes a session read a contiguous run of the
/// dataset — the paper's researcher stepping through day-1, day-2 files
/// of a climate run.
pub fn build_dataset_files<R: Rng + ?Sized>(
    rng: &mut R,
    count: u32,
    pre_existing: bool,
    read_scale: f64,
    sizes: &SizeModel,
) -> Vec<FileSpec> {
    let start_offset = Geometric::new(0.55);
    // Entry sessions are drawn geometrically, then sorted so that files
    // enter in index order: the researcher reaches day-5 files only
    // after day-4 files, which is what makes sequential prefetching
    // profitable (§6). Sorting preserves the marginal distribution.
    let mut entries: Vec<u32> = (0..count).map(|_| start_offset.sample_count(rng)).collect();
    entries.sort_unstable();
    entries
        .into_iter()
        .map(|first_session| {
            let class = sample_class(rng, pre_existing);
            let bias = if class.writes >= 1 && class.reads == 0 {
                SizeBias::Archive
            } else if class.reads >= 2 {
                SizeBias::HotRead
            } else {
                SizeBias::Normal
            };
            // Figure 6's read growth: later datasets are re-read more as
            // the user community grows, so multi-read tails scale with
            // the dataset's position in the trace. Single reads stay
            // single so Figure 8's masses hold.
            let reads = if class.reads >= 2 {
                ((class.reads as f64 * read_scale).round() as u32).max(2)
            } else {
                class.reads
            };
            FileSpec {
                size: sizes.sample(rng, bias),
                writes: class.writes,
                reads,
                first_session,
            }
        })
        .collect()
}

/// Number of read sessions a dataset needs so every file can complete its
/// span: `max(first_session + reads)`.
pub fn sessions_needed(files: &[FileSpec]) -> u32 {
    files
        .iter()
        .filter(|f| f.reads > 0)
        .map(|f| f.first_session + f.reads)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x5EED)
    }

    /// Draws the marginal class distribution by mixing eras at the
    /// calibrated 21% pre-trace file share.
    fn marginal_samples(n: usize) -> Vec<ClassSample> {
        let mut r = rng();
        (0..n)
            .map(|_| {
                let pre = r.gen::<f64>() < 0.21;
                sample_class(&mut r, pre)
            })
            .collect()
    }

    #[test]
    fn class_marginals_match_paper() {
        let n = 200_000;
        let samples = marginal_samples(n);
        let frac = |pred: &dyn Fn(&ClassSample) -> bool| {
            samples.iter().filter(|c| pred(c)).count() as f64 / n as f64
        };
        let never_read = frac(&|c| c.reads == 0);
        let never_written = frac(&|c| c.writes == 0);
        let once = frac(&|c| c.reads + c.writes == 1);
        let twice = frac(&|c| c.reads + c.writes == 2);
        let write_once_never_read = frac(&|c| c.writes == 1 && c.reads == 0);
        let written_once = frac(&|c| c.writes == 1);
        let over_ten = frac(&|c| c.reads + c.writes > 10);
        assert!((never_read - 0.50).abs() < 0.02, "never read {never_read}");
        assert!(
            (never_written - 0.21).abs() < 0.02,
            "never written {never_written}"
        );
        assert!((once - 0.57).abs() < 0.02, "once {once}");
        assert!((twice - 0.19).abs() < 0.02, "twice {twice}");
        assert!(
            (write_once_never_read - 0.44).abs() < 0.02,
            "w1r0 {write_once_never_read}"
        );
        assert!((written_once - 0.65).abs() < 0.02, "w=1 {written_once}");
        assert!((0.015..0.09).contains(&over_ten), ">10 refs {over_ten}");
    }

    #[test]
    fn mean_reference_counts_support_trace_volume() {
        let n = 100_000;
        let samples = marginal_samples(n);
        let mean_reads: f64 = samples.iter().map(|c| c.reads as f64).sum::<f64>() / n as f64;
        let mean_writes: f64 = samples.iter().map(|c| c.writes as f64).sum::<f64>() / n as f64;
        // ~2.3 dedup reads and ~1.0 dedup writes per file reproduce the
        // paper's 3.5M raw references over ~900k files after echoes.
        assert!((1.6..3.2).contains(&mean_reads), "mean reads {mean_reads}");
        assert!(
            (0.8..1.3).contains(&mean_writes),
            "mean writes {mean_writes}"
        );
        let share = mean_reads / (mean_reads + mean_writes);
        assert!((0.60..0.75).contains(&share), "read share {share}");
    }

    #[test]
    fn pre_existing_files_are_never_written() {
        let mut r = rng();
        for _ in 0..5_000 {
            let c = sample_class(&mut r, true);
            assert_eq!(c.writes, 0);
            assert!(c.reads >= 1);
        }
    }

    #[test]
    fn in_trace_files_are_always_written() {
        let mut r = rng();
        for _ in 0..5_000 {
            let c = sample_class(&mut r, false);
            assert!(c.writes >= 1);
        }
    }

    #[test]
    fn size_model_matches_figure_11() {
        let m = SizeModel::ncar(200_000_000);
        let mut r = rng();
        let n = 120_000;
        let sizes: Vec<u64> = (0..n)
            .map(|_| {
                let u = r.gen::<f64>();
                let bias = if u < 0.44 {
                    SizeBias::Archive
                } else if u < 0.65 {
                    SizeBias::HotRead
                } else {
                    SizeBias::Normal
                };
                m.sample(&mut r, bias)
            })
            .collect();
        let total: f64 = sizes.iter().map(|&s| s as f64).sum();
        let mean_mb = total / n as f64 / 1e6;
        let under3 = sizes.iter().filter(|&&s| s < 3_000_000).count() as f64 / n as f64;
        let under3_data: f64 = sizes
            .iter()
            .filter(|&&s| s < 3_000_000)
            .map(|&s| s as f64)
            .sum::<f64>()
            / total;
        assert!((18.0..32.0).contains(&mean_mb), "mean size {mean_mb} MB");
        assert!((0.33..0.58).contains(&under3), "files <3MB {under3}");
        assert!(under3_data < 0.05, "data in <3MB files {under3_data}");
        assert!(sizes.iter().all(|&s| (2_048..=200_000_000).contains(&s)));
    }

    #[test]
    fn archive_bias_shifts_mass_to_the_bump() {
        let m = SizeModel::ncar(200_000_000);
        let mut r = rng();
        let n = 50_000;
        let in_bump = |s: u64| (6_000_000..11_000_000).contains(&s);
        let archive = (0..n)
            .filter(|_| in_bump(m.sample(&mut r, SizeBias::Archive)))
            .count();
        let normal = (0..n)
            .filter(|_| in_bump(m.sample(&mut r, SizeBias::Normal)))
            .count();
        assert!(
            archive > 2 * normal,
            "bump mass archive {archive} vs normal {normal}"
        );
    }

    #[test]
    fn dataset_files_and_sessions() {
        let m = SizeModel::ncar(200_000_000);
        let mut r = rng();
        let files = build_dataset_files(&mut r, 200, false, 1.0, &m);
        assert_eq!(files.len(), 200);
        let s = sessions_needed(&files);
        // Every reading file's span fits within the session count.
        for f in &files {
            if f.reads > 0 {
                assert!(f.first_session + f.reads <= s);
            }
        }
        // A write-only dataset needs no sessions.
        let cold: Vec<FileSpec> = files.iter().map(|f| FileSpec { reads: 0, ..*f }).collect();
        assert_eq!(sessions_needed(&cold), 0);
        assert_eq!(sessions_needed(&[]), 0);
    }
}
