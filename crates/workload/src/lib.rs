//! Synthetic NCAR mass-storage workload generator.
//!
//! The original two-year NCAR trace (October 1990 – September 1992,
//! ~3.7 M references) is not publicly available, so this crate generates
//! a synthetic equivalent calibrated against every statistic the paper
//! publishes:
//!
//! * [`preset::PaperTargets`] transcribes the published numbers;
//! * [`rate`] models the daily/weekly/holiday/growth periodicity of
//!   Figures 4–6 (human-driven reads, machine-driven writes);
//! * [`namespace`] grows the directory tree of Table 4 / Figure 12;
//! * [`population`] draws file sizes (Figures 10–11) and per-file
//!   reference behaviour (Figure 8, §5.3);
//! * [`generator`] schedules batch write jobs, clustered read sessions,
//!   within-8-hours echo requests (§6), error references (§5.1), and the
//!   disk/silo/shelf placement policy (§3.1), emitting a time-ordered
//!   [`fmig_trace::TraceRecord`] stream.
//!
//! # Examples
//!
//! ```
//! use fmig_workload::{Workload, WorkloadConfig};
//!
//! let workload = Workload::generate(&WorkloadConfig {
//!     scale: 0.001,
//!     seed: 7,
//!     ..WorkloadConfig::default()
//! });
//! assert!(!workload.is_empty());
//! let reads = workload
//!     .records()
//!     .filter(|r| r.direction() == fmig_trace::Direction::Read)
//!     .count();
//! assert!(reads > 0);
//! ```

pub mod dist;
pub mod generator;
pub mod namespace;
pub mod population;
pub mod preset;
pub mod rate;

pub use generator::{EventKind, FileMeta, RawEvent, RecordStream, Workload};
pub use namespace::Namespace;
pub use population::{ClassSample, FileSpec, SizeModel};
pub use preset::{PaperTargets, WorkloadConfig};
pub use rate::{RateKind, RateModel};
