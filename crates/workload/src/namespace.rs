//! Synthetic MSS namespace: the directory tree of Table 4 / Figure 12.
//!
//! Targets from the paper:
//!
//! * 143,245 directories holding ~900,000 referenced files (≈6.3
//!   files/dir) at scale 1.0;
//! * 75% of directories hold zero or one file, 90% hold ten or fewer,
//!   yet the largest holds 24,926 and the top ~5% of directories hold
//!   about half of all files and data (Figure 12);
//! * maximum depth 12 (Table 4).
//!
//! Directory file counts come from a point-mass + bounded-Pareto mixture
//! whose tail weight adapts to the configured scale so the mean stays
//! near 6.3 files/dir even when the largest-directory cap shrinks.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::{BoundedPareto, Discrete, Sample};
use crate::preset::WorkloadConfig;

/// Hard ceiling on directory depth (Table 4 reports max depth 12).
pub const MAX_DEPTH: u32 = 12;

/// One directory in the synthetic namespace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirNode {
    /// Index of the parent directory, or `None` for user roots.
    pub parent: Option<u32>,
    /// Depth below the MSS root (user homes are depth 1).
    pub depth: u32,
    /// Owning user id.
    pub owner_uid: u32,
    /// Number of files placed directly in this directory.
    pub file_count: u32,
    /// Path component for this directory.
    pub name: String,
}

/// The generated directory tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Namespace {
    dirs: Vec<DirNode>,
    total_files: u64,
}

impl Namespace {
    /// Generates a namespace for the given configuration.
    pub fn generate<R: Rng + ?Sized>(cfg: &WorkloadConfig, rng: &mut R) -> Self {
        let n_dirs = cfg.target_dirs();
        let n_users = cfg.target_users();
        let mut dirs: Vec<DirNode> = Vec::with_capacity(n_dirs);

        // Every user gets a home directory; the rest of the tree hangs
        // under them. `last_dir_of_user` lets us extend deep chains.
        let n_homes = (n_users as usize).min(n_dirs);
        for uid in 0..n_homes {
            dirs.push(DirNode {
                parent: None,
                depth: 1,
                owner_uid: uid as u32,
                file_count: 0,
                name: format!("u{uid:05}"),
            });
        }

        let themes = [
            "ccm", "mm4", "run", "exp", "data", "hist", "anal", "plots", "t42", "t106", "obs",
            "restart",
        ];
        while dirs.len() < n_dirs {
            let id = dirs.len();
            // Pick a parent: usually a random existing directory, but with
            // some probability the most recent one (this grows the deep
            // chains that give the tree its depth-12 tail).
            let parent_idx = if rng.gen::<f64>() < 0.15 {
                dirs.len() - 1
            } else {
                rng.gen_range(0..dirs.len())
            };
            let (parent, depth, owner) = {
                let p = &dirs[parent_idx];
                if p.depth >= MAX_DEPTH {
                    // Chain capped: attach to the owner's home instead.
                    let home = p.owner_uid as usize % n_homes;
                    (home as u32, 2, p.owner_uid)
                } else {
                    (parent_idx as u32, p.depth + 1, p.owner_uid)
                }
            };
            let theme = themes[rng.gen_range(0..themes.len())];
            dirs.push(DirNode {
                parent: Some(parent),
                depth,
                owner_uid: owner,
                file_count: 0,
                name: format!("{theme}{:03}", id % 1000),
            });
        }

        // File-count mixture: 0 / 1 / uniform 2..=10 / bounded-Pareto tail.
        let largest = (25_000.0 * cfg.scale).clamp(60.0, 25_000.0);
        let tail = BoundedPareto::new(1.25, 11.0, largest);
        // Solve the tail weight so the overall mean hits the target:
        // r·1.30 + wp·E_tail = mean, with r = (1 - wp)/0.90 spread over
        // the paper's 0.35/0.40/0.15 split for the light components.
        let light_mean = (0.35 * 0.0 + 0.40 * 1.0 + 0.15 * 6.0) / 0.90;
        let e_tail = tail.mean();
        let wp = ((cfg.mean_files_per_dir - light_mean) / (e_tail - light_mean)).clamp(0.02, 0.35);
        let r = (1.0 - wp) / 0.90;
        let mix = Discrete::new(&[0.35 * r, 0.40 * r, 0.15 * r, wp]);

        let mut total_files = 0u64;
        for dir in &mut dirs {
            let count = match mix.index(rng) {
                0 => 0,
                1 => 1,
                2 => rng.gen_range(2..=10),
                _ => tail.sample(rng).round() as u32,
            };
            dir.file_count = count;
            total_files += count as u64;
        }

        Namespace { dirs, total_files }
    }

    /// All directories, index = directory id.
    pub fn dirs(&self) -> &[DirNode] {
        &self.dirs
    }

    /// Number of directories.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// True if the namespace has no directories.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// Total files across all directories.
    pub fn total_files(&self) -> u64 {
        self.total_files
    }

    /// File count of the fullest directory.
    pub fn largest_dir(&self) -> u32 {
        self.dirs.iter().map(|d| d.file_count).max().unwrap_or(0)
    }

    /// Deepest directory level in the tree.
    pub fn max_depth(&self) -> u32 {
        self.dirs.iter().map(|d| d.depth).max().unwrap_or(0)
    }

    /// Reconstructs the absolute MSS path of a directory.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is out of range.
    pub fn path(&self, dir: u32) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = Some(dir);
        while let Some(idx) = cur {
            let node = &self.dirs[idx as usize];
            parts.push(&node.name);
            cur = node.parent;
        }
        let mut out = String::new();
        for part in parts.iter().rev() {
            out.push('/');
            out.push_str(part);
        }
        out
    }

    /// Fraction of directories with at most `n` files.
    pub fn fraction_with_at_most(&self, n: u32) -> f64 {
        if self.dirs.is_empty() {
            return 0.0;
        }
        let hits = self.dirs.iter().filter(|d| d.file_count <= n).count();
        hits as f64 / self.dirs.len() as f64
    }

    /// Fraction of files held by the fullest `top_fraction` of directories
    /// (Figure 12's "5% of the directories held 50% of the files").
    pub fn files_in_top_dirs(&self, top_fraction: f64) -> f64 {
        if self.total_files == 0 || self.dirs.is_empty() {
            return 0.0;
        }
        let mut counts: Vec<u32> = self.dirs.iter().map(|d| d.file_count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((self.dirs.len() as f64 * top_fraction).ceil() as usize).max(1);
        let top: u64 = counts[..k.min(counts.len())]
            .iter()
            .map(|&c| c as u64)
            .sum();
        top as f64 / self.total_files as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn namespace(scale: f64, seed: u64) -> Namespace {
        let cfg = WorkloadConfig::at_scale(scale);
        let mut rng = SmallRng::seed_from_u64(seed);
        Namespace::generate(&cfg, &mut rng)
    }

    #[test]
    fn respects_scale_and_depth_cap() {
        let ns = namespace(0.02, 1);
        assert_eq!(ns.len(), 2865); // 143,245 * 0.02 rounded
        assert!(ns.max_depth() <= MAX_DEPTH);
        assert!(ns.max_depth() >= 5, "tree too shallow: {}", ns.max_depth());
    }

    #[test]
    fn mean_files_per_dir_near_target() {
        let ns = namespace(0.05, 2);
        let mean = ns.total_files() as f64 / ns.len() as f64;
        assert!((4.0..9.0).contains(&mean), "mean files/dir {mean}");
    }

    #[test]
    fn most_dirs_are_tiny_but_tail_is_heavy() {
        let ns = namespace(0.05, 3);
        let le1 = ns.fraction_with_at_most(1);
        let le10 = ns.fraction_with_at_most(10);
        assert!((0.60..0.85).contains(&le1), "≤1 file fraction {le1}");
        assert!((0.82..0.97).contains(&le10), "≤10 files fraction {le10}");
        // The biggest directory dwarfs the mean.
        assert!(ns.largest_dir() > 100, "largest {}", ns.largest_dir());
    }

    #[test]
    fn top_five_percent_hold_about_half_the_files() {
        let ns = namespace(0.1, 4);
        let share = ns.files_in_top5();
        assert!((0.35..0.75).contains(&share), "top-5% share {share}");
    }

    #[test]
    fn paths_are_rooted_and_unique_per_dir() {
        let ns = namespace(0.005, 5);
        let p0 = ns.path(0);
        assert!(p0.starts_with("/u"));
        for id in 0..ns.len() as u32 {
            let p = ns.path(id);
            assert!(p.starts_with('/'), "unrooted path {p}");
            let depth = p.matches('/').count() as u32;
            assert_eq!(depth, ns.dirs()[id as usize].depth, "path {p}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = namespace(0.01, 42);
        let b = namespace(0.01, 42);
        assert_eq!(a, b);
        let c = namespace(0.01, 43);
        assert_ne!(a, c);
    }

    impl Namespace {
        fn files_in_top5(&self) -> f64 {
            self.files_in_top_dirs(0.05)
        }
    }
}
