//! Service smoke harness: boots the three real binaries, replays the
//! tiny-preset cell over loopback in healthy and degraded-peak mode,
//! and compares the measured accounting against the simulator oracle.
//!
//! The contract it enforces (see `docs/architecture.md`, "Live
//! service"):
//!
//! * every cache counter — hits, misses, hit/miss bytes, writes,
//!   evictions, stall/purge/writeback bytes — **exactly** equals the
//!   counter-noise [`HierarchySimulator`]'s, so the measured miss ratio
//!   is the oracle's to the last reference;
//! * `fetch_retries` exactly equals the oracle's and stays within the
//!   fault plan's retry budget;
//! * measured p99 read wait is within ±15% of the oracle's prediction
//!   in both the healthy and the degraded-peak run;
//! * zero acked writes lose their writeback: every flushed byte the
//!   daemon accounted is confirmed landed by the origin.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use fmig_core::{FaultScenarioId, SweepConfig};
use fmig_migrate::cache::CacheConfig;
use fmig_sim::config::SimConfig;
use fmig_sim::HierarchySimulator;

use crate::loadgen::{tiny_cell, CellSetup};

/// One scenario's oracle-vs-live comparison, for reporting.
#[derive(Debug, Clone)]
pub struct SmokeOutcome {
    /// Scenario name ("none", "degraded-peak").
    pub scenario: String,
    /// Oracle p99 read wait, seconds.
    pub oracle_p99_s: f64,
    /// Measured p99 read wait, seconds.
    pub live_p99_s: f64,
    /// Oracle read miss ratio.
    pub miss_ratio: f64,
    /// Live replay throughput, references per wall second.
    pub refs_per_sec: f64,
}

/// Runs the full service smoke. `bench_path`, when given, has the
/// healthy run's `service_refs_per_sec` recorded into it (report-only;
/// the CI baseline keeps it ungated).
pub fn run_service_smoke(bench_path: Option<&str>) -> Result<Vec<SmokeOutcome>, String> {
    let bin_dir = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .ok_or("current_exe has no parent")?
        .to_path_buf();
    let mut outcomes = Vec::new();
    for scenario in [FaultScenarioId::None, FaultScenarioId::DegradedPeak] {
        eprintln!("service-smoke [{}]: preparing cell...", scenario.name());
        let setup = tiny_cell(scenario);
        let outcome = run_scenario(&bin_dir, scenario, &setup)?;
        eprintln!(
            "service-smoke [{}]: OK — miss ratio {:.4} (exact), p99 {:.0}s vs oracle {:.0}s, {:.0} refs/s",
            outcome.scenario,
            outcome.miss_ratio,
            outcome.live_p99_s,
            outcome.oracle_p99_s,
            outcome.refs_per_sec
        );
        outcomes.push(outcome);
    }
    if let Some(path) = bench_path {
        let healthy = &outcomes[0];
        record_bench(path, healthy.refs_per_sec)?;
        eprintln!(
            "service-smoke: recorded service_refs_per_sec {:.0} in {path}",
            healthy.refs_per_sec
        );
    }
    Ok(outcomes)
}

fn run_scenario(
    bin_dir: &std::path::Path,
    scenario: FaultScenarioId,
    setup: &CellSetup,
) -> Result<SmokeOutcome, String> {
    // The oracle: the counter-noise hierarchy engine over the identical
    // cell (same refs, capacity, policy, seed, fault plan).
    let policy = SweepConfig::tiny().policies[0].build();
    let oracle = HierarchySimulator::new(
        SimConfig::default()
            .with_seed(setup.seed)
            .with_counter_noise(true),
    )
    .run_with_faults(
        CacheConfig::with_capacity(setup.capacity),
        policy.as_ref(),
        &setup.refs,
        &scenario.plan(),
    );

    let mut origin = spawn(bin_dir, "fmig-origin", &[])?;
    let origin_addr = match read_listening(&mut origin) {
        Ok(a) => a,
        Err(e) => {
            let _ = origin.kill();
            return Err(e);
        }
    };
    let daemon_args = [
        "--origin".to_string(),
        origin_addr,
        "--capacity".to_string(),
        setup.capacity.to_string(),
        "--policy".to_string(),
        SweepConfig::tiny().policies[0].name().to_string(),
        "--seed".to_string(),
        setup.seed.to_string(),
        "--scenario".to_string(),
        scenario.name().to_string(),
        "--span-start".to_string(),
        setup.span_start_vms.to_string(),
        "--span-end".to_string(),
        setup.span_end_vms.to_string(),
    ];
    let mut daemon = match spawn(bin_dir, "fmig-served", &daemon_args) {
        Ok(d) => d,
        Err(e) => {
            let _ = origin.kill();
            return Err(e);
        }
    };
    let daemon_addr = match read_listening(&mut daemon) {
        Ok(a) => a,
        Err(e) => {
            let _ = daemon.kill();
            let _ = origin.kill();
            return Err(e);
        }
    };

    let loadgen = Command::new(bin_dir.join("fmig-loadgen"))
        .args([
            "--addr",
            &daemon_addr,
            "--scenario",
            scenario.name(),
            "--connections",
            "2",
            "--drain",
            "--stats",
            "--shutdown",
        ])
        .output()
        .map_err(|e| format!("running fmig-loadgen: {e}"));
    let loadgen = match loadgen {
        Ok(o) => o,
        Err(e) => {
            let _ = daemon.kill();
            let _ = origin.kill();
            return Err(e);
        }
    };
    // Shutdown propagates daemon → origin; both exit on their own.
    let daemon_status = daemon.wait().map_err(|e| format!("daemon wait: {e}"))?;
    let origin_status = origin.wait().map_err(|e| format!("origin wait: {e}"))?;
    if !loadgen.status.success() {
        return Err(format!(
            "fmig-loadgen failed: {}\n{}",
            loadgen.status,
            String::from_utf8_lossy(&loadgen.stderr)
        ));
    }
    if !daemon_status.success() || !origin_status.success() {
        return Err(format!(
            "service exited unhealthy: daemon {daemon_status}, origin {origin_status}"
        ));
    }

    let json = String::from_utf8_lossy(&loadgen.stdout);
    let stderr = String::from_utf8_lossy(&loadgen.stderr);
    let refs_per_sec = stderr
        .lines()
        .find_map(|l| l.strip_prefix("REFS_PER_SEC "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .ok_or("loadgen reported no REFS_PER_SEC")?;

    let u = |k: &str| json_u64(&json, k);
    let f = |k: &str| json_f64(&json, k);

    // Cache counters: exact equality, field by field. Miss ratio
    // equality follows from hit/miss equality.
    let c = oracle.cache;
    let pairs = [
        ("svc_read_hits", c.read_hits),
        ("svc_read_misses", c.read_misses),
        ("svc_read_hit_bytes", c.read_hit_bytes),
        ("svc_read_miss_bytes", c.read_miss_bytes),
        ("svc_writes", c.writes),
        ("svc_evictions", c.evictions),
        ("svc_evicted_bytes", c.evicted_bytes),
        ("svc_stall_bytes", c.stall_bytes),
        ("svc_purge_flush_bytes", c.purge_flush_bytes),
        ("svc_writeback_bytes", c.writeback_bytes),
        ("svc_fetch_retries", oracle.cache_fetch_retries),
        ("svc_recalls", oracle.recalls),
        ("svc_delayed_hits", oracle.delayed_hits),
        ("svc_flush_jobs", oracle.flush_jobs),
        ("svc_flush_bytes", oracle.flush_bytes),
    ];
    for (key, want) in pairs {
        let got = u(key)?;
        if got != want {
            return Err(format!(
                "[{}] {key}: live {got} != oracle {want}",
                scenario.name()
            ));
        }
    }

    // p99 read wait within ±15% of the oracle's prediction.
    let oracle_p99 = oracle.read_wait().quantile(0.99);
    let live_p99 = f("read_wait_p99_s")?;
    if (live_p99 - oracle_p99).abs() > 0.15 * oracle_p99.max(1.0) {
        return Err(format!(
            "[{}] p99 read wait: live {live_p99:.1}s vs oracle {oracle_p99:.1}s (>15% off)",
            scenario.name()
        ));
    }

    // Durability: every flushed byte the daemon accounted is confirmed
    // landed on tape — no acked write lost its writeback.
    let flush_bytes = u("drain_flush_bytes")?;
    let landed = u("drain_origin_flushed_bytes")?;
    if flush_bytes != landed {
        return Err(format!(
            "[{}] writeback loss: {flush_bytes} bytes flushed, {landed} landed",
            scenario.name()
        ));
    }
    let acked = u("drain_acked_writes")?;
    if acked != c.writes {
        return Err(format!(
            "[{}] acked writes {acked} != oracle writes {}",
            scenario.name(),
            c.writes
        ));
    }

    // Retry budget: the schedule never retries a read past the plan's
    // bound, so retries are capped by budget × recalls.
    let plan = scenario.plan();
    let retries = u("svc_fetch_retries")?;
    let budget = plan.max_read_retries as u64 * oracle.recalls;
    if retries > budget {
        return Err(format!(
            "[{}] fetch retries {retries} exceed budget {budget}",
            scenario.name()
        ));
    }
    if u("svc_abandoned")? != 0 {
        return Err(format!(
            "[{}] compat replay abandoned recalls",
            scenario.name()
        ));
    }

    let miss_ratio = if c.read_hits + c.read_misses > 0 {
        c.read_misses as f64 / (c.read_hits + c.read_misses) as f64
    } else {
        0.0
    };
    Ok(SmokeOutcome {
        scenario: scenario.name().to_string(),
        oracle_p99_s: oracle_p99,
        live_p99_s: live_p99,
        miss_ratio,
        refs_per_sec,
    })
}

fn spawn(dir: &std::path::Path, bin: &str, args: &[String]) -> Result<Child, String> {
    Command::new(dir.join(bin))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {bin}: {e}"))
}

/// Reads the child's `LISTENING <addr>` banner.
fn read_listening(child: &mut Child) -> Result<String, String> {
    let stdout = child.stdout.take().ok_or("child stdout not piped")?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("reading banner: {e}"))?;
    line.strip_prefix("LISTENING ")
        .map(|a| a.trim().to_string())
        .ok_or_else(|| format!("expected LISTENING banner, got {line:?}"))
}

fn json_u64(json: &str, key: &str) -> Result<u64, String> {
    json_raw(json, key)?
        .parse()
        .map_err(|e| format!("{key}: {e}"))
}

fn json_f64(json: &str, key: &str) -> Result<f64, String> {
    json_raw(json, key)?
        .parse()
        .map_err(|e| format!("{key}: {e}"))
}

/// Pulls one scalar out of the loadgen's flat JSON accounting.
fn json_raw(json: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).ok_or_else(|| format!("{key} missing"))?;
    let rest = &json[at + pat.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("{key} unterminated"))?;
    Ok(rest[..end].trim().to_string())
}

/// Inserts (or replaces) `service_refs_per_sec` in the benchmark
/// artifact without disturbing its other fields.
fn record_bench(path: &str, refs_per_sec: f64) -> Result<(), String> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(_) => {
            let fresh = format!("{{\n  \"service_refs_per_sec\": {refs_per_sec:?}\n}}\n");
            return std::fs::write(path, fresh).map_err(|e| format!("writing {path}: {e}"));
        }
    };
    let kept: Vec<&str> = body
        .lines()
        .filter(|l| !l.contains("\"service_refs_per_sec\""))
        .collect();
    let mut out = Vec::with_capacity(kept.len() + 1);
    let mut inserted = false;
    for line in kept {
        out.push(line.to_string());
        if !inserted && line.trim_start().starts_with('{') {
            out.push(format!("  \"service_refs_per_sec\": {refs_per_sec:?},"));
            inserted = true;
        }
    }
    let mut text = out.join("\n");
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}
