//! Retry backoff policy for daemon→origin recalls.
//!
//! Two modes share one mechanism:
//!
//! * **compat** — the simulator-oracle schedule: a fixed backoff equal
//!   to the fault plan's `retry_backoff_s`, no jitter, no budget. This
//!   reproduces the engine's `RetryReady` timing bit-for-bit, which the
//!   smoke test's oracle comparison depends on.
//! * **live** — jittered exponential backoff with a bounded attempt
//!   budget, for operating the daemon against an origin whose failures
//!   are not the oracle's (deadline misses, real outages). Jitter is a
//!   *deterministic* keyed draw from the job id and attempt number, so
//!   a replay of the same failure sequence backs off identically.

use fmig_sim::event::{SimMs, MS};
use fmig_sim::fault::seed_mix;
use fmig_sim::FaultPlan;

/// When (and how long) a failed recall waits before rejoining its drive
/// queue, and whether it is allowed to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First-retry backoff, virtual ms.
    pub base_ms: SimMs,
    /// Growth factor per failed attempt (1.0 = fixed backoff).
    pub multiplier: f64,
    /// Backoff ceiling, virtual ms.
    pub cap_ms: SimMs,
    /// Relative jitter in `[0, 1)`: the delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Failed attempts allowed per recall; `0` means unlimited (the
    /// oracle-compat engine never abandons a recall).
    pub max_attempts: u32,
    /// Seed for the keyed jitter draw.
    pub seed: u64,
}

impl RetryPolicy {
    /// The oracle-compat policy for a fault plan: fixed backoff equal to
    /// the plan's, unjittered and unbounded, matching the engine's
    /// retry timing exactly.
    pub fn compat(plan: &FaultPlan, seed: u64) -> Self {
        RetryPolicy {
            base_ms: (plan.retry_backoff_s * MS as f64) as SimMs,
            multiplier: 1.0,
            cap_ms: SimMs::MAX / 4,
            jitter: 0.0,
            max_attempts: 0,
            seed,
        }
    }

    /// A live-operations default: 5 s base doubling to a 2-minute cap
    /// with ±25% jitter, at most 5 failed attempts per recall.
    pub fn live(seed: u64) -> Self {
        RetryPolicy {
            base_ms: 5_000,
            multiplier: 2.0,
            cap_ms: 120_000,
            jitter: 0.25,
            max_attempts: 5,
            seed,
        }
    }

    /// Whether a recall that has now failed `attempts` times may retry.
    pub fn allows(&self, attempts: u32) -> bool {
        self.max_attempts == 0 || attempts < self.max_attempts
    }

    /// Backoff before retry number `attempts` (1-based count of failed
    /// attempts so far) of job `job`, virtual ms. Always at least 1 ms
    /// so a retry never rejoins at the instant the drive freed.
    pub fn backoff_ms(&self, job: u64, attempts: u32) -> SimMs {
        let exp = attempts.saturating_sub(1).min(62);
        let mut delay = self.base_ms as f64 * self.multiplier.powi(exp as i32);
        if delay > self.cap_ms as f64 {
            delay = self.cap_ms as f64;
        }
        if self.jitter > 0.0 {
            // splitmix64 of (seed, job, attempt) → uniform in [0, 1).
            let h = seed_mix(seed_mix(self.seed, job), attempts as u64);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0);
        }
        (delay as SimMs).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compat_matches_the_plan_backoff_exactly() {
        let plan = FaultPlan {
            outages: vec![],
            read_error_prob: 0.1,
            max_read_retries: 2,
            retry_backoff_s: 45.0,
            slow_drive: None,
        };
        let p = RetryPolicy::compat(&plan, 7);
        for attempt in 1..10 {
            assert_eq!(p.backoff_ms(99, attempt), 45_000);
            assert!(p.allows(attempt));
        }
    }

    #[test]
    fn live_backoff_grows_caps_and_respects_the_budget() {
        let p = RetryPolicy::live(42);
        let d1 = p.backoff_ms(1, 1);
        let d2 = p.backoff_ms(1, 2);
        let d3 = p.backoff_ms(1, 3);
        // Exponential growth dominates the ±25% jitter.
        assert!(d2 > d1, "{d2} <= {d1}");
        assert!(d3 > d2, "{d3} <= {d2}");
        // The cap bounds even absurd attempt counts (with jitter up to
        // +25% above the 120 s ceiling).
        assert!(p.backoff_ms(1, 40) <= 150_000);
        assert!(p.allows(4));
        assert!(!p.allows(5));
    }

    #[test]
    fn jitter_is_deterministic_and_keyed_by_job_and_attempt() {
        let p = RetryPolicy::live(42);
        assert_eq!(p.backoff_ms(3, 1), p.backoff_ms(3, 1));
        assert_ne!(p.backoff_ms(3, 1), p.backoff_ms(4, 1));
        let reseeded = RetryPolicy { seed: 43, ..p };
        assert_ne!(p.backoff_ms(3, 1), reseeded.backoff_ms(3, 1));
    }
}
