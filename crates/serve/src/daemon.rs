//! `fmig-served`: the HSM cache daemon.
//!
//! Owns a policy-driven [`ShardedCache`] plus the *disk half* of the
//! device model — MSCP dispatch, spindles, channel movers, stall-flush
//! gates — and schedules every miss as a recall against the origin
//! server, which owns the tape half ([`crate::origin`]). The two halves
//! stay causally consistent through a watermark protocol: before the
//! daemon processes anything at virtual time `t` it advances the origin
//! to `t` and applies every tape event the origin emitted up to `t`.
//!
//! # Robustness core
//!
//! Every recall carries a first-byte **deadline** (`deadline_ms`); an
//! attempt whose first byte would land past it fails like a media read
//! error. Failed attempts are retried under the daemon's
//! [`RetryPolicy`] — jittered exponential backoff up to an attempt
//! budget in live mode, the simulator's fixed backoff in compat mode —
//! and a recall that exhausts its budget is **abandoned**: its waiters
//! get `Done(Failed)` replies and the cache entry is left re-missable.
//! Persistent failures trip an origin [`CircuitBreaker`]; while it is
//! open the daemon degrades in documented order: resident data still
//! serves (serve-stale), non-resident reads beyond the bounded recall
//! queue are shed with `Rejected(Shedding)`. **Graceful shutdown**
//! (`Drain`) stops admitting work, drains every in-flight recall, and
//! flushes all dirty writeback bytes before acknowledging.
//!
//! In simulator-compat mode (no deadline, compat retry, breaker
//! disabled, one shard) a replay of a prepared trace reproduces
//! [`fmig_sim::HierarchySimulator`]'s cache decisions exactly — that is
//! the oracle contract `repro service-smoke` enforces.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fmig_core::{FaultScenarioId, PolicyId};
use fmig_migrate::cache::{CacheConfig, CacheOp, ReadResult};
use fmig_migrate::{LatencyFeedback, ShardedCache};
use fmig_sim::config::SimConfig;
use fmig_sim::event::{EventQueue, SimMs, MS};
use fmig_sim::noise;
use fmig_sim::Pool;
use fmig_trace::{DeviceClass, FileId};

use crate::backoff::RetryPolicy;
use crate::breaker::{should_shed, CircuitBreaker};
use crate::protocol::{
    Frame, ProtoError, RejectReason, ServedKind, ServiceStats, NO_DEADLINE, NO_NEXT_USE,
    PROTO_VERSION,
};

/// Virtual time far past any trace: advancing here drains everything,
/// the split-engine equivalent of the simulator's final queue drain.
const DRAIN_HORIZON_VMS: SimMs = SimMs::MAX / 4;

/// Daemon configuration. [`DaemonConfig::compat`] is the
/// simulator-oracle mode the smoke test runs; the public fields let a
/// live deployment turn on deadlines, bounded retry, and the breaker.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// `host:port` of the origin (tape) server.
    pub origin_addr: String,
    /// Staging-disk capacity in bytes.
    pub capacity: u64,
    /// Victim-ranking policy; runs unmodified behind the shard adapter.
    pub policy: PolicyId,
    /// Chaos scenario the origin materializes.
    pub scenario: FaultScenarioId,
    /// Seed shared with the origin and the oracle.
    pub seed: u64,
    /// Fault-schedule span start (first reference), virtual ms.
    pub span_start_vms: SimMs,
    /// Fault-schedule span end (last reference + slack), virtual ms.
    pub span_end_vms: SimMs,
    /// Cache shards (1 for oracle-exact replays).
    pub shards: usize,
    /// Recall first-byte deadline relative to issue; `None` disables.
    pub deadline_ms: Option<SimMs>,
    /// Retry backoff policy for failed recalls.
    pub retry: RetryPolicy,
    /// Consecutive recall failures that trip the breaker (0 disables).
    pub breaker_threshold: u32,
    /// Virtual ms the breaker stays open before a half-open probe.
    pub breaker_cooldown_ms: SimMs,
    /// In-flight recall bound while the breaker is open; misses beyond
    /// it are shed.
    pub queue_bound: usize,
}

impl DaemonConfig {
    /// The simulator-oracle configuration: no deadline, the fault
    /// plan's fixed unbounded backoff, breaker disabled, one shard.
    pub fn compat(
        origin_addr: String,
        capacity: u64,
        policy: PolicyId,
        scenario: FaultScenarioId,
        seed: u64,
        span_start_vms: SimMs,
        span_end_vms: SimMs,
    ) -> Self {
        DaemonConfig {
            origin_addr,
            capacity,
            policy,
            scenario,
            seed,
            span_start_vms,
            span_end_vms,
            shards: 1,
            deadline_ms: None,
            retry: RetryPolicy::compat(&scenario.plan(), seed),
            breaker_threshold: 0,
            breaker_cooldown_ms: 0,
            queue_bound: usize::MAX,
        }
    }
}

/// Messages from connection threads into the single-threaded core.
enum CoreMsg {
    /// New client connection and the sender feeding its writer thread.
    NewConn(u64, Sender<Frame>),
    /// A frame read from a client connection.
    Msg(u64, Frame),
    /// The client connection closed or errored.
    Gone(u64),
}

/// Local (disk-half) events.
#[derive(Debug, Clone, Copy)]
enum LEv {
    /// MSCP dispatch overhead elapsed for reference `r`.
    Dispatch(usize),
    /// Disk transfer finished for disk job `j`.
    DiskDone(usize),
}

/// Per-reference state, the daemon's `RefState`.
#[derive(Debug, Clone, Copy)]
struct RefSt {
    arrival_vms: SimMs,
    id: FileId,
    size: u64,
    write: bool,
    served: ServedKind,
    /// Tape tier behind the file (recalls), or `Disk`.
    device: DeviceClass,
    done: bool,
    /// Outstanding stall-flushes gating this reference's disk start.
    gate: u32,
    /// Dispatched and waiting only on its gate.
    ready: bool,
    recall_seq: u64,
    conn: u64,
    req: u64,
}

/// A foreground disk service job.
#[derive(Debug, Clone, Copy)]
struct DJob {
    r: usize,
    spindle: usize,
}

/// A coalesced in-flight recall (the daemon's `OutstandingRecall`).
#[derive(Debug, Clone, Default)]
struct Outst {
    first_byte_vms: Option<SimMs>,
    waiters: Vec<usize>,
}

/// An in-flight recall job at the origin.
#[derive(Debug, Clone, Copy)]
struct RecallJob {
    r: usize,
    file: FileId,
}

/// An in-flight flush job at the origin.
#[derive(Debug, Clone, Copy)]
struct FlushJob {
    gated: Option<usize>,
}

/// The origin's end-of-run fault accounting.
#[derive(Debug, Clone, Copy, Default)]
struct OriginReport {
    outage_events: u64,
    outage_wait_vms: i64,
    slow_transfers: u64,
}

struct Core<'p> {
    cfg: DaemonConfig,
    sim: SimConfig,
    cache: ShardedCache<'p>,
    feedback: LatencyFeedback,
    queue: EventQueue<LEv>,
    spindles: Vec<Pool>,
    movers: Pool,
    states: Vec<RefSt>,
    djobs: Vec<DJob>,
    outstanding: Vec<Option<Outst>>,
    file_tape: Vec<Option<DeviceClass>>,
    recall_tbl: HashMap<u64, RecallJob>,
    flush_tbl: HashMap<u64, FlushJob>,
    next_job: u64,
    next_recall_seq: u64,
    requests: u64,
    recalls: u64,
    delayed_hits: u64,
    flush_jobs: u64,
    flush_bytes: u64,
    abandoned: u64,
    acked_writes: u64,
    acked_write_bytes: u64,
    origin_flushed_bytes: u64,
    origin_r: BufReader<TcpStream>,
    origin_w: BufWriter<TcpStream>,
    /// Origin has processed everything up to here.
    origin_clock: SimMs,
    /// Un-advanced `Recall`/`Flush` frames are in flight to the origin.
    origin_dirty: bool,
    origin_report: Option<OriginReport>,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    live_recalls: usize,
    draining: bool,
    conns: HashMap<u64, Sender<Frame>>,
    /// Reorder buffer: requests process in global `req` order so a
    /// multi-connection replay is trace-order deterministic.
    pending: BTreeMap<u64, (u64, Frame)>,
    next_req: u64,
}

/// Runs the daemon on `listener` until a client sends `Shutdown`.
/// Returns the final service statistics.
pub fn serve(listener: TcpListener, cfg: DaemonConfig) -> Result<ServiceStats, String> {
    let origin = connect_origin(&cfg.origin_addr)?;
    origin.set_nodelay(true).ok();
    let mut origin_r = BufReader::new(
        origin
            .try_clone()
            .map_err(|e| format!("origin clone: {e}"))?,
    );
    let mut origin_w = BufWriter::new(origin);

    let scenario_idx = FaultScenarioId::ALL
        .iter()
        .position(|s| *s == cfg.scenario)
        .expect("every scenario is in ALL") as u8;
    Frame::OriginHello {
        version: PROTO_VERSION,
        seed: cfg.seed,
        scenario: scenario_idx,
        span_start_vms: cfg.span_start_vms,
        span_end_vms: cfg.span_end_vms,
    }
    .write_to(&mut origin_w)
    .and_then(|()| origin_w.flush().map_err(ProtoError::from))
    .map_err(|e| format!("origin hello: {e}"))?;
    match Frame::read_from(&mut origin_r) {
        Ok(Frame::OriginHelloAck { version }) if version == PROTO_VERSION => {}
        Ok(other) => return Err(format!("bad origin handshake reply: {other:?}")),
        Err(e) => return Err(format!("origin handshake: {e}")),
    }

    let policy = cfg.policy.build();
    let sim = SimConfig::default().with_seed(cfg.seed);
    let cache = ShardedCache::new(
        CacheConfig::with_capacity(cfg.capacity),
        policy.as_ref(),
        cfg.shards.max(1),
    );

    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let (tx, rx) = mpsc::channel();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || accept_loop(listener, tx, stop));
    }

    let mut core = Core {
        retry: cfg.retry,
        breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ms),
        spindles: (0..sim.disk_spindles).map(|_| Pool::new(1)).collect(),
        movers: Pool::new(sim.movers),
        cfg,
        sim,
        cache,
        feedback: LatencyFeedback::new(),
        queue: EventQueue::new(),
        states: Vec::new(),
        djobs: Vec::new(),
        outstanding: Vec::new(),
        file_tape: Vec::new(),
        recall_tbl: HashMap::new(),
        flush_tbl: HashMap::new(),
        next_job: 0,
        next_recall_seq: 0,
        requests: 0,
        recalls: 0,
        delayed_hits: 0,
        flush_jobs: 0,
        flush_bytes: 0,
        abandoned: 0,
        acked_writes: 0,
        acked_write_bytes: 0,
        origin_flushed_bytes: 0,
        origin_r,
        origin_w,
        origin_clock: SimMs::MIN,
        origin_dirty: false,
        origin_report: None,
        live_recalls: 0,
        draining: false,
        conns: HashMap::new(),
        pending: BTreeMap::new(),
        next_req: 0,
    };

    let result = loop {
        let Ok(msg) = rx.recv() else {
            break Err("all connection threads vanished".to_string());
        };
        match msg {
            CoreMsg::NewConn(id, sender) => {
                core.conns.insert(id, sender);
            }
            CoreMsg::Gone(id) => {
                core.conns.remove(&id);
            }
            CoreMsg::Msg(id, frame) => match core.handle_client(id, frame) {
                Ok(true) => {}
                Ok(false) => break Ok(core.stats()),
                Err(e) => break Err(e),
            },
        }
    };

    // Unblock the acceptor so it drops the listener.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local_addr);
    result
}

fn connect_origin(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = e.to_string();
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(format!("origin {addr} unreachable: {last}"))
}

fn accept_loop(listener: TcpListener, tx: Sender<CoreMsg>, stop: Arc<AtomicBool>) {
    let mut next_id = 0u64;
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        stream.set_nodelay(true).ok();
        let id = next_id;
        next_id += 1;
        let (wtx, wrx) = mpsc::channel::<Frame>();
        // NewConn is sent before the reader thread exists, so the core
        // always learns the connection before its first frame.
        if tx.send(CoreMsg::NewConn(id, wtx)).is_err() {
            return;
        }
        let Ok(rstream) = stream.try_clone() else {
            let _ = tx.send(CoreMsg::Gone(id));
            continue;
        };
        let rtx = tx.clone();
        thread::spawn(move || {
            let mut reader = BufReader::new(rstream);
            loop {
                match Frame::read_from(&mut reader) {
                    Ok(frame) => {
                        if rtx.send(CoreMsg::Msg(id, frame)).is_err() {
                            return;
                        }
                    }
                    Err(_) => {
                        let _ = rtx.send(CoreMsg::Gone(id));
                        return;
                    }
                }
            }
        });
        thread::spawn(move || {
            let mut writer = BufWriter::new(stream);
            while let Ok(frame) = wrx.recv() {
                if frame.write_to(&mut writer).is_err() || writer.flush().is_err() {
                    return;
                }
            }
        });
    }
}

impl Core<'_> {
    /// Handles one client frame. Returns `Ok(false)` on `Shutdown`.
    fn handle_client(&mut self, conn: u64, frame: Frame) -> Result<bool, String> {
        match frame {
            Frame::Hello { .. } => {
                self.send(
                    conn,
                    Frame::HelloAck {
                        version: PROTO_VERSION,
                    },
                );
            }
            Frame::ReadReq { req, .. } | Frame::WriteReq { req, .. } => {
                if self.draining {
                    self.send(
                        conn,
                        Frame::Rejected {
                            req,
                            reason: RejectReason::Draining,
                        },
                    );
                    return Ok(true);
                }
                self.pending.insert(req, (conn, frame));
                while let Some((conn, frame)) = self.pending.remove(&self.next_req) {
                    self.next_req += 1;
                    self.process_request(conn, frame)?;
                }
            }
            Frame::StatsReq => {
                let stats = self.stats();
                self.send(conn, Frame::Stats(stats));
            }
            Frame::Drain => {
                let done = self.drain()?;
                self.send(conn, done);
            }
            Frame::Shutdown => {
                let _ = Frame::Shutdown.write_to(&mut self.origin_w);
                let _ = self.origin_w.flush();
                return Ok(false);
            }
            other => return Err(format!("unexpected client frame: {other:?}")),
        }
        Ok(true)
    }

    fn send(&mut self, conn: u64, frame: Frame) {
        // A vanished client only loses its own replies.
        if let Some(s) = self.conns.get(&conn) {
            let _ = s.send(frame);
        }
    }

    fn process_request(&mut self, conn: u64, frame: Frame) -> Result<(), String> {
        let (req, file, size, time_s, next_use_raw, device, write) = match frame {
            Frame::ReadReq {
                req,
                file,
                size,
                time_s,
                next_use,
                device,
            } => (req, file, size, time_s, next_use, device, false),
            Frame::WriteReq {
                req,
                file,
                size,
                time_s,
                next_use,
                device,
            } => (req, file, size, time_s, next_use, device, true),
            _ => unreachable!("only requests are sequenced"),
        };
        let t_vms = time_s * MS;
        self.advance_to(t_vms)?;
        let id = FileId::from(file);
        if !write {
            let resident = self.cache.contains(id);
            if should_shed(
                resident,
                self.breaker.is_open(t_vms),
                self.live_recalls,
                self.cfg.queue_bound,
            ) {
                self.send(
                    conn,
                    Frame::Rejected {
                        req,
                        reason: RejectReason::Shedding,
                    },
                );
                return Ok(());
            }
        }
        self.requests += 1;
        let next_use = (next_use_raw != NO_NEXT_USE).then_some(next_use_raw);
        self.arrive(conn, req, id, size, write, time_s, next_use, device, t_vms)
    }

    /// Classifies one reference through the cache and turns its side
    /// effects into device traffic — the daemon's half of the engine's
    /// `arrive`.
    #[allow(clippy::too_many_arguments)]
    fn arrive(
        &mut self,
        conn: u64,
        req: u64,
        id: FileId,
        size: u64,
        write: bool,
        time_s: i64,
        next_use: Option<i64>,
        device: DeviceClass,
        t_vms: SimMs,
    ) -> Result<(), String> {
        let tape = match device {
            DeviceClass::TapeManual => DeviceClass::TapeManual,
            _ => DeviceClass::TapeSilo,
        };
        if id.index() >= self.file_tape.len() {
            self.file_tape.resize(id.index() + 1, None);
            self.outstanding.resize_with(self.file_tape.len(), || None);
        }
        self.file_tape[id.index()] = Some(tape);
        // Publish the current miss-wait estimate before classification,
        // exactly like the closed-loop engine: the touch stamps it onto
        // the entry for latency-aware victim ranking.
        let est = self.feedback.estimate(tape, size);
        let mut ops = Vec::new();
        let coalescing = self.sim.recall_coalescing;
        let served = if write {
            self.cache
                .write_with(id, size, time_s, next_use, est, &mut |op| ops.push(op));
            ServedKind::Write
        } else {
            match self
                .cache
                .read_with(id, size, time_s, next_use, est, &mut |op| ops.push(op))
            {
                ReadResult::Hit => ServedKind::Hit,
                ReadResult::DelayedHit if coalescing => {
                    if self.outstanding[id.index()].is_some() {
                        ServedKind::DelayedHit
                    } else {
                        // Live-mode abandon aftermath: the cache still
                        // thinks a fetch is in flight but the recall was
                        // abandoned. Re-issue it. Never taken in compat
                        // mode, where recalls are never abandoned.
                        ServedKind::Recall
                    }
                }
                // Coalescing off: a delayed hit pays its own fetch.
                ReadResult::DelayedHit => ServedKind::Recall,
                ReadResult::Miss if coalescing && self.outstanding[id.index()].is_some() => {
                    // Evicted while its recall is still in flight: the
                    // bytes are already on the way, the re-miss
                    // coalesces too.
                    ServedKind::DelayedHit
                }
                ReadResult::Miss => ServedKind::Recall,
            }
        };
        let device_served = match served {
            ServedKind::Hit | ServedKind::Write => DeviceClass::Disk,
            _ => tape,
        };
        // Counter-noise identity: recall sequence numbers are assigned
        // in arrival order, which is exactly what the oracle does in
        // counter-noise mode.
        let recall_seq = if served == ServedKind::Recall {
            self.next_recall_seq += 1;
            self.next_recall_seq - 1
        } else {
            0
        };
        let i = self.states.len();
        self.states.push(RefSt {
            arrival_vms: t_vms,
            id,
            size,
            write,
            served,
            device: device_served,
            done: false,
            gate: 0,
            ready: false,
            recall_seq,
            conn,
            req,
        });

        // Cache side effects become tape traffic at the origin.
        for &op in &ops {
            match op {
                CacheOp::Fetch { .. } | CacheOp::Drop { .. } => {}
                CacheOp::Writeback { id, bytes } => {
                    let at = t_vms + (self.sim.writeback_delay_s * MS as f64) as SimMs;
                    self.spawn_flush(id, bytes, None, at)?;
                }
                CacheOp::StallFlush { id, bytes } => {
                    // Only disk-served foregrounds stall on the flush; a
                    // miss's recall is the longer pole and proceeds.
                    let gated = if served == ServedKind::Write || served == ServedKind::Hit {
                        self.states[i].gate += 1;
                        Some(i)
                    } else {
                        None
                    };
                    self.spawn_flush(id, bytes, gated, t_vms)?;
                }
                CacheOp::PurgeFlush { id, bytes } => {
                    self.spawn_flush(id, bytes, None, t_vms)?;
                }
            }
        }

        match served {
            ServedKind::Hit | ServedKind::Write | ServedKind::Recall => {
                let d = noise::lognormal_ms(
                    self.sim.seed,
                    noise::dispatch_key(i as u64),
                    self.sim.mscp_overhead_median_s,
                    self.sim.mscp_overhead_sigma,
                );
                self.queue.push(t_vms + d, LEv::Dispatch(i));
                if served == ServedKind::Recall && coalescing {
                    self.outstanding[id.index()] = Some(Outst::default());
                }
            }
            ServedKind::DelayedHit => {
                self.delayed_hits += 1;
                let o = self.outstanding[id.index()]
                    .as_mut()
                    .expect("delayed hit implies an outstanding recall");
                match o.first_byte_vms {
                    // Data already streaming to disk: served on arrival.
                    Some(fb) => self.resolve_ref(i, fb),
                    None => o.waiters.push(i),
                }
            }
            ServedKind::Failed => unreachable!("arrivals are never pre-failed"),
        }
        Ok(())
    }

    /// Ships a background tape flush to the origin (the engine's
    /// `spawn_flush` + `FlushReady`).
    fn spawn_flush(
        &mut self,
        file: FileId,
        bytes: u64,
        gated: Option<usize>,
        at: SimMs,
    ) -> Result<(), String> {
        let tape = self
            .file_tape
            .get(file.index())
            .copied()
            .flatten()
            .unwrap_or(DeviceClass::TapeSilo);
        let seq = self.flush_jobs;
        self.flush_jobs += 1;
        self.flush_bytes += bytes;
        let job = self.next_job;
        self.next_job += 1;
        self.flush_tbl.insert(job, FlushJob { gated });
        Frame::Flush {
            job,
            file: file.index() as u64,
            seq,
            size: bytes,
            tier: tape,
            ready_vms: at,
        }
        .write_to(&mut self.origin_w)
        .map_err(|e| format!("flush send: {e}"))?;
        self.origin_dirty = true;
        Ok(())
    }

    /// Processes every local event up to `t`, keeping the origin's
    /// clock at or ahead of every local event handled — the watermark
    /// protocol that makes the split engine causally consistent.
    fn advance_to(&mut self, t: SimMs) -> Result<(), String> {
        loop {
            let next_local = self.queue.peek_time().filter(|&lt| lt <= t);
            let target = next_local.unwrap_or(t);
            if self.origin_clock < target || self.origin_dirty {
                self.origin_advance(target)?;
                continue;
            }
            match next_local {
                Some(_) => {
                    let (now, ev) = self.queue.pop().expect("peeked event");
                    self.handle_local(now, ev)?;
                }
                None => return Ok(()),
            }
        }
    }

    /// Advances the origin to (at least) `target` and applies every
    /// tape event it emits on the way.
    fn origin_advance(&mut self, target: SimMs) -> Result<(), String> {
        let until = target.max(self.origin_clock);
        Frame::Advance { until_vms: until }
            .write_to(&mut self.origin_w)
            .and_then(|()| self.origin_w.flush().map_err(ProtoError::from))
            .map_err(|e| format!("advance send: {e}"))?;
        self.origin_dirty = false;
        loop {
            let frame =
                Frame::read_from(&mut self.origin_r).map_err(|e| format!("origin read: {e}"))?;
            match frame {
                Frame::AdvanceDone { .. } => break,
                Frame::RecallFirstByte { job, fb_vms } => self.recall_first_byte(job, fb_vms)?,
                Frame::RecallDone { job, done_vms } => self.recall_done(job, done_vms)?,
                Frame::RecallFailed {
                    job,
                    attempt,
                    failed_vms,
                    drive_free_vms,
                } => self.recall_failed(job, attempt, failed_vms, drive_free_vms)?,
                Frame::FlushDone {
                    job,
                    done_vms,
                    bytes,
                } => self.flush_done(job, done_vms, bytes)?,
                other => return Err(format!("unexpected origin frame: {other:?}")),
            }
        }
        self.origin_clock = until;
        Ok(())
    }

    /// The recall's transfer began: serve the requester and every
    /// coalesced waiter at the first byte.
    fn recall_first_byte(&mut self, job: u64, fb_vms: SimMs) -> Result<(), String> {
        let rj = *self
            .recall_tbl
            .get(&job)
            .ok_or_else(|| format!("first byte for unknown recall job {job}"))?;
        self.resolve_ref(rj.r, fb_vms);
        if let Some(o) = self.outstanding[rj.file.index()].as_mut() {
            o.first_byte_vms = Some(fb_vms);
            let waiters = std::mem::take(&mut o.waiters);
            for w in waiters {
                self.resolve_ref(w, fb_vms);
            }
        }
        Ok(())
    }

    /// The file is fully staged: further reads are plain hits.
    fn recall_done(&mut self, job: u64, _done_vms: SimMs) -> Result<(), String> {
        let rj = self
            .recall_tbl
            .remove(&job)
            .ok_or_else(|| format!("completion for unknown recall job {job}"))?;
        self.cache.fetch_complete(rj.file);
        if let Some(o) = self.outstanding[rj.file.index()].take() {
            debug_assert!(o.waiters.is_empty(), "waiters resolve at first byte");
        }
        self.breaker.record_success();
        self.live_recalls = self.live_recalls.saturating_sub(1);
        Ok(())
    }

    /// A recall attempt failed (media error or deadline): re-arm the
    /// cache's outstanding-fetch state and decide retry vs abandon.
    fn recall_failed(
        &mut self,
        job: u64,
        attempt: u32,
        failed_vms: SimMs,
        drive_free_vms: SimMs,
    ) -> Result<(), String> {
        let rj = *self
            .recall_tbl
            .get(&job)
            .ok_or_else(|| format!("failure for unknown recall job {job}"))?;
        self.cache.fetch_failed(rj.file);
        self.breaker.record_failure(failed_vms);
        if self.retry.allows(attempt) {
            let rejoin = drive_free_vms + self.retry.backoff_ms(job, attempt);
            Frame::RecallRetry {
                job,
                rejoin_vms: rejoin,
            }
            .write_to(&mut self.origin_w)
            .and_then(|()| self.origin_w.flush().map_err(ProtoError::from))
            .map_err(|e| format!("retry verdict: {e}"))?;
        } else {
            self.abandoned += 1;
            Frame::RecallAbandon { job }
                .write_to(&mut self.origin_w)
                .and_then(|()| self.origin_w.flush().map_err(ProtoError::from))
                .map_err(|e| format!("abandon verdict: {e}"))?;
            // The requester and every coalesced waiter fail now; the
            // cache entry stays re-missable (see `arrive`'s downgrade).
            self.states[rj.r].served = ServedKind::Failed;
            self.resolve_ref(rj.r, failed_vms);
            if let Some(o) = self.outstanding[rj.file.index()].take() {
                for w in o.waiters {
                    self.states[w].served = ServedKind::Failed;
                    self.resolve_ref(w, failed_vms);
                }
            }
            self.recall_tbl.remove(&job);
            self.live_recalls = self.live_recalls.saturating_sub(1);
        }
        Ok(())
    }

    /// A background flush landed on tape: release its gate (and count
    /// the writeback bytes as durable).
    fn flush_done(&mut self, job: u64, done_vms: SimMs, bytes: u64) -> Result<(), String> {
        let fj = self
            .flush_tbl
            .remove(&job)
            .ok_or_else(|| format!("completion for unknown flush job {job}"))?;
        self.origin_flushed_bytes += bytes;
        if let Some(r) = fj.gated {
            self.states[r].gate -= 1;
            if self.states[r].gate == 0 && self.states[r].ready {
                self.start_disk(r, done_vms);
            }
        }
        Ok(())
    }

    fn handle_local(&mut self, now: SimMs, ev: LEv) -> Result<(), String> {
        match ev {
            LEv::Dispatch(r) => match self.states[r].served {
                ServedKind::Hit | ServedKind::Write => {
                    self.states[r].ready = true;
                    if self.states[r].gate == 0 {
                        self.start_disk(r, now);
                    }
                    Ok(())
                }
                ServedKind::Recall => self.issue_recall(r, now),
                ServedKind::DelayedHit | ServedKind::Failed => {
                    unreachable!("delayed hits and failures are never dispatched")
                }
            },
            LEv::DiskDone(j) => {
                if let Some(n) = self.movers.release(now) {
                    self.disk_mover_granted(n, now);
                }
                let spindle = self.djobs[j].spindle;
                if let Some(n) = self.spindles[spindle].release(now) {
                    self.spindle_granted(n, now);
                }
                Ok(())
            }
        }
    }

    /// Ships a dispatched miss to the origin as a recall job.
    fn issue_recall(&mut self, r: usize, now: SimMs) -> Result<(), String> {
        let st = self.states[r];
        let job = self.next_job;
        self.next_job += 1;
        self.recall_tbl.insert(job, RecallJob { r, file: st.id });
        self.recalls += 1;
        self.live_recalls += 1;
        let deadline_vms = self.cfg.deadline_ms.map_or(NO_DEADLINE, |d| now + d);
        Frame::Recall {
            job,
            file: st.id.index() as u64,
            seq: st.recall_seq,
            size: st.size,
            tier: st.device,
            enter_vms: now,
            deadline_vms,
        }
        .write_to(&mut self.origin_w)
        .map_err(|e| format!("recall send: {e}"))?;
        self.origin_dirty = true;
        Ok(())
    }

    /// Foreground disk service: queue on the file's spindle.
    fn start_disk(&mut self, r: usize, now: SimMs) {
        let j = self.djobs.len();
        self.djobs.push(DJob {
            r,
            spindle: self.states[r].id.index() % self.spindles.len(),
        });
        let spindle = self.djobs[j].spindle;
        if self.spindles[spindle].acquire(j, now) {
            self.spindle_granted(j, now);
        }
    }

    /// Spindle held: contend for a channel mover.
    fn spindle_granted(&mut self, j: usize, now: SimMs) {
        if self.movers.acquire(j, now) {
            self.disk_mover_granted(j, now);
        }
    }

    /// Disk transfer begins: the reference's first byte follows the
    /// seek, and the transfer's end frees the mover and spindle.
    fn disk_mover_granted(&mut self, j: usize, now: SimMs) {
        let r = self.djobs[j].r;
        let size = self.states[r].size;
        let first_byte = now + (self.sim.disk_seek_s * MS as f64) as SimMs;
        self.resolve_ref(r, first_byte);
        let jitter = 1.0
            + noise::range(
                self.sim.seed,
                noise::disk_key(r as u64, noise::STAGE_RATE),
                -self.sim.rate_jitter,
                self.sim.rate_jitter,
            );
        let xfer_ms = (size as f64 / (self.sim.disk_rate * jitter) * 1000.0) as SimMs;
        self.queue
            .push(first_byte + xfer_ms.max(1), LEv::DiskDone(j));
    }

    /// Finalizes a reference's first byte, records its wait, and sends
    /// the client its `Done`.
    fn resolve_ref(&mut self, i: usize, first_byte_vms: SimMs) {
        let (arrival, served, conn, req) = {
            let st = &self.states[i];
            debug_assert!(!st.done, "reference resolved twice");
            (st.arrival_vms, st.served, st.conn, st.req)
        };
        let fb = first_byte_vms.max(arrival);
        self.states[i].done = true;
        let wait_vms = fb - arrival;
        if served == ServedKind::Recall {
            // The feedback loop closes here, exactly like the engine: a
            // measured recall wait updates the estimate future victim
            // rankings will see.
            let st = self.states[i];
            self.feedback
                .record(st.device, st.size, wait_vms as f64 / MS as f64);
        }
        if self.states[i].write {
            self.acked_writes += 1;
            self.acked_write_bytes += self.states[i].size;
        }
        self.send(
            conn,
            Frame::Done {
                req,
                wait_vms,
                served,
            },
        );
    }

    /// Graceful shutdown: stop admitting, drain every in-flight recall
    /// and flush, and report the writeback accounting.
    fn drain(&mut self) -> Result<Frame, String> {
        self.draining = true;
        self.advance_to(DRAIN_HORIZON_VMS)?;
        debug_assert!(self.recall_tbl.is_empty(), "recalls survived the drain");
        debug_assert!(self.flush_tbl.is_empty(), "flushes survived the drain");
        if self.origin_report.is_none() {
            Frame::Drain
                .write_to(&mut self.origin_w)
                .and_then(|()| self.origin_w.flush().map_err(ProtoError::from))
                .map_err(|e| format!("origin drain: {e}"))?;
            match Frame::read_from(&mut self.origin_r) {
                Ok(Frame::OriginDrainDone {
                    outage_events,
                    outage_wait_vms,
                    slow_transfers,
                    flushed_bytes,
                    recalls_completed: _,
                    read_failures: _,
                }) => {
                    debug_assert_eq!(
                        flushed_bytes, self.origin_flushed_bytes,
                        "flush accounting diverged"
                    );
                    self.origin_report = Some(OriginReport {
                        outage_events,
                        outage_wait_vms,
                        slow_transfers,
                    });
                }
                Ok(other) => return Err(format!("bad origin drain reply: {other:?}")),
                Err(e) => return Err(format!("origin drain read: {e}")),
            }
        }
        Ok(Frame::DrainDone {
            acked_writes: self.acked_writes,
            acked_write_bytes: self.acked_write_bytes,
            flush_jobs: self.flush_jobs,
            flush_bytes: self.flush_bytes,
            origin_flushed_bytes: self.origin_flushed_bytes,
        })
    }

    fn stats(&self) -> ServiceStats {
        let cs = self.cache.stats();
        let rep = self.origin_report.unwrap_or_default();
        ServiceStats {
            requests: self.requests,
            read_hits: cs.read_hits,
            read_misses: cs.read_misses,
            read_hit_bytes: cs.read_hit_bytes,
            read_miss_bytes: cs.read_miss_bytes,
            writes: cs.writes,
            evictions: cs.evictions,
            evicted_bytes: cs.evicted_bytes,
            stall_bytes: cs.stall_bytes,
            purge_flush_bytes: cs.purge_flush_bytes,
            writeback_bytes: cs.writeback_bytes,
            fetch_retries: self.cache.fetch_retries(),
            recalls: self.recalls,
            delayed_hits: self.delayed_hits,
            flush_jobs: self.flush_jobs,
            flush_bytes: self.flush_bytes,
            abandoned: self.abandoned,
            outage_events: rep.outage_events,
            outage_wait_vms: rep.outage_wait_vms,
            slow_transfers: rep.slow_transfers,
        }
    }
}
