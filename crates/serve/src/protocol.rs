//! The hand-rolled wire protocol of the live HSM service.
//!
//! Every frame on every socket is `u32` little-endian payload length,
//! one `u8` frame type, then a fixed-width little-endian payload. There
//! is no external serialization dependency and no self-describing
//! metadata — both ends are this workspace, so the codec optimizes for
//! auditability: every field is written and read in one obvious place.
//!
//! # Robustness contract
//!
//! Decoding is total: any byte sequence either yields a [`Frame`] or a
//! [`ProtoError`] — never a panic, and never an allocation larger than
//! [`MAX_FRAME`] (the length prefix is validated **before**
//! `Vec::with_capacity`, so a hostile or corrupted 4-GiB length field
//! cannot balloon memory). Truncated payloads, trailing garbage,
//! unknown frame types, and invalid enum discriminants are all distinct
//! errors. The property tests in `tests/protocol_props.rs` pin all of
//! this: round-trips for every frame type, and rejection (not panic)
//! for truncated, corrupted, and oversized inputs.
//!
//! Virtual time: the service simulates the paper's hardware, so frames
//! carry **virtual milliseconds** (`_vms` fields) on the same clock the
//! simulator oracle uses — that equivalence is what the smoke test
//! checks. See `docs/architecture.md` for the topology.

use std::io::{self, Read, Write};

use fmig_trace::DeviceClass;

/// Protocol version; bumped on any wire-incompatible change.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on a frame's payload length, enforced before any
/// allocation. Every real frame is under 200 bytes; the cap only exists
/// so a corrupted length prefix fails fast instead of allocating.
pub const MAX_FRAME: u32 = 1 << 20;

/// Sentinel for "no next-use annotation" in request frames (wire form
/// of `Option<i64>::None`).
pub const NO_NEXT_USE: i64 = i64::MIN;

/// Sentinel deadline meaning "no deadline" (simulator-compat mode).
pub const NO_DEADLINE: i64 = i64::MAX;

/// Decode failure; the connection that produced it is poisoned and
/// should be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// The payload ended before the frame's fixed-width fields did.
    Truncated,
    /// The payload was longer than the frame's fields.
    TrailingBytes(usize),
    /// Unknown frame-type byte.
    UnknownType(u8),
    /// A field carried an invalid enum discriminant.
    BadDiscriminant(&'static str, u8),
    /// Socket-level failure while reading a frame.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized(n) => write!(f, "frame length {n} exceeds cap {MAX_FRAME}"),
            ProtoError::Truncated => write!(f, "frame payload truncated"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame payload"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::BadDiscriminant(what, v) => write!(f, "invalid {what} discriminant {v}"),
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e.to_string())
    }
}

/// Why the daemon refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The daemon is draining; no new work is admitted.
    Draining,
    /// The origin circuit breaker is open and the degraded-mode queue
    /// bound is exhausted: load is shed instead of queued.
    Shedding,
}

/// How a request was served, as reported to the load generator. Mirrors
/// `fmig_sim::ServedBy` plus the degraded outcome a live service needs:
/// a recall abandoned after its deadline/retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedKind {
    /// Disk read hit.
    Hit,
    /// Read coalesced onto an outstanding recall.
    DelayedHit,
    /// Read served by its own tape recall.
    Recall,
    /// Write absorbed by the staging disk.
    Write,
    /// The recall was abandoned (deadline or retry budget exhausted);
    /// the reply is an error, not data.
    Failed,
}

/// One protocol frame; see the module docs for the wire layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client <-> daemon ----
    /// Client hello: version check plus the connection's id.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
        /// Client-chosen connection id (loadgen connection index).
        conn: u32,
    },
    /// Daemon's hello reply.
    HelloAck {
        /// The daemon's protocol version.
        version: u32,
    },
    /// Read request for one trace reference.
    ReadReq {
        /// Global trace-order sequence number; the daemon serves
        /// requests in this order regardless of connection.
        req: u64,
        /// Dense file id.
        file: u64,
        /// File size in bytes.
        size: u64,
        /// Virtual arrival time, seconds.
        time_s: i64,
        /// Next-use annotation ([`NO_NEXT_USE`] when absent).
        next_use: i64,
        /// The trace's device annotation for the file.
        device: DeviceClass,
    },
    /// Write request for one trace reference; same fields as
    /// [`Frame::ReadReq`].
    WriteReq {
        /// Global trace-order sequence number.
        req: u64,
        /// Dense file id.
        file: u64,
        /// File size in bytes.
        size: u64,
        /// Virtual arrival time, seconds.
        time_s: i64,
        /// Next-use annotation ([`NO_NEXT_USE`] when absent).
        next_use: i64,
        /// The trace's device annotation for the file.
        device: DeviceClass,
    },
    /// A request reached its first byte.
    Done {
        /// The request's sequence number.
        req: u64,
        /// First-byte wait in virtual milliseconds.
        wait_vms: i64,
        /// How it was served.
        served: ServedKind,
    },
    /// A request was refused.
    Rejected {
        /// The request's sequence number.
        req: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Graceful-shutdown signal: drain in-flight recalls, land every
    /// pending writeback on tape, then reply [`Frame::DrainDone`].
    Drain,
    /// Drain finished; the accounting the shutdown test audits.
    DrainDone {
        /// Writes acknowledged with [`Frame::Done`].
        acked_writes: u64,
        /// Bytes those writes carried.
        acked_write_bytes: u64,
        /// Flush jobs sent to the origin.
        flush_jobs: u64,
        /// Bytes those flush jobs carried.
        flush_bytes: u64,
        /// Bytes the origin confirmed landed on tape.
        origin_flushed_bytes: u64,
    },
    /// Ask the daemon for its counters.
    StatsReq,
    /// The daemon's counters; cache fields match `CacheStats` and the
    /// rest mirror `HierarchyMetrics`, which is what lets the smoke
    /// test compare them to the oracle field by field.
    Stats(ServiceStats),
    /// Terminate the daemon (after a drain).
    Shutdown,

    // ---- daemon <-> origin ----
    /// Daemon hello to the origin: seed + scenario so both sides
    /// materialize the identical fault schedule and keyed-noise stream.
    OriginHello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
        /// The cell's engine seed (keyed noise + fault schedule).
        seed: u64,
        /// Fault scenario name index (`FaultScenarioId::ALL` position).
        scenario: u8,
        /// Fault-schedule span start, virtual ms.
        span_start_vms: i64,
        /// Fault-schedule span end, virtual ms.
        span_end_vms: i64,
    },
    /// Origin's hello reply.
    OriginHelloAck {
        /// The origin's protocol version.
        version: u32,
    },
    /// A recall enters the origin's tape queue.
    Recall {
        /// Daemon-assigned job id, echoed in every reply about it.
        job: u64,
        /// Dense file id (for logging; the origin keys nothing on it).
        file: u64,
        /// Arrival-order recall sequence number — the identity the
        /// fault schedule's read-error decisions and the keyed noise
        /// draws use, so origin physics equal oracle physics.
        seq: u64,
        /// Bytes to stage.
        size: u64,
        /// Tape tier.
        tier: DeviceClass,
        /// Virtual time the recall joins the drive queue.
        enter_vms: i64,
        /// First-byte deadline; [`NO_DEADLINE`] disables it.
        deadline_vms: i64,
    },
    /// A write-behind flush enters the origin's tape queue.
    Flush {
        /// Daemon-assigned job id.
        job: u64,
        /// Dense file id.
        file: u64,
        /// Spawn-order flush sequence number (keyed-noise identity).
        seq: u64,
        /// Bytes to land.
        size: u64,
        /// Tape tier.
        tier: DeviceClass,
        /// Virtual time the flush becomes ready to queue.
        ready_vms: i64,
    },
    /// Run the origin's event queue up to (and including) `until_vms`.
    Advance {
        /// Watermark, virtual ms.
        until_vms: i64,
    },
    /// The origin processed everything at or before the watermark.
    AdvanceDone {
        /// Echo of the watermark.
        now_vms: i64,
    },
    /// A recall's transfer started: its requester (and coalesced
    /// waiters) are served from this instant.
    RecallFirstByte {
        /// The recall's job id.
        job: u64,
        /// First-byte virtual time.
        fb_vms: i64,
    },
    /// A recall's transfer finished; the file is fully staged.
    RecallDone {
        /// The recall's job id.
        job: u64,
        /// Completion virtual time.
        done_vms: i64,
    },
    /// A recall attempt failed (media read error, or first byte past
    /// its deadline). The origin holds this recall until the daemon
    /// answers [`Frame::RecallRetry`] or [`Frame::RecallAbandon`].
    RecallFailed {
        /// The recall's job id.
        job: u64,
        /// Failed attempts so far, this one included.
        attempt: u32,
        /// Failure virtual time.
        failed_vms: i64,
        /// When the drive finishes unloading (earliest possible
        /// rejoin; the daemon adds its backoff on top).
        drive_free_vms: i64,
    },
    /// Retry decision: the recall rejoins its drive queue at
    /// `rejoin_vms` (drive-free time plus the daemon's backoff).
    RecallRetry {
        /// The recall's job id.
        job: u64,
        /// Rejoin virtual time.
        rejoin_vms: i64,
    },
    /// Abandon decision: budget or deadline exhausted; the origin
    /// drops the job.
    RecallAbandon {
        /// The recall's job id.
        job: u64,
    },
    /// A flush landed on tape.
    FlushDone {
        /// The flush's job id.
        job: u64,
        /// Completion virtual time.
        done_vms: i64,
        /// Bytes landed.
        bytes: u64,
    },
    /// The origin drained; its degraded-mode accounting.
    OriginDrainDone {
        /// Outage windows that actually parked a unit.
        outage_events: u64,
        /// Queue wait attributed to outage overlap, virtual ms.
        outage_wait_vms: i64,
        /// Transfers run inside a slow-drive window.
        slow_transfers: u64,
        /// Total bytes landed by completed flush jobs.
        flushed_bytes: u64,
        /// Recalls that completed successfully.
        recalls_completed: u64,
        /// Recall attempts that failed.
        read_failures: u64,
    },
}

/// The daemon's counter snapshot (the payload of [`Frame::Stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests admitted.
    pub requests: u64,
    /// `CacheStats::read_hits`.
    pub read_hits: u64,
    /// `CacheStats::read_misses`.
    pub read_misses: u64,
    /// `CacheStats::read_hit_bytes`.
    pub read_hit_bytes: u64,
    /// `CacheStats::read_miss_bytes`.
    pub read_miss_bytes: u64,
    /// `CacheStats::writes`.
    pub writes: u64,
    /// `CacheStats::evictions`.
    pub evictions: u64,
    /// `CacheStats::evicted_bytes`.
    pub evicted_bytes: u64,
    /// `CacheStats::stall_bytes`.
    pub stall_bytes: u64,
    /// `CacheStats::purge_flush_bytes`.
    pub purge_flush_bytes: u64,
    /// `CacheStats::writeback_bytes`.
    pub writeback_bytes: u64,
    /// `DiskCache::fetch_retries` — failed recall attempts.
    pub fetch_retries: u64,
    /// Recalls issued.
    pub recalls: u64,
    /// Reads coalesced onto outstanding recalls.
    pub delayed_hits: u64,
    /// Flush jobs sent to the origin.
    pub flush_jobs: u64,
    /// Bytes those flush jobs carried.
    pub flush_bytes: u64,
    /// Recalls abandoned (deadline or retry budget).
    pub abandoned: u64,
    /// Origin-reported outage windows that parked a unit.
    pub outage_events: u64,
    /// Origin-reported outage-overlapped queue wait, virtual ms.
    pub outage_wait_vms: i64,
    /// Origin-reported transfers inside slow-drive windows.
    pub slow_transfers: u64,
}

// ---- little-endian field helpers ----

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.at.checked_add(n).ok_or(ProtoError::Truncated)?;
        let s = self.buf.get(self.at..end).ok_or(ProtoError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn device(&mut self) -> Result<DeviceClass, ProtoError> {
        match self.u8()? {
            0 => Ok(DeviceClass::Disk),
            1 => Ok(DeviceClass::TapeSilo),
            2 => Ok(DeviceClass::TapeManual),
            v => Err(ProtoError::BadDiscriminant("device", v)),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.buf.len() - self.at))
        }
    }
}

fn device_byte(d: DeviceClass) -> u8 {
    match d {
        DeviceClass::Disk => 0,
        DeviceClass::TapeSilo => 1,
        DeviceClass::TapeManual => 2,
    }
}

fn served_byte(s: ServedKind) -> u8 {
    match s {
        ServedKind::Hit => 0,
        ServedKind::DelayedHit => 1,
        ServedKind::Recall => 2,
        ServedKind::Write => 3,
        ServedKind::Failed => 4,
    }
}

fn served_of(v: u8) -> Result<ServedKind, ProtoError> {
    match v {
        0 => Ok(ServedKind::Hit),
        1 => Ok(ServedKind::DelayedHit),
        2 => Ok(ServedKind::Recall),
        3 => Ok(ServedKind::Write),
        4 => Ok(ServedKind::Failed),
        v => Err(ProtoError::BadDiscriminant("served", v)),
    }
}

fn reason_byte(r: RejectReason) -> u8 {
    match r {
        RejectReason::Draining => 0,
        RejectReason::Shedding => 1,
    }
}

fn reason_of(v: u8) -> Result<RejectReason, ProtoError> {
    match v {
        0 => Ok(RejectReason::Draining),
        1 => Ok(RejectReason::Shedding),
        v => Err(ProtoError::BadDiscriminant("reason", v)),
    }
}

// Frame-type bytes.
const T_HELLO: u8 = 0x01;
const T_HELLO_ACK: u8 = 0x02;
const T_READ: u8 = 0x10;
const T_WRITE: u8 = 0x11;
const T_DONE: u8 = 0x12;
const T_REJECTED: u8 = 0x13;
const T_DRAIN: u8 = 0x14;
const T_DRAIN_DONE: u8 = 0x15;
const T_STATS_REQ: u8 = 0x16;
const T_STATS: u8 = 0x17;
const T_SHUTDOWN: u8 = 0x18;
const T_ORIGIN_HELLO: u8 = 0x20;
const T_ORIGIN_HELLO_ACK: u8 = 0x21;
const T_RECALL: u8 = 0x22;
const T_FLUSH: u8 = 0x23;
const T_ADVANCE: u8 = 0x24;
const T_ADVANCE_DONE: u8 = 0x25;
const T_RECALL_FIRST_BYTE: u8 = 0x26;
const T_RECALL_DONE: u8 = 0x27;
const T_RECALL_FAILED: u8 = 0x28;
const T_RECALL_RETRY: u8 = 0x29;
const T_RECALL_ABANDON: u8 = 0x2A;
const T_FLUSH_DONE: u8 = 0x2B;
const T_ORIGIN_DRAIN_DONE: u8 = 0x2C;

impl Frame {
    /// Encodes the frame's type byte plus payload (everything after the
    /// length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        match *self {
            Frame::Hello { version, conn } => {
                b.push(T_HELLO);
                b.extend_from_slice(&version.to_le_bytes());
                b.extend_from_slice(&conn.to_le_bytes());
            }
            Frame::HelloAck { version } => {
                b.push(T_HELLO_ACK);
                b.extend_from_slice(&version.to_le_bytes());
            }
            Frame::ReadReq {
                req,
                file,
                size,
                time_s,
                next_use,
                device,
            }
            | Frame::WriteReq {
                req,
                file,
                size,
                time_s,
                next_use,
                device,
            } => {
                b.push(if matches!(self, Frame::ReadReq { .. }) {
                    T_READ
                } else {
                    T_WRITE
                });
                b.extend_from_slice(&req.to_le_bytes());
                b.extend_from_slice(&file.to_le_bytes());
                b.extend_from_slice(&size.to_le_bytes());
                b.extend_from_slice(&time_s.to_le_bytes());
                b.extend_from_slice(&next_use.to_le_bytes());
                b.push(device_byte(device));
            }
            Frame::Done {
                req,
                wait_vms,
                served,
            } => {
                b.push(T_DONE);
                b.extend_from_slice(&req.to_le_bytes());
                b.extend_from_slice(&wait_vms.to_le_bytes());
                b.push(served_byte(served));
            }
            Frame::Rejected { req, reason } => {
                b.push(T_REJECTED);
                b.extend_from_slice(&req.to_le_bytes());
                b.push(reason_byte(reason));
            }
            Frame::Drain => b.push(T_DRAIN),
            Frame::DrainDone {
                acked_writes,
                acked_write_bytes,
                flush_jobs,
                flush_bytes,
                origin_flushed_bytes,
            } => {
                b.push(T_DRAIN_DONE);
                for v in [
                    acked_writes,
                    acked_write_bytes,
                    flush_jobs,
                    flush_bytes,
                    origin_flushed_bytes,
                ] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::StatsReq => b.push(T_STATS_REQ),
            Frame::Stats(s) => {
                b.push(T_STATS);
                for v in [
                    s.requests,
                    s.read_hits,
                    s.read_misses,
                    s.read_hit_bytes,
                    s.read_miss_bytes,
                    s.writes,
                    s.evictions,
                    s.evicted_bytes,
                    s.stall_bytes,
                    s.purge_flush_bytes,
                    s.writeback_bytes,
                    s.fetch_retries,
                    s.recalls,
                    s.delayed_hits,
                    s.flush_jobs,
                    s.flush_bytes,
                    s.abandoned,
                    s.outage_events,
                ] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b.extend_from_slice(&s.outage_wait_vms.to_le_bytes());
                b.extend_from_slice(&s.slow_transfers.to_le_bytes());
            }
            Frame::Shutdown => b.push(T_SHUTDOWN),
            Frame::OriginHello {
                version,
                seed,
                scenario,
                span_start_vms,
                span_end_vms,
            } => {
                b.push(T_ORIGIN_HELLO);
                b.extend_from_slice(&version.to_le_bytes());
                b.extend_from_slice(&seed.to_le_bytes());
                b.push(scenario);
                b.extend_from_slice(&span_start_vms.to_le_bytes());
                b.extend_from_slice(&span_end_vms.to_le_bytes());
            }
            Frame::OriginHelloAck { version } => {
                b.push(T_ORIGIN_HELLO_ACK);
                b.extend_from_slice(&version.to_le_bytes());
            }
            Frame::Recall {
                job,
                file,
                seq,
                size,
                tier,
                enter_vms,
                deadline_vms,
            } => {
                b.push(T_RECALL);
                for v in [job, file, seq, size] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b.push(device_byte(tier));
                b.extend_from_slice(&enter_vms.to_le_bytes());
                b.extend_from_slice(&deadline_vms.to_le_bytes());
            }
            Frame::Flush {
                job,
                file,
                seq,
                size,
                tier,
                ready_vms,
            } => {
                b.push(T_FLUSH);
                for v in [job, file, seq, size] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b.push(device_byte(tier));
                b.extend_from_slice(&ready_vms.to_le_bytes());
            }
            Frame::Advance { until_vms } => {
                b.push(T_ADVANCE);
                b.extend_from_slice(&until_vms.to_le_bytes());
            }
            Frame::AdvanceDone { now_vms } => {
                b.push(T_ADVANCE_DONE);
                b.extend_from_slice(&now_vms.to_le_bytes());
            }
            Frame::RecallFirstByte { job, fb_vms } => {
                b.push(T_RECALL_FIRST_BYTE);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&fb_vms.to_le_bytes());
            }
            Frame::RecallDone { job, done_vms } => {
                b.push(T_RECALL_DONE);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&done_vms.to_le_bytes());
            }
            Frame::RecallFailed {
                job,
                attempt,
                failed_vms,
                drive_free_vms,
            } => {
                b.push(T_RECALL_FAILED);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&attempt.to_le_bytes());
                b.extend_from_slice(&failed_vms.to_le_bytes());
                b.extend_from_slice(&drive_free_vms.to_le_bytes());
            }
            Frame::RecallRetry { job, rejoin_vms } => {
                b.push(T_RECALL_RETRY);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&rejoin_vms.to_le_bytes());
            }
            Frame::RecallAbandon { job } => {
                b.push(T_RECALL_ABANDON);
                b.extend_from_slice(&job.to_le_bytes());
            }
            Frame::FlushDone {
                job,
                done_vms,
                bytes,
            } => {
                b.push(T_FLUSH_DONE);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&done_vms.to_le_bytes());
                b.extend_from_slice(&bytes.to_le_bytes());
            }
            Frame::OriginDrainDone {
                outage_events,
                outage_wait_vms,
                slow_transfers,
                flushed_bytes,
                recalls_completed,
                read_failures,
            } => {
                b.push(T_ORIGIN_DRAIN_DONE);
                b.extend_from_slice(&outage_events.to_le_bytes());
                b.extend_from_slice(&outage_wait_vms.to_le_bytes());
                for v in [
                    slow_transfers,
                    flushed_bytes,
                    recalls_completed,
                    read_failures,
                ] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        b
    }

    /// Decodes a frame body (type byte + payload, no length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
        let mut r = Reader::new(body);
        let t = r.u8()?;
        let frame = match t {
            T_HELLO => Frame::Hello {
                version: r.u32()?,
                conn: r.u32()?,
            },
            T_HELLO_ACK => Frame::HelloAck { version: r.u32()? },
            T_READ | T_WRITE => {
                let req = r.u64()?;
                let file = r.u64()?;
                let size = r.u64()?;
                let time_s = r.i64()?;
                let next_use = r.i64()?;
                let device = r.device()?;
                if t == T_READ {
                    Frame::ReadReq {
                        req,
                        file,
                        size,
                        time_s,
                        next_use,
                        device,
                    }
                } else {
                    Frame::WriteReq {
                        req,
                        file,
                        size,
                        time_s,
                        next_use,
                        device,
                    }
                }
            }
            T_DONE => Frame::Done {
                req: r.u64()?,
                wait_vms: r.i64()?,
                served: served_of(r.u8()?)?,
            },
            T_REJECTED => Frame::Rejected {
                req: r.u64()?,
                reason: reason_of(r.u8()?)?,
            },
            T_DRAIN => Frame::Drain,
            T_DRAIN_DONE => Frame::DrainDone {
                acked_writes: r.u64()?,
                acked_write_bytes: r.u64()?,
                flush_jobs: r.u64()?,
                flush_bytes: r.u64()?,
                origin_flushed_bytes: r.u64()?,
            },
            T_STATS_REQ => Frame::StatsReq,
            T_STATS => Frame::Stats(ServiceStats {
                requests: r.u64()?,
                read_hits: r.u64()?,
                read_misses: r.u64()?,
                read_hit_bytes: r.u64()?,
                read_miss_bytes: r.u64()?,
                writes: r.u64()?,
                evictions: r.u64()?,
                evicted_bytes: r.u64()?,
                stall_bytes: r.u64()?,
                purge_flush_bytes: r.u64()?,
                writeback_bytes: r.u64()?,
                fetch_retries: r.u64()?,
                recalls: r.u64()?,
                delayed_hits: r.u64()?,
                flush_jobs: r.u64()?,
                flush_bytes: r.u64()?,
                abandoned: r.u64()?,
                outage_events: r.u64()?,
                outage_wait_vms: r.i64()?,
                slow_transfers: r.u64()?,
            }),
            T_SHUTDOWN => Frame::Shutdown,
            T_ORIGIN_HELLO => Frame::OriginHello {
                version: r.u32()?,
                seed: r.u64()?,
                scenario: r.u8()?,
                span_start_vms: r.i64()?,
                span_end_vms: r.i64()?,
            },
            T_ORIGIN_HELLO_ACK => Frame::OriginHelloAck { version: r.u32()? },
            T_RECALL => Frame::Recall {
                job: r.u64()?,
                file: r.u64()?,
                seq: r.u64()?,
                size: r.u64()?,
                tier: r.device()?,
                enter_vms: r.i64()?,
                deadline_vms: r.i64()?,
            },
            T_FLUSH => Frame::Flush {
                job: r.u64()?,
                file: r.u64()?,
                seq: r.u64()?,
                size: r.u64()?,
                tier: r.device()?,
                ready_vms: r.i64()?,
            },
            T_ADVANCE => Frame::Advance {
                until_vms: r.i64()?,
            },
            T_ADVANCE_DONE => Frame::AdvanceDone { now_vms: r.i64()? },
            T_RECALL_FIRST_BYTE => Frame::RecallFirstByte {
                job: r.u64()?,
                fb_vms: r.i64()?,
            },
            T_RECALL_DONE => Frame::RecallDone {
                job: r.u64()?,
                done_vms: r.i64()?,
            },
            T_RECALL_FAILED => Frame::RecallFailed {
                job: r.u64()?,
                attempt: r.u32()?,
                failed_vms: r.i64()?,
                drive_free_vms: r.i64()?,
            },
            T_RECALL_RETRY => Frame::RecallRetry {
                job: r.u64()?,
                rejoin_vms: r.i64()?,
            },
            T_RECALL_ABANDON => Frame::RecallAbandon { job: r.u64()? },
            T_FLUSH_DONE => Frame::FlushDone {
                job: r.u64()?,
                done_vms: r.i64()?,
                bytes: r.u64()?,
            },
            T_ORIGIN_DRAIN_DONE => Frame::OriginDrainDone {
                outage_events: r.u64()?,
                outage_wait_vms: r.i64()?,
                slow_transfers: r.u64()?,
                flushed_bytes: r.u64()?,
                recalls_completed: r.u64()?,
                read_failures: r.u64()?,
            },
            t => return Err(ProtoError::UnknownType(t)),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Writes the length-prefixed frame to `w` (no flush; callers batch
    /// and flush at synchronization points).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtoError> {
        let body = self.encode_body();
        debug_assert!(body.len() as u64 <= MAX_FRAME as u64);
        w.write_all(&(body.len() as u32).to_le_bytes())?;
        w.write_all(&body)?;
        Ok(())
    }

    /// Reads one length-prefixed frame from `r`. The length prefix is
    /// validated against [`MAX_FRAME`] before the payload buffer is
    /// allocated.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, ProtoError> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized(len));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Frame::decode_body(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_byte_stream() {
        let frames = vec![
            Frame::Hello {
                version: PROTO_VERSION,
                conn: 3,
            },
            Frame::ReadReq {
                req: 42,
                file: 7,
                size: 1 << 20,
                time_s: 1234,
                next_use: NO_NEXT_USE,
                device: DeviceClass::TapeSilo,
            },
            Frame::Done {
                req: 42,
                wait_vms: 302_000,
                served: ServedKind::Recall,
            },
            Frame::Drain,
            Frame::Stats(ServiceStats {
                requests: 5764,
                read_hits: 100,
                ..ServiceStats::default()
            }),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = &buf[..];
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        match Frame::read_from(&mut &buf[..]) {
            Err(ProtoError::Oversized(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_distinct_errors() {
        let body = Frame::Advance { until_vms: 99 }.encode_body();
        assert_eq!(
            Frame::decode_body(&body[..body.len() - 1]),
            Err(ProtoError::Truncated)
        );
        let mut long = body.clone();
        long.push(0);
        assert_eq!(Frame::decode_body(&long), Err(ProtoError::TrailingBytes(1)));
        assert_eq!(Frame::decode_body(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            Frame::decode_body(&[0xEE]),
            Err(ProtoError::UnknownType(0xEE))
        );
    }
}
