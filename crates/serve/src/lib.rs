//! Live HSM cache service: the closed-loop hierarchy engine split into
//! three cooperating processes that talk a hand-rolled TCP protocol.
//!
//! * **`fmig-served`** ([`daemon`]) — the cache daemon. It owns a
//!   policy-driven sharded disk cache plus the *disk half* of the device
//!   model (MSCP dispatch, spindles, channel movers) and schedules every
//!   miss as a recall against the origin. Its robustness core wraps each
//!   recall in a deadline, a jittered-exponential-backoff retry budget
//!   ([`backoff`]), and an origin circuit breaker ([`breaker`]).
//! * **`fmig-origin`** ([`origin`], [`tape`]) — the "tape" server. It
//!   replays the tape half of the device model (drives, robot arms,
//!   operators, seeks, cartridge appends, unloads) with the same
//!   per-tier latency distributions the simulator uses, and its chaos
//!   mode materializes a `FaultScenarioId` into live outages, media read
//!   errors, and slow-drive windows.
//! * **`fmig-loadgen`** ([`loadgen`]) — replays a prepared trace at a
//!   configurable rate from N concurrent connections and reports a wait
//!   histogram compatible with the analysis pipeline.
//!
//! # Virtual time and the simulator-as-oracle contract
//!
//! The service runs the paper's *hardware* in virtual time: frames carry
//! virtual milliseconds on exactly the clock
//! [`fmig_sim::HierarchySimulator`] uses, and every stochastic stage
//! delay is a keyed draw from [`fmig_sim::noise`] — a pure function of
//! (seed, job identity, stage). A live replay of a trace therefore
//! reproduces the counter-noise simulator's cache decisions **exactly**
//! (same miss ratio, same eviction stream, same retry counters) and its
//! wait distributions up to event tie-ordering, which is what lets
//! `repro service-smoke` assert measured p99 against the simulator's
//! prediction within ±15% in both healthy and degraded-peak runs. See
//! `docs/architecture.md` ("Live service") for the topology and the
//! degradation order.

#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod daemon;
pub mod loadgen;
pub mod origin;
pub mod protocol;
pub mod smoke;
pub mod tape;

pub use protocol::{Frame, ProtoError, ServiceStats, PROTO_VERSION};
