//! `fmig-loadgen`: replays a prepared trace against the daemon from N
//! concurrent connections and reports a wait histogram compatible with
//! the analysis pipeline.
//!
//! References are dealt round-robin across connections but carry their
//! global trace index as the request id; the daemon re-sequences them,
//! so the replay is trace-order deterministic regardless of connection
//! count. The end-of-run barrier is a per-connection `StatsReq`: once a
//! worker sees its `Stats` reply, the daemon has admitted every request
//! that worker sent, and once *all* workers have, the whole trace is in
//! — only then does the controller issue `Drain`, which resolves every
//! still-pending reply and reports the writeback accounting.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Sender};
use std::thread;
use std::time::{Duration, Instant};

use fmig_core::{FaultScenarioId, SweepConfig};
use fmig_migrate::eval::{PreparedRef, TracePrep};
use fmig_sim::config::SimConfig;
use fmig_sim::event::{SimMs, MS};
use fmig_sim::fault::FAULT_HORIZON_SLACK_MS;
use fmig_sim::{LatencyHistogram, MssSimulator};
use fmig_workload::Workload;

use crate::protocol::{
    Frame, ProtoError, RejectReason, ServedKind, ServiceStats, NO_NEXT_USE, PROTO_VERSION,
};

/// One prepared sweep cell: the trace, cache capacity, and seeds the
/// live service and the simulator oracle must share.
#[derive(Debug, Clone)]
pub struct CellSetup {
    /// Chaos scenario (also the oracle's fault plan).
    pub scenario: FaultScenarioId,
    /// The prepared trace, sorted by time.
    pub refs: Vec<PreparedRef>,
    /// Staging-disk capacity in bytes for this cell.
    pub capacity: u64,
    /// The cell's fault seed — the oracle runs with exactly this seed.
    pub seed: u64,
    /// Fault-schedule span start (first reference), virtual ms.
    pub span_start_vms: SimMs,
    /// Fault-schedule span end (last reference + slack), virtual ms.
    pub span_end_vms: SimMs,
}

/// Prepares the tiny-preset sweep cell (preset 0, scale 0, cache 0,
/// policy 0 = stp1.4) for `scenario`, reproducing `prepare_shard`'s
/// seeds so [`fmig_sim::HierarchySimulator`] with
/// [`CellSetup::seed`] is the exact oracle for the live replay.
pub fn tiny_cell(scenario: FaultScenarioId) -> CellSetup {
    let config = SweepConfig::tiny();
    let preset = config.presets[0];
    let scale = config.scales[0];
    let workload_seed = config.workload_seed(0, 0);
    let sim_seed = config.sim_seed(0, 0);

    let workload = Workload::generate(&preset.workload(scale, workload_seed));
    let referenced_bytes: u64 = workload.files().iter().map(|f| f.size).sum();
    let mut prep = TracePrep::new();
    let sim = MssSimulator::new(SimConfig::default().with_seed(sim_seed));
    sim.run_streaming(workload.into_records(), |rec| prep.observe(&rec));
    let refs = prep.finish().refs().to_vec();

    let capacity = ((referenced_bytes as f64 * config.cache_fractions[0]) as u64).max(1);
    let fault_idx = config
        .fault_axis()
        .iter()
        .position(|s| *s == scenario)
        .unwrap_or(0);
    let seed = config.cell_fault_seed(0, 0, 0, 0, fault_idx, scenario);
    let span_start_vms = refs.first().map_or(0, |r| r.time * MS);
    let span_end_vms = refs.last().map_or(0, |r| r.time * MS) + FAULT_HORIZON_SLACK_MS;
    CellSetup {
        scenario,
        refs,
        capacity,
        seed,
        span_start_vms,
        span_end_vms,
    }
}

/// Load-generator run options.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon `host:port`.
    pub addr: String,
    /// Concurrent replay connections.
    pub connections: usize,
    /// Replay only the first N references (`None` = all).
    pub limit: Option<usize>,
    /// Issue `Drain` after the replay (required for every reply to
    /// resolve; a run without it may leave workers waiting forever on
    /// recalls that only complete at the drain horizon).
    pub drain: bool,
    /// Fetch final `Stats` from the daemon after the drain.
    pub stats: bool,
    /// Send `Shutdown` once all workers have joined.
    pub shutdown: bool,
}

/// The writeback accounting half of `DrainDone`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Write requests the daemon acknowledged.
    pub acked_writes: u64,
    /// Bytes behind those acknowledgements.
    pub acked_write_bytes: u64,
    /// Background flush jobs spawned.
    pub flush_jobs: u64,
    /// Bytes those jobs carried.
    pub flush_bytes: u64,
    /// Bytes the origin confirmed landed on tape. Equal to
    /// `flush_bytes` after a clean drain: no acked write lost its
    /// writeback.
    pub origin_flushed_bytes: u64,
}

/// Everything a replay produced, aggregated in trace order.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: u64,
    /// `Done` replies by kind: hits.
    pub hits: u64,
    /// Delayed hits (arrived while the recall was in flight).
    pub delayed_hits: u64,
    /// Recalls served from tape.
    pub recalls: u64,
    /// Acknowledged writes.
    pub writes: u64,
    /// Failed (abandoned-recall) replies.
    pub failed: u64,
    /// Requests shed while draining.
    pub rejected_draining: u64,
    /// Requests shed by the open circuit breaker.
    pub rejected_shedding: u64,
    /// Bytes behind the acknowledged writes.
    pub acked_write_bytes: u64,
    /// Wait histogram over every served read (hit + delayed + recall),
    /// directly comparable to the oracle's `read_wait()`.
    pub read_waits: LatencyHistogram,
    /// Wait histogram over acknowledged writes.
    pub write_waits: LatencyHistogram,
    /// The drain accounting, when `drain` was requested.
    pub drain: Option<DrainReport>,
    /// The daemon's final statistics, when `stats` was requested.
    pub stats: Option<ServiceStats>,
    /// Wall-clock seconds for the replay (spawn to join).
    pub wall_s: f64,
    /// Replay throughput in references per wall second.
    pub refs_per_sec: f64,
}

/// One reply, keyed by its global trace index for re-assembly.
enum Outcome {
    Served { wait_vms: i64, served: ServedKind },
    Rejected(RejectReason),
}

impl LoadgenReport {
    /// Deterministic flat-JSON accounting of the run. Wall-clock fields
    /// are deliberately excluded so two replays of the same trace
    /// compare byte-identical.
    pub fn accounting_json(&self) -> String {
        let mut out = String::from("{");
        let push_u = |out: &mut String, k: &str, v: u64| {
            if out.len() > 1 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        };
        let push_f = |out: &mut String, k: &str, v: f64| {
            if out.len() > 1 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v:.6}"));
        };
        push_u(&mut out, "sent", self.sent);
        push_u(&mut out, "hits", self.hits);
        push_u(&mut out, "delayed_hits", self.delayed_hits);
        push_u(&mut out, "recalls", self.recalls);
        push_u(&mut out, "writes", self.writes);
        push_u(&mut out, "failed", self.failed);
        push_u(&mut out, "rejected_draining", self.rejected_draining);
        push_u(&mut out, "rejected_shedding", self.rejected_shedding);
        push_u(&mut out, "acked_write_bytes", self.acked_write_bytes);
        push_u(&mut out, "read_wait_count", self.read_waits.count());
        push_f(&mut out, "read_wait_mean_s", self.read_waits.mean());
        push_f(&mut out, "read_wait_p50_s", self.read_waits.quantile(0.50));
        push_f(&mut out, "read_wait_p99_s", self.read_waits.quantile(0.99));
        push_u(&mut out, "write_wait_count", self.write_waits.count());
        push_f(&mut out, "write_wait_mean_s", self.write_waits.mean());
        let d = self.drain.unwrap_or_default();
        push_u(&mut out, "drain_acked_writes", d.acked_writes);
        push_u(&mut out, "drain_acked_write_bytes", d.acked_write_bytes);
        push_u(&mut out, "drain_flush_jobs", d.flush_jobs);
        push_u(&mut out, "drain_flush_bytes", d.flush_bytes);
        push_u(
            &mut out,
            "drain_origin_flushed_bytes",
            d.origin_flushed_bytes,
        );
        let s = self.stats.unwrap_or_default();
        push_u(&mut out, "svc_requests", s.requests);
        push_u(&mut out, "svc_read_hits", s.read_hits);
        push_u(&mut out, "svc_read_misses", s.read_misses);
        push_u(&mut out, "svc_read_hit_bytes", s.read_hit_bytes);
        push_u(&mut out, "svc_read_miss_bytes", s.read_miss_bytes);
        push_u(&mut out, "svc_writes", s.writes);
        push_u(&mut out, "svc_evictions", s.evictions);
        push_u(&mut out, "svc_evicted_bytes", s.evicted_bytes);
        push_u(&mut out, "svc_stall_bytes", s.stall_bytes);
        push_u(&mut out, "svc_purge_flush_bytes", s.purge_flush_bytes);
        push_u(&mut out, "svc_writeback_bytes", s.writeback_bytes);
        push_u(&mut out, "svc_fetch_retries", s.fetch_retries);
        push_u(&mut out, "svc_recalls", s.recalls);
        push_u(&mut out, "svc_delayed_hits", s.delayed_hits);
        push_u(&mut out, "svc_flush_jobs", s.flush_jobs);
        push_u(&mut out, "svc_flush_bytes", s.flush_bytes);
        push_u(&mut out, "svc_abandoned", s.abandoned);
        push_u(&mut out, "svc_outage_events", s.outage_events);
        {
            out.push(',');
            out.push_str(&format!("\"svc_outage_wait_vms\":{}", s.outage_wait_vms));
        }
        push_u(&mut out, "svc_slow_transfers", s.slow_transfers);
        out.push('}');
        out
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = e.to_string();
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(format!("daemon {addr} unreachable: {last}"))
}

fn hello(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    conn: u32,
) -> Result<(), String> {
    Frame::Hello {
        version: PROTO_VERSION,
        conn,
    }
    .write_to(writer)
    .and_then(|()| writer.flush().map_err(ProtoError::from))
    .map_err(|e| format!("hello: {e}"))?;
    match Frame::read_from(reader) {
        Ok(Frame::HelloAck { version }) if version == PROTO_VERSION => Ok(()),
        Ok(other) => Err(format!("bad hello reply: {other:?}")),
        Err(e) => Err(format!("hello reply: {e}")),
    }
}

/// One replay connection: writes its deal of the trace plus the
/// `StatsReq` barrier, then reads until every reply is in.
fn worker(
    addr: String,
    conn: u32,
    items: Vec<(u64, PreparedRef)>,
    barrier: Sender<()>,
) -> Result<Vec<(u64, Outcome)>, String> {
    let stream = connect(&addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = BufWriter::new(stream);
    hello(&mut reader, &mut writer, conn)?;

    for &(req, r) in &items {
        let frame = if r.write {
            Frame::WriteReq {
                req,
                file: r.id.index() as u64,
                size: r.size,
                time_s: r.time,
                next_use: r.next_use.unwrap_or(NO_NEXT_USE),
                device: r.device,
            }
        } else {
            Frame::ReadReq {
                req,
                file: r.id.index() as u64,
                size: r.size,
                time_s: r.time,
                next_use: r.next_use.unwrap_or(NO_NEXT_USE),
                device: r.device,
            }
        };
        frame
            .write_to(&mut writer)
            .map_err(|e| format!("request {req}: {e}"))?;
    }
    Frame::StatsReq
        .write_to(&mut writer)
        .and_then(|()| writer.flush().map_err(ProtoError::from))
        .map_err(|e| format!("barrier: {e}"))?;

    let mut outcomes = Vec::with_capacity(items.len());
    let mut seen_stats = false;
    while outcomes.len() < items.len() || !seen_stats {
        match Frame::read_from(&mut reader).map_err(|e| format!("conn {conn} read: {e}"))? {
            Frame::Done {
                req,
                wait_vms,
                served,
            } => outcomes.push((req, Outcome::Served { wait_vms, served })),
            Frame::Rejected { req, reason } => outcomes.push((req, Outcome::Rejected(reason))),
            Frame::Stats(_) => {
                seen_stats = true;
                // The daemon has admitted everything this connection
                // sent; tell the controller.
                let _ = barrier.send(());
            }
            other => return Err(format!("unexpected reply: {other:?}")),
        }
    }
    Ok(outcomes)
}

/// Replays `setup` against the daemon and aggregates the accounting.
pub fn run(cfg: &LoadgenConfig, setup: &CellSetup) -> Result<LoadgenReport, String> {
    let refs: &[PreparedRef] = match cfg.limit {
        Some(n) => &setup.refs[..n.min(setup.refs.len())],
        None => &setup.refs,
    };
    let n = cfg.connections.max(1);
    let start = Instant::now();

    let (btx, brx) = mpsc::channel();
    let mut handles = Vec::with_capacity(n);
    for k in 0..n {
        let items: Vec<(u64, PreparedRef)> = refs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == k)
            .map(|(i, r)| (i as u64, *r))
            .collect();
        let addr = cfg.addr.clone();
        let btx = btx.clone();
        handles.push(thread::spawn(move || worker(addr, k as u32, items, btx)));
    }
    drop(btx);
    for _ in 0..n {
        brx.recv()
            .map_err(|_| "a replay connection died before the barrier".to_string())?;
    }

    // All requests are admitted: drain, then read the final stats.
    let control = connect(&cfg.addr)?;
    control.set_nodelay(true).ok();
    let mut creader = BufReader::new(control.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut cwriter = BufWriter::new(control);
    hello(&mut creader, &mut cwriter, u32::MAX)?;
    let drain = if cfg.drain {
        Frame::Drain
            .write_to(&mut cwriter)
            .and_then(|()| cwriter.flush().map_err(ProtoError::from))
            .map_err(|e| format!("drain: {e}"))?;
        match Frame::read_from(&mut creader) {
            Ok(Frame::DrainDone {
                acked_writes,
                acked_write_bytes,
                flush_jobs,
                flush_bytes,
                origin_flushed_bytes,
            }) => Some(DrainReport {
                acked_writes,
                acked_write_bytes,
                flush_jobs,
                flush_bytes,
                origin_flushed_bytes,
            }),
            Ok(other) => return Err(format!("bad drain reply: {other:?}")),
            Err(e) => return Err(format!("drain reply: {e}")),
        }
    } else {
        None
    };
    let stats = if cfg.stats {
        Frame::StatsReq
            .write_to(&mut cwriter)
            .and_then(|()| cwriter.flush().map_err(ProtoError::from))
            .map_err(|e| format!("stats: {e}"))?;
        match Frame::read_from(&mut creader) {
            Ok(Frame::Stats(s)) => Some(s),
            Ok(other) => return Err(format!("bad stats reply: {other:?}")),
            Err(e) => return Err(format!("stats reply: {e}")),
        }
    } else {
        None
    };

    let mut outcomes: Vec<(u64, Outcome)> = Vec::with_capacity(refs.len());
    for h in handles {
        let part = h
            .join()
            .map_err(|_| "replay connection panicked".to_string())??;
        outcomes.extend(part);
    }
    let wall_s = start.elapsed().as_secs_f64();

    // Shut the daemon down only after every worker has its replies, so
    // process teardown can never race the last Done frames.
    if cfg.shutdown {
        Frame::Shutdown
            .write_to(&mut cwriter)
            .and_then(|()| cwriter.flush().map_err(ProtoError::from))
            .map_err(|e| format!("shutdown: {e}"))?;
    }

    outcomes.sort_by_key(|(req, _)| *req);
    let mut report = LoadgenReport {
        sent: refs.len() as u64,
        hits: 0,
        delayed_hits: 0,
        recalls: 0,
        writes: 0,
        failed: 0,
        rejected_draining: 0,
        rejected_shedding: 0,
        acked_write_bytes: 0,
        read_waits: LatencyHistogram::new(),
        write_waits: LatencyHistogram::new(),
        drain,
        stats,
        wall_s,
        refs_per_sec: if wall_s > 0.0 {
            refs.len() as f64 / wall_s
        } else {
            0.0
        },
    };
    for (req, outcome) in outcomes {
        match outcome {
            Outcome::Served { wait_vms, served } => {
                let wait_s = wait_vms as f64 / MS as f64;
                match served {
                    ServedKind::Hit => {
                        report.hits += 1;
                        report.read_waits.record(wait_s);
                    }
                    ServedKind::DelayedHit => {
                        report.delayed_hits += 1;
                        report.read_waits.record(wait_s);
                    }
                    ServedKind::Recall => {
                        report.recalls += 1;
                        report.read_waits.record(wait_s);
                    }
                    ServedKind::Write => {
                        report.writes += 1;
                        report.acked_write_bytes += refs[req as usize].size;
                        report.write_waits.record(wait_s);
                    }
                    ServedKind::Failed => report.failed += 1,
                }
            }
            Outcome::Rejected(RejectReason::Draining) => report.rejected_draining += 1,
            Outcome::Rejected(RejectReason::Shedding) => report.rejected_shedding += 1,
        }
    }
    Ok(report)
}
