//! `fmig-loadgen` — replays the tiny-preset cell against a running
//! daemon from N concurrent connections. Prints the deterministic flat
//! accounting JSON on stdout and `WALL` / `REFS_PER_SEC` on stderr (so
//! two runs of the same trace compare byte-identical on stdout).

use std::process::ExitCode;

use fmig_core::FaultScenarioId;
use fmig_serve::loadgen::{run, tiny_cell, LoadgenConfig};

const USAGE: &str = "usage: fmig-loadgen --addr HOST:PORT [--scenario NAME] \
                     [--connections N] [--limit N] [--drain] [--stats] [--shutdown]";

fn run_cli() -> Result<(), String> {
    let mut cfg = LoadgenConfig {
        addr: String::new(),
        connections: 1,
        limit: None,
        drain: false,
        stats: false,
        shutdown: false,
    };
    let mut scenario = FaultScenarioId::None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr")?,
            "--scenario" => {
                let v = val("--scenario")?;
                scenario = FaultScenarioId::parse(&v).ok_or(format!("unknown scenario `{v}`"))?;
            }
            "--connections" => {
                cfg.connections = val("--connections")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?
            }
            "--limit" => {
                cfg.limit = Some(
                    val("--limit")?
                        .parse()
                        .map_err(|e| format!("bad --limit: {e}"))?,
                )
            }
            "--drain" => cfg.drain = true,
            "--stats" => cfg.stats = true,
            "--shutdown" => cfg.shutdown = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if cfg.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    let setup = tiny_cell(scenario);
    let report = run(&cfg, &setup)?;
    println!("{}", report.accounting_json());
    eprintln!("WALL {:.6}", report.wall_s);
    eprintln!("REFS_PER_SEC {:.3}", report.refs_per_sec);
    Ok(())
}

fn main() -> ExitCode {
    match run_cli() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmig-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
