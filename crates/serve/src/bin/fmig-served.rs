//! `fmig-served` — the HSM cache daemon. Binds a loopback port, prints
//! `LISTENING <addr>`, connects to the origin, and serves clients until
//! one sends `Shutdown` (see `fmig_serve::daemon`).
//!
//! Defaults are simulator-compat (oracle-exact); `--deadline`,
//! `--retry-budget`, `--breaker`, and `--queue-bound` switch on the
//! live robustness core.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

use fmig_core::{FaultScenarioId, PolicyId};
use fmig_serve::backoff::RetryPolicy;
use fmig_serve::daemon::{serve, DaemonConfig};

const USAGE: &str = "usage: fmig-served --origin HOST:PORT --capacity BYTES \
                     [--addr HOST:PORT] [--policy NAME] [--seed N] [--scenario NAME] \
                     [--span-start VMS] [--span-end VMS] [--shards N] \
                     [--deadline VMS] [--retry-budget N] [--breaker THRESH:COOLDOWN_VMS] \
                     [--queue-bound N]";

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut origin: Option<String> = None;
    let mut capacity: Option<u64> = None;
    let mut policy = PolicyId::ALL[0];
    let mut seed = 0u64;
    let mut scenario = FaultScenarioId::None;
    let mut span_start = 0i64;
    let mut span_end = 0i64;
    let mut shards = 1usize;
    let mut deadline: Option<i64> = None;
    let mut retry_budget: Option<u32> = None;
    let mut breaker: Option<(u32, i64)> = None;
    let mut queue_bound: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => addr = val("--addr")?,
            "--origin" => origin = Some(val("--origin")?),
            "--capacity" => {
                capacity = Some(
                    val("--capacity")?
                        .parse()
                        .map_err(|e| format!("bad --capacity: {e}"))?,
                )
            }
            "--policy" => {
                let v = val("--policy")?;
                policy = PolicyId::parse(&v).ok_or(format!("unknown policy `{v}`"))?;
            }
            "--seed" => {
                seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--scenario" => {
                let v = val("--scenario")?;
                scenario = FaultScenarioId::parse(&v).ok_or(format!("unknown scenario `{v}`"))?;
            }
            "--span-start" => {
                span_start = val("--span-start")?
                    .parse()
                    .map_err(|e| format!("bad --span-start: {e}"))?
            }
            "--span-end" => {
                span_end = val("--span-end")?
                    .parse()
                    .map_err(|e| format!("bad --span-end: {e}"))?
            }
            "--shards" => {
                shards = val("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?
            }
            "--deadline" => {
                deadline = Some(
                    val("--deadline")?
                        .parse()
                        .map_err(|e| format!("bad --deadline: {e}"))?,
                )
            }
            "--retry-budget" => {
                retry_budget = Some(
                    val("--retry-budget")?
                        .parse()
                        .map_err(|e| format!("bad --retry-budget: {e}"))?,
                )
            }
            "--breaker" => {
                let v = val("--breaker")?;
                let (t, c) = v
                    .split_once(':')
                    .ok_or("--breaker wants THRESH:COOLDOWN_VMS")?;
                breaker = Some((
                    t.parse()
                        .map_err(|e| format!("bad breaker threshold: {e}"))?,
                    c.parse()
                        .map_err(|e| format!("bad breaker cooldown: {e}"))?,
                ));
            }
            "--queue-bound" => {
                queue_bound = Some(
                    val("--queue-bound")?
                        .parse()
                        .map_err(|e| format!("bad --queue-bound: {e}"))?,
                )
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let origin = origin.ok_or(format!("--origin is required\n{USAGE}"))?;
    let capacity = capacity.ok_or(format!("--capacity is required\n{USAGE}"))?;

    let mut cfg = DaemonConfig::compat(
        origin, capacity, policy, scenario, seed, span_start, span_end,
    );
    cfg.shards = shards;
    cfg.deadline_ms = deadline;
    if let Some(budget) = retry_budget {
        cfg.retry = RetryPolicy {
            max_attempts: budget,
            ..RetryPolicy::live(seed)
        };
    }
    if let Some((threshold, cooldown)) = breaker {
        cfg.breaker_threshold = threshold;
        cfg.breaker_cooldown_ms = cooldown;
    }
    if let Some(bound) = queue_bound {
        cfg.queue_bound = bound;
    }

    let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    println!("LISTENING {local}");
    std::io::stdout().flush().ok();
    let stats = serve(listener, cfg)?;
    eprintln!(
        "fmig-served: done — {} requests, {} recalls, {} delayed hits, {} retries, {} abandoned",
        stats.requests, stats.recalls, stats.delayed_hits, stats.fetch_retries, stats.abandoned
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmig-served: {e}");
            ExitCode::FAILURE
        }
    }
}
