//! `fmig-origin` — the "tape" server. Binds a loopback port, prints
//! `LISTENING <addr>`, and serves one daemon session: the tape half of
//! the device model with live chaos injection (see `fmig_serve::origin`).

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?,
            "-h" | "--help" => {
                println!("usage: fmig-origin [--addr HOST:PORT]");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    println!("LISTENING {local}");
    std::io::stdout().flush().ok();
    fmig_serve::origin::serve(listener)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmig-origin: {e}");
            ExitCode::FAILURE
        }
    }
}
