//! `fmig-origin`: the "tape" server.
//!
//! Serves one daemon session over TCP. The daemon drives virtual time
//! with [`Frame::Advance`] watermarks; between watermarks the origin
//! sits idle, so the tape physics in [`crate::tape`] runs exactly as far
//! as the daemon has observed its own clock. Chaos mode is a
//! [`FaultScenarioId`] materialized into the same outage / read-error /
//! slow-drive schedule the simulator would use for the handshake's seed
//! and span — live chaos injection that stays oracle-comparable.
//!
//! Protocol (daemon → origin): `OriginHello`, then any interleaving of
//! `Recall` / `Flush` enqueues and `Advance` watermarks; `Drain` asks
//! for the degraded-mode counter report; `Shutdown` (or simply closing
//! the connection) ends the session. Origin → daemon frames
//! (`RecallFirstByte`, `RecallDone`, `RecallFailed`, `FlushDone`) are
//! emitted only between an `Advance` and its `AdvanceDone`, except that
//! `RecallFailed` is a blocking round-trip: the origin waits for the
//! daemon's `RecallRetry` / `RecallAbandon` verdict before the engine
//! proceeds.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

use fmig_core::FaultScenarioId;
use fmig_sim::config::SimConfig;
use fmig_sim::fault::FaultSchedule;

use crate::protocol::{Frame, ProtoError, PROTO_VERSION};
use crate::tape::{OriginLink, RetryVerdict, TapeDes};

/// The engine's frame channel over the daemon connection. Emitted
/// frames ride the write buffer until the enclosing advance (or a
/// blocking failure round-trip) flushes them.
struct TcpLink<'a> {
    reader: &'a mut BufReader<TcpStream>,
    writer: &'a mut BufWriter<TcpStream>,
}

impl OriginLink for TcpLink<'_> {
    fn emit(&mut self, frame: Frame) -> Result<(), ProtoError> {
        frame.write_to(self.writer)
    }

    fn failed(
        &mut self,
        job: u64,
        attempts: u32,
        failed_vms: i64,
        drive_free_vms: i64,
    ) -> Result<RetryVerdict, ProtoError> {
        Frame::RecallFailed {
            job,
            attempt: attempts,
            failed_vms,
            drive_free_vms,
        }
        .write_to(self.writer)?;
        self.writer.flush()?;
        match Frame::read_from(self.reader)? {
            Frame::RecallRetry { job: j, rejoin_vms } if j == job => {
                Ok(RetryVerdict::Retry { rejoin_vms })
            }
            Frame::RecallAbandon { job: j } if j == job => Ok(RetryVerdict::Abandon),
            other => Err(ProtoError::Io(format!(
                "expected retry verdict for job {job}, got {other:?}"
            ))),
        }
    }
}

/// Accepts one daemon session and serves it to completion.
///
/// Returns `Ok` on an orderly end (a `Shutdown` frame or the daemon
/// closing the connection); protocol violations are errors.
pub fn serve(listener: TcpListener) -> Result<(), String> {
    let (stream, _peer) = listener.accept().map_err(|e| format!("accept: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = BufWriter::new(stream);

    // Handshake: the daemon tells us the seed, chaos scenario, and the
    // virtual-time span to materialize the fault schedule over.
    let (seed, scenario, span) = match Frame::read_from(&mut reader) {
        Ok(Frame::OriginHello {
            version,
            seed,
            scenario,
            span_start_vms,
            span_end_vms,
        }) => {
            if version != PROTO_VERSION {
                return Err(format!(
                    "protocol version mismatch: daemon {version}, origin {PROTO_VERSION}"
                ));
            }
            let scenario = *FaultScenarioId::ALL
                .get(scenario as usize)
                .ok_or_else(|| format!("unknown fault scenario index {scenario}"))?;
            (seed, scenario, (span_start_vms, span_end_vms))
        }
        Ok(other) => return Err(format!("expected OriginHello, got {other:?}")),
        Err(e) => return Err(format!("handshake: {e}")),
    };
    Frame::OriginHelloAck {
        version: PROTO_VERSION,
    }
    .write_to(&mut writer)
    .and_then(|()| writer.flush().map_err(ProtoError::from))
    .map_err(|e| format!("handshake ack: {e}"))?;

    let cfg = SimConfig::default().with_seed(seed);
    let schedule = FaultSchedule::materialize(&scenario.plan(), seed, span.0, span.1);
    let mut des = TapeDes::new(cfg, schedule);

    loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(f) => f,
            // The daemon closing the socket is an orderly end.
            Err(ProtoError::Io(_)) | Err(ProtoError::Truncated) => return Ok(()),
            Err(e) => return Err(format!("read: {e}")),
        };
        match frame {
            Frame::Recall {
                job,
                file: _,
                seq,
                size,
                tier,
                enter_vms,
                deadline_vms,
            } => des.enqueue_recall(job, seq, size, tier, enter_vms, deadline_vms),
            Frame::Flush {
                job,
                file: _,
                seq,
                size,
                tier,
                ready_vms,
            } => des.enqueue_flush(job, seq, size, tier, ready_vms),
            Frame::Advance { until_vms } => {
                let mut link = TcpLink {
                    reader: &mut reader,
                    writer: &mut writer,
                };
                des.advance(until_vms, &mut link)
                    .map_err(|e| format!("advance to {until_vms}: {e}"))?;
                Frame::AdvanceDone { now_vms: until_vms }
                    .write_to(&mut writer)
                    .and_then(|()| writer.flush().map_err(ProtoError::from))
                    .map_err(|e| format!("advance ack: {e}"))?;
            }
            Frame::Drain => {
                des.counters()
                    .drain_frame()
                    .write_to(&mut writer)
                    .and_then(|()| writer.flush().map_err(ProtoError::from))
                    .map_err(|e| format!("drain report: {e}"))?;
            }
            Frame::Shutdown => return Ok(()),
            other => return Err(format!("unexpected frame from daemon: {other:?}")),
        }
    }
}
