//! Origin circuit breaker: sheds recall load when the origin is failing
//! persistently instead of queueing unboundedly behind it.
//!
//! Classic three-state breaker over *virtual* time (the daemon's clock):
//!
//! * **Closed** — recalls flow; consecutive failures are counted.
//! * **Open** — tripped after `threshold` consecutive failures. While
//!   open the daemon serves resident data normally but bounds the
//!   recall queue: new misses beyond the bound are shed with a
//!   `Rejected(Shedding)` reply instead of joining a queue the origin
//!   cannot drain (the degradation order documented in
//!   `docs/architecture.md`).
//! * **Half-open** — after `cooldown_ms` the next recall probes the
//!   origin: success closes the breaker, failure re-opens it.
//!
//! In simulator-compat runs the breaker observes but never trips
//! (`threshold == 0` disables it), keeping live replays oracle-exact.

use fmig_sim::event::SimMs;

/// Breaker state at a given instant (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Failures below threshold; recalls flow freely.
    Closed,
    /// Tripped: recall admission is queue-bounded / shedding.
    Open,
    /// Cooldown elapsed: the next recall is a probe.
    HalfOpen,
}

/// Consecutive-failure circuit breaker over virtual time.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    /// Consecutive failures that trip the breaker; `0` disables it.
    threshold: u32,
    /// Virtual ms the breaker stays open before probing.
    cooldown_ms: SimMs,
    consecutive_failures: u32,
    /// `Some(t)` while tripped, holding the trip instant.
    opened_at: Option<SimMs>,
    trips: u64,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// probing again `cooldown_ms` later.
    pub fn new(threshold: u32, cooldown_ms: SimMs) -> Self {
        CircuitBreaker {
            threshold,
            cooldown_ms,
            consecutive_failures: 0,
            opened_at: None,
            trips: 0,
        }
    }

    /// An observe-only breaker that never trips (simulator-compat mode).
    pub fn disabled() -> Self {
        Self::new(0, 0)
    }

    /// The state at virtual time `now`.
    pub fn state(&self, now: SimMs) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(t) if now >= t + self.cooldown_ms => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Whether recall admission is currently degraded (open or probing).
    pub fn is_open(&self, now: SimMs) -> bool {
        self.state(now) != BreakerState::Closed
    }

    /// Records a recall failure at virtual time `now`.
    pub fn record_failure(&mut self, now: SimMs) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let tripped = self.threshold > 0 && self.consecutive_failures >= self.threshold;
        // A failed half-open probe re-opens from the probe instant.
        let probe_failed = self.opened_at.is_some() && self.state(now) == BreakerState::HalfOpen;
        if (tripped && self.opened_at.is_none()) || probe_failed {
            self.opened_at = Some(now);
            self.trips += 1;
        }
    }

    /// Records a recall success: closes the breaker and resets the
    /// failure streak.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// How many times the breaker has tripped (including re-opens).
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// The shed decision of the degraded mode: a non-resident read is shed
/// when the breaker is open and the bounded recall queue is full.
/// Resident reads (and all writes) are always served — that is the
/// "serve-stale" half of the degradation.
pub fn should_shed(
    resident: bool,
    breaker_open: bool,
    inflight_recalls: usize,
    bound: usize,
) -> bool {
    !resident && breaker_open && inflight_recalls >= bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(3, 1_000);
        b.record_failure(10);
        b.record_failure(20);
        assert_eq!(b.state(20), BreakerState::Closed);
        b.record_failure(30);
        assert_eq!(b.state(30), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.state(1_029), BreakerState::Open);
        assert_eq!(b.state(1_030), BreakerState::HalfOpen);
        // Failed probe re-opens from the probe instant.
        b.record_failure(1_050);
        assert_eq!(b.state(1_051), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Successful probe closes and resets the streak.
        b.record_success();
        assert_eq!(b.state(9_999), BreakerState::Closed);
        b.record_failure(10_000);
        b.record_failure(10_001);
        assert_eq!(b.state(10_001), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::disabled();
        for t in 0..100 {
            b.record_failure(t);
        }
        assert_eq!(b.state(100), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn shedding_requires_open_breaker_full_queue_and_a_miss() {
        assert!(should_shed(false, true, 8, 8));
        assert!(
            !should_shed(true, true, 8, 8),
            "resident reads always serve"
        );
        assert!(
            !should_shed(false, false, 8, 8),
            "closed breaker never sheds"
        );
        assert!(!should_shed(false, true, 7, 8), "queue below bound absorbs");
    }
}
