//! The origin's tape-half discrete-event engine.
//!
//! This is the drive / robot-or-operator / seek / tape-mover /
//! cartridge-append half of `fmig_sim::hierarchy`'s closed-loop engine,
//! extracted so a separate *process* can run it: the daemon keeps the
//! cache and the disk half, the origin keeps the tape physics, and the
//! two stay causally consistent through the watermark protocol
//! ([`crate::protocol::Frame::Advance`]).
//!
//! Every stage timing is the keyed counter-noise draw the simulator
//! uses — a pure function of `(seed, job identity, stage)` via
//! [`fmig_sim::noise`] — and the fault schedule's outage windows, media
//! read errors, and slow-drive factors come from the same
//! [`FaultSchedule`] materialization. A live run therefore replays the
//! oracle's tape physics event for event; the only permitted divergence
//! is tie-ordering of events that land on the same virtual millisecond,
//! which the smoke test's ±15% p99 tolerance absorbs. Any physics
//! change in `fmig_sim::hierarchy`'s tape path must be mirrored here
//! (and vice versa).
//!
//! Failures block: when a recall attempt fails (media read error, or
//! first byte past its deadline), [`OriginLink::failed`] synchronously
//! asks the daemon for a [`RetryVerdict`] — the daemon owns the backoff
//! policy and the retry budget; the origin owns the physics.

use fmig_sim::config::SimConfig;
use fmig_sim::event::{EventQueue, SimMs, MS};
use fmig_sim::fault::{FaultSchedule, FaultTarget};
use fmig_sim::noise;
use fmig_sim::Pool;
use fmig_trace::DeviceClass;

use crate::protocol::{Frame, ProtoError, NO_DEADLINE};

/// The daemon's verdict on a failed recall attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryVerdict {
    /// Rejoin the drive queue at `rejoin_vms` (drive-free time plus the
    /// daemon's backoff).
    Retry {
        /// Rejoin virtual time.
        rejoin_vms: SimMs,
    },
    /// Budget or deadline exhausted: drop the job.
    Abandon,
}

/// The engine's channel back to the daemon.
pub trait OriginLink {
    /// Emit an event frame (no reply expected; may be buffered until
    /// the current advance completes).
    fn emit(&mut self, frame: Frame) -> Result<(), ProtoError>;

    /// Report a failed recall attempt and block for the daemon's
    /// verdict. `attempts` counts failed attempts including this one.
    fn failed(
        &mut self,
        job: u64,
        attempts: u32,
        failed_vms: SimMs,
        drive_free_vms: SimMs,
    ) -> Result<RetryVerdict, ProtoError>;
}

/// Degraded-mode accounting, reported in
/// [`Frame::OriginDrainDone`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OriginCounters {
    /// Outage windows that actually parked a unit.
    pub outage_events: u64,
    /// Queue wait attributed to outage overlap, seconds (the engine's
    /// `DegradedOutcome::outage_wait_s` accumulation).
    pub outage_wait_s: f64,
    /// Transfers run inside a slow-drive window.
    pub slow_transfers: u64,
    /// Bytes landed by completed flush jobs.
    pub flushed_bytes: u64,
    /// Recalls completed successfully.
    pub recalls_completed: u64,
    /// Recall attempts that failed (read error or deadline).
    pub read_failures: u64,
}

impl OriginCounters {
    /// The drain-report frame for these counters.
    pub fn drain_frame(&self) -> Frame {
        Frame::OriginDrainDone {
            outage_events: self.outage_events,
            outage_wait_vms: (self.outage_wait_s * MS as f64) as i64,
            slow_transfers: self.slow_transfers,
            flushed_bytes: self.flushed_bytes,
            recalls_completed: self.recalls_completed,
            read_failures: self.read_failures,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum TEv {
    /// A job (re)enters its tape-drive queue: initial recall entry,
    /// flush-ready, or post-backoff retry.
    Join(usize),
    MountDone(usize),
    SeekDone(usize),
    TransferDone(usize),
    DriveFree(usize),
    OutageStart(usize),
    OutageEnd(usize),
}

#[derive(Debug, Clone, Copy)]
struct TJob {
    kind: TKind,
    device: DeviceClass,
    write: bool,
    size: u64,
    queued_ms: SimMs,
}

#[derive(Debug, Clone, Copy)]
enum TKind {
    Recall {
        /// Daemon-assigned wire job id.
        id: u64,
        /// Arrival-order recall sequence (noise + fault identity).
        seq: u64,
        /// Failed attempts so far.
        attempts: u32,
        /// This attempt was chosen to fail; surfaces at transfer end.
        failing: bool,
        /// First-byte deadline ([`NO_DEADLINE`] disables).
        deadline_vms: SimMs,
    },
    Flush {
        id: u64,
        seq: u64,
    },
    OutageHold {
        target: FaultTarget,
        end_ms: SimMs,
    },
}

/// The tape-half engine. Mirrors `fmig_sim::hierarchy::Engine`'s tape
/// path stage for stage; see the module docs for the contract.
pub struct TapeDes {
    cfg: SimConfig,
    schedule: FaultSchedule,
    active: bool,
    queue: EventQueue<TEv>,
    jobs: Vec<TJob>,
    silo: Pool,
    manual: Pool,
    robot: Pool,
    operators: Pool,
    tape_movers: Pool,
    /// Bytes left on the mounted append cartridge `[silo, manual]`.
    cart_remaining: [u64; 2],
    counters: OriginCounters,
}

impl TapeDes {
    /// Builds the engine and schedules the fault plan's outage windows.
    pub fn new(cfg: SimConfig, schedule: FaultSchedule) -> Self {
        let mut des = TapeDes {
            active: schedule.is_active(),
            queue: EventQueue::new(),
            jobs: Vec::new(),
            silo: Pool::new(cfg.silo_drives),
            manual: Pool::new(cfg.manual_drives),
            robot: Pool::new(cfg.robot_arms),
            operators: Pool::new(cfg.operators),
            tape_movers: Pool::new(cfg.tape_movers),
            cart_remaining: [0, 0],
            counters: OriginCounters::default(),
            schedule,
            cfg,
        };
        for w in 0..des.schedule.windows().len() {
            des.queue
                .push(des.schedule.windows()[w].start_ms, TEv::OutageStart(w));
        }
        des
    }

    /// Accounting so far.
    pub fn counters(&self) -> OriginCounters {
        self.counters
    }

    /// Events still queued (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// A recall enters its drive queue at `enter_vms`.
    pub fn enqueue_recall(
        &mut self,
        id: u64,
        seq: u64,
        size: u64,
        tier: DeviceClass,
        enter_vms: SimMs,
        deadline_vms: SimMs,
    ) {
        let j = self.jobs.len();
        self.jobs.push(TJob {
            kind: TKind::Recall {
                id,
                seq,
                attempts: 0,
                failing: false,
                deadline_vms,
            },
            device: tier,
            write: false,
            size,
            queued_ms: enter_vms,
        });
        self.queue.push(enter_vms, TEv::Join(j));
    }

    /// A flush becomes ready to queue at `ready_vms`.
    pub fn enqueue_flush(
        &mut self,
        id: u64,
        seq: u64,
        size: u64,
        tier: DeviceClass,
        ready_vms: SimMs,
    ) {
        let j = self.jobs.len();
        self.jobs.push(TJob {
            kind: TKind::Flush { id, seq },
            device: tier,
            write: true,
            size,
            queued_ms: ready_vms,
        });
        self.queue.push(ready_vms, TEv::Join(j));
    }

    /// Processes every event at or before `until_vms`, emitting frames
    /// through `link` as jobs progress.
    pub fn advance(
        &mut self,
        until_vms: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        while self.queue.peek_time().is_some_and(|t| t <= until_vms) {
            let (now, ev) = self.queue.pop().expect("peeked event");
            self.handle(now, ev, link)?;
        }
        Ok(())
    }

    fn handle(
        &mut self,
        now: SimMs,
        ev: TEv,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        match ev {
            TEv::Join(j) => {
                self.jobs[j].queued_ms = now;
                self.join_tape_queue(j, now, link)
            }
            TEv::MountDone(j) => self.mount_done(j, now, link),
            TEv::SeekDone(j) => self.seek_done(j, now, link),
            TEv::TransferDone(j) => self.transfer_done(j, now, link),
            TEv::DriveFree(j) => self.drive_free(j, now, link),
            TEv::OutageStart(w) => self.outage_start(w, now, link),
            TEv::OutageEnd(j) => self.outage_release(j, now, link),
        }
    }

    /// A fault window opens: contend for one unit of the target pool
    /// like any other job (a busy unit "fails" as it comes free).
    fn outage_start(
        &mut self,
        w: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let window = self.schedule.windows()[w];
        let j = self.jobs.len();
        self.jobs.push(TJob {
            kind: TKind::OutageHold {
                target: window.target,
                end_ms: window.end_ms,
            },
            device: window.target.tier(),
            write: false,
            size: 0,
            queued_ms: now,
        });
        let granted = match window.target {
            FaultTarget::SiloDrive => self.silo.acquire(j, now),
            FaultTarget::ManualDrive => self.manual.acquire(j, now),
            FaultTarget::RobotArm => self.robot.acquire(j, now),
            FaultTarget::Operator => self.operators.acquire(j, now),
        };
        if granted {
            self.hold_granted(j, now, link)?;
        }
        Ok(())
    }

    /// A hold job got its unit — at window start or later, after
    /// queueing behind busy units. A window that already expired while
    /// queued hands the unit straight back.
    fn hold_granted(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let TKind::OutageHold { end_ms, .. } = self.jobs[j].kind else {
            unreachable!("hold grant on a non-hold job");
        };
        if now >= end_ms {
            return self.outage_release(j, now, link);
        }
        self.counters.outage_events += 1;
        self.queue.push(end_ms, TEv::OutageEnd(j));
        Ok(())
    }

    fn outage_release(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let TKind::OutageHold { target, .. } = self.jobs[j].kind else {
            unreachable!("outage release on a non-hold job");
        };
        match target {
            FaultTarget::SiloDrive => {
                if let Some(n) = self.silo.release(now) {
                    self.drive_granted(n, now, link)?;
                }
            }
            FaultTarget::ManualDrive => {
                if let Some(n) = self.manual.release(now) {
                    self.drive_granted(n, now, link)?;
                }
            }
            FaultTarget::RobotArm => {
                if let Some(n) = self.robot.release(now) {
                    self.mount_started(n, now, link)?;
                }
            }
            FaultTarget::Operator => {
                if let Some(n) = self.operators.release(now) {
                    self.mount_started(n, now, link)?;
                }
            }
        }
        Ok(())
    }

    fn join_tape_queue(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let granted = match self.jobs[j].device {
            DeviceClass::TapeSilo => self.silo.acquire(j, now),
            DeviceClass::TapeManual => self.manual.acquire(j, now),
            DeviceClass::Disk => unreachable!("disk jobs never reach the origin"),
        };
        if granted {
            self.drive_granted(j, now, link)?;
        }
        Ok(())
    }

    fn drive_granted(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let job = self.jobs[j];
        if let TKind::OutageHold { .. } = job.kind {
            return self.hold_granted(j, now, link);
        }
        self.attribute_outage_wait(job.device, job.queued_ms, now);
        if job.write {
            let slot = cart_slot(job.device);
            if self.cart_remaining[slot] >= job.size {
                // Append to the mounted cartridge: no mount, no seek.
                if self.tape_movers.acquire(j, now) {
                    self.mover_granted(j, now, link)?;
                }
                return Ok(());
            }
        }
        // Reads mount the file's cartridge; writes mount a fresh append
        // cartridge when the current one is full. Re-stamp the queue
        // entry: the mounter queue is a separate attribution interval.
        self.jobs[j].queued_ms = now;
        let granted = match job.device {
            DeviceClass::TapeSilo => self.robot.acquire(j, now),
            DeviceClass::TapeManual => self.operators.acquire(j, now),
            DeviceClass::Disk => unreachable!(),
        };
        if granted {
            self.mount_started(j, now, link)?;
        }
        Ok(())
    }

    fn mount_started(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let job = self.jobs[j];
        if let TKind::OutageHold { .. } = job.kind {
            return self.hold_granted(j, now, link);
        }
        self.attribute_outage_wait(job.device, job.queued_ms, now);
        let d = match job.device {
            DeviceClass::TapeSilo => noise::jitter_ms(
                self.cfg.seed,
                self.noise_key(j, noise::STAGE_MOUNT),
                self.cfg.robot_mount_s,
                0.2,
            ),
            DeviceClass::TapeManual => noise::lognormal_ms(
                self.cfg.seed,
                self.noise_key(j, noise::STAGE_MOUNT),
                self.cfg.operator_mount_median_s,
                self.cfg.operator_mount_sigma,
            ),
            DeviceClass::Disk => unreachable!(),
        };
        self.queue.push(now + d, TEv::MountDone(j));
        Ok(())
    }

    fn attribute_outage_wait(&mut self, tier: DeviceClass, queued_ms: SimMs, now: SimMs) {
        if self.active {
            let overlap = self.schedule.outage_overlap_ms(tier, queued_ms, now);
            if overlap > 0 {
                self.counters.outage_wait_s += overlap as f64 / MS as f64;
            }
        }
    }

    fn mount_done(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let job = self.jobs[j];
        let next = match job.device {
            DeviceClass::TapeSilo => self.robot.release(now),
            DeviceClass::TapeManual => self.operators.release(now),
            DeviceClass::Disk => unreachable!(),
        };
        if let Some(n) = next {
            self.mount_started(n, now, link)?;
        }
        if job.write {
            // Fresh append cartridge: position to start of tape.
            self.cart_remaining[cart_slot(job.device)] = self.cfg.cartridge_bytes;
            let d = noise::jitter_ms(
                self.cfg.seed,
                self.noise_key(j, noise::STAGE_SEEK),
                3.0,
                0.3,
            );
            self.queue.push(now + d, TEv::SeekDone(j));
        } else {
            let seek_s = noise::range(
                self.cfg.seed,
                self.noise_key(j, noise::STAGE_SEEK),
                self.cfg.tape_seek_min_s,
                self.cfg.tape_seek_max_s,
            );
            self.queue
                .push(now + (seek_s * MS as f64) as SimMs, TEv::SeekDone(j));
        }
        Ok(())
    }

    fn seek_done(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        if self.tape_movers.acquire(j, now) {
            self.mover_granted(j, now, link)?;
        }
        Ok(())
    }

    /// The transfer begins — the job's first byte, unless this recall
    /// attempt is fated to fail (media read error, or first byte past
    /// its deadline), in which case nobody is served and the failure
    /// surfaces at transfer end, exactly like the engine.
    fn mover_granted(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let job = self.jobs[j];
        let first_byte = now;
        match job.kind {
            TKind::Recall {
                id,
                seq,
                attempts,
                deadline_vms,
                ..
            } => {
                let fails = self.schedule.read_fails(seq, attempts)
                    || (deadline_vms != NO_DEADLINE && first_byte > deadline_vms);
                if fails {
                    let TKind::Recall { failing, .. } = &mut self.jobs[j].kind else {
                        unreachable!("job kind cannot change");
                    };
                    *failing = true;
                } else {
                    link.emit(Frame::RecallFirstByte {
                        job: id,
                        fb_vms: first_byte,
                    })?;
                }
            }
            TKind::Flush { .. } => {}
            TKind::OutageHold { .. } => unreachable!("holds never reach a mover"),
        }
        let factor = self.schedule.rate_factor_at(job.device, first_byte);
        if factor < 1.0 && self.active {
            self.counters.slow_transfers += 1;
        }
        let rate = self.rate_of(job.device) * factor;
        let jitter = 1.0
            + noise::range(
                self.cfg.seed,
                self.noise_key(j, noise::STAGE_RATE),
                -self.cfg.rate_jitter,
                self.cfg.rate_jitter,
            );
        let xfer_ms = (job.size as f64 / (rate * jitter) * 1000.0) as SimMs;
        self.queue
            .push(first_byte + xfer_ms.max(1), TEv::TransferDone(j));
        if job.write {
            let slot = cart_slot(job.device);
            self.cart_remaining[slot] = self.cart_remaining[slot].saturating_sub(job.size);
        }
        Ok(())
    }

    fn transfer_done(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let job = self.jobs[j];
        if let Some(n) = self.tape_movers.release(now) {
            self.mover_granted(n, now, link)?;
        }
        let unload = (self.cfg.tape_unload_s * MS as f64) as SimMs;
        match job.kind {
            TKind::Recall { id, failing, .. } => {
                if failing {
                    self.counters.read_failures += 1;
                    let TKind::Recall {
                        failing, attempts, ..
                    } = &mut self.jobs[j].kind
                    else {
                        unreachable!("job kind cannot change");
                    };
                    *failing = false;
                    *attempts += 1;
                    let attempts_now = *attempts;
                    // Drive unloads regardless of the verdict (the
                    // engine pushes DriveFree before RetryReady).
                    self.queue.push(now + unload, TEv::DriveFree(j));
                    match link.failed(id, attempts_now, now, now + unload)? {
                        RetryVerdict::Retry { rejoin_vms } => {
                            self.queue.push(rejoin_vms.max(now + unload), TEv::Join(j));
                        }
                        RetryVerdict::Abandon => {}
                    }
                } else {
                    self.counters.recalls_completed += 1;
                    link.emit(Frame::RecallDone {
                        job: id,
                        done_vms: now,
                    })?;
                    self.queue.push(now + unload, TEv::DriveFree(j));
                }
            }
            TKind::Flush { id, .. } => {
                self.counters.flushed_bytes += job.size;
                link.emit(Frame::FlushDone {
                    job: id,
                    done_vms: now,
                    bytes: job.size,
                })?;
                self.queue.push(now + unload, TEv::DriveFree(j));
            }
            TKind::OutageHold { .. } => unreachable!("holds never transfer"),
        }
        Ok(())
    }

    fn drive_free(
        &mut self,
        j: usize,
        now: SimMs,
        link: &mut impl OriginLink,
    ) -> Result<(), ProtoError> {
        let next = match self.jobs[j].device {
            DeviceClass::TapeSilo => self.silo.release(now),
            DeviceClass::TapeManual => self.manual.release(now),
            DeviceClass::Disk => unreachable!("disks have no unload"),
        };
        if let Some(n) = next {
            self.drive_granted(n, now, link)?;
        }
        Ok(())
    }

    fn rate_of(&self, device: DeviceClass) -> f64 {
        match device {
            DeviceClass::Disk => self.cfg.disk_rate,
            DeviceClass::TapeSilo => self.cfg.silo_rate,
            DeviceClass::TapeManual => self.cfg.manual_rate,
        }
    }

    fn noise_key(&self, j: usize, stage: u64) -> u64 {
        match self.jobs[j].kind {
            TKind::Recall { seq, attempts, .. } => noise::recall_key(seq, attempts, stage),
            TKind::Flush { seq, .. } => noise::flush_key(seq, stage),
            TKind::OutageHold { .. } => unreachable!("holds draw no noise"),
        }
    }
}

fn cart_slot(device: DeviceClass) -> usize {
    match device {
        DeviceClass::TapeSilo => 0,
        DeviceClass::TapeManual => 1,
        DeviceClass::Disk => unreachable!("disks have no cartridges"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_sim::FaultPlan;

    struct MockLink {
        frames: Vec<Frame>,
        verdicts: Vec<RetryVerdict>,
        failures: Vec<(u64, u32, SimMs, SimMs)>,
    }

    impl MockLink {
        fn new(verdicts: Vec<RetryVerdict>) -> Self {
            MockLink {
                frames: Vec::new(),
                verdicts,
                failures: Vec::new(),
            }
        }
    }

    impl OriginLink for MockLink {
        fn emit(&mut self, frame: Frame) -> Result<(), ProtoError> {
            self.frames.push(frame);
            Ok(())
        }

        fn failed(
            &mut self,
            job: u64,
            attempts: u32,
            failed_vms: SimMs,
            drive_free_vms: SimMs,
        ) -> Result<RetryVerdict, ProtoError> {
            self.failures
                .push((job, attempts, failed_vms, drive_free_vms));
            Ok(self.verdicts.remove(0))
        }
    }

    #[test]
    fn a_silo_recall_reaches_first_byte_then_completes() {
        let cfg = SimConfig::default().with_seed(7);
        let mut des = TapeDes::new(cfg, FaultSchedule::none());
        let mut link = MockLink::new(vec![]);
        des.enqueue_recall(10, 0, 50_000_000, DeviceClass::TapeSilo, 1_000, NO_DEADLINE);
        des.advance(SimMs::MAX / 4, &mut link).unwrap();
        assert_eq!(link.frames.len(), 2, "frames: {:?}", link.frames);
        let (fb_vms, done_vms) = match (&link.frames[0], &link.frames[1]) {
            (
                Frame::RecallFirstByte { job: 10, fb_vms },
                Frame::RecallDone { job: 10, done_vms },
            ) => (*fb_vms, *done_vms),
            other => panic!("unexpected frame sequence: {other:?}"),
        };
        // Mount (~7 s) plus seek (10–90 s) precede the first byte; the
        // ~20 s transfer at ~2.4 MB/s precedes completion.
        assert!(fb_vms >= 1_000 + 7_000, "first byte too early: {fb_vms}");
        assert!(done_vms > fb_vms + 10_000);
        assert_eq!(des.counters().recalls_completed, 1);
        assert_eq!(des.pending(), 0, "drive-free must drain");
    }

    #[test]
    fn appends_to_a_mounted_cartridge_skip_the_mount() {
        let cfg = SimConfig::default().with_seed(7);
        let mut des = TapeDes::new(cfg, FaultSchedule::none());
        let mut link = MockLink::new(vec![]);
        des.enqueue_flush(1, 0, 1_000_000, DeviceClass::TapeSilo, 0);
        des.advance(SimMs::MAX / 4, &mut link).unwrap();
        let Frame::FlushDone {
            done_vms: first, ..
        } = link.frames[0]
        else {
            panic!("expected FlushDone");
        };
        // Second flush starts after the first fully unloaded, on a
        // cartridge that is already mounted: no mount, no seek.
        let start = first + 10_000;
        des.enqueue_flush(2, 1, 1_000_000, DeviceClass::TapeSilo, start);
        des.advance(SimMs::MAX / 4, &mut link).unwrap();
        let Frame::FlushDone {
            done_vms: second, ..
        } = link.frames[1]
        else {
            panic!("expected second FlushDone");
        };
        let first_latency = first;
        let second_latency = second - start;
        assert!(
            second_latency < first_latency / 2,
            "append should skip mount+seek: first {first_latency} ms, second {second_latency} ms"
        );
        assert_eq!(des.counters().flushed_bytes, 2_000_000);
    }

    #[test]
    fn failed_attempts_ask_the_daemon_and_honor_the_verdict() {
        // read_error_prob 1.0 with one allowed retry: attempt 0 always
        // fails, attempt 1 always succeeds.
        let plan = FaultPlan {
            outages: vec![],
            read_error_prob: 1.0,
            max_read_retries: 1,
            retry_backoff_s: 45.0,
            slow_drive: None,
        };
        let schedule = FaultSchedule::materialize(&plan, 7, 0, 1 << 40);
        let cfg = SimConfig::default().with_seed(7);

        // Verdict: retry → the recall eventually completes.
        let mut des = TapeDes::new(cfg.clone(), schedule.clone());
        let mut link = MockLink::new(vec![RetryVerdict::Retry { rejoin_vms: 0 }]);
        des.enqueue_recall(5, 0, 1_000_000, DeviceClass::TapeSilo, 0, NO_DEADLINE);
        des.advance(SimMs::MAX / 4, &mut link).unwrap();
        assert_eq!(link.failures.len(), 1);
        let (job, attempts, failed_vms, drive_free_vms) = link.failures[0];
        assert_eq!((job, attempts), (5, 1));
        assert_eq!(drive_free_vms - failed_vms, 5_000, "unload precedes rejoin");
        assert_eq!(des.counters().read_failures, 1);
        assert_eq!(des.counters().recalls_completed, 1);
        assert!(matches!(
            link.frames.last(),
            Some(Frame::RecallDone { job: 5, .. })
        ));

        // Verdict: abandon → no further frames, drive still freed.
        let mut des = TapeDes::new(cfg, schedule);
        let mut link = MockLink::new(vec![RetryVerdict::Abandon]);
        des.enqueue_recall(6, 0, 1_000_000, DeviceClass::TapeSilo, 0, NO_DEADLINE);
        des.advance(SimMs::MAX / 4, &mut link).unwrap();
        assert_eq!(des.counters().recalls_completed, 0);
        assert!(link.frames.is_empty());
        assert_eq!(des.pending(), 0);
        assert_eq!(des.silo.in_use(), 0, "abandon must still free the drive");
    }

    #[test]
    fn a_deadline_in_the_past_fails_the_attempt() {
        let cfg = SimConfig::default().with_seed(7);
        let mut des = TapeDes::new(cfg, FaultSchedule::none());
        // Deadline 1 ms after entry: mount+seek always overshoot it.
        let mut link = MockLink::new(vec![RetryVerdict::Abandon]);
        des.enqueue_recall(9, 0, 1_000_000, DeviceClass::TapeSilo, 0, 1);
        des.advance(SimMs::MAX / 4, &mut link).unwrap();
        assert_eq!(link.failures.len(), 1);
        assert_eq!(des.counters().read_failures, 1);
        assert_eq!(des.counters().recalls_completed, 0);
    }
}
