//! Graceful shutdown and restart: draining the daemon mid-replay loses
//! no acked write's writeback, rejects late arrivals cleanly, and a
//! restarted (cold-cache) daemon replaying the same deterministic
//! single-connection prefix produces byte-identical loadgen accounting.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

use fmig_core::{FaultScenarioId, SweepConfig};
use fmig_serve::daemon::{self, DaemonConfig};
use fmig_serve::loadgen::{self, CellSetup, LoadgenConfig};
use fmig_serve::origin;
use fmig_serve::protocol::{Frame, RejectReason, NO_NEXT_USE};

/// Boots a fresh origin + daemon pair, replays the first `limit`
/// references on one connection, drains, then verifies a late request
/// is rejected and shuts everything down. Returns the deterministic
/// accounting JSON.
fn drained_run(setup: &CellSetup, limit: usize) -> String {
    let origin_listener = TcpListener::bind("127.0.0.1:0").expect("bind origin");
    let origin_addr = origin_listener.local_addr().expect("origin addr");
    let origin_thread = thread::spawn(move || origin::serve(origin_listener));

    let daemon_listener = TcpListener::bind("127.0.0.1:0").expect("bind daemon");
    let daemon_addr = daemon_listener.local_addr().expect("daemon addr");
    let cfg = DaemonConfig::compat(
        origin_addr.to_string(),
        setup.capacity,
        SweepConfig::tiny().policies[0],
        setup.scenario,
        setup.seed,
        setup.span_start_vms,
        setup.span_end_vms,
    );
    let daemon_thread = thread::spawn(move || daemon::serve(daemon_listener, cfg));

    // Replay a prefix and drain — but do not shut down yet.
    let report = loadgen::run(
        &LoadgenConfig {
            addr: daemon_addr.to_string(),
            connections: 1,
            limit: Some(limit),
            drain: true,
            stats: true,
            shutdown: false,
        },
        setup,
    )
    .expect("loadgen run");

    // No acked write lost its writeback: every flushed byte the daemon
    // accounted was confirmed landed by the origin before DrainDone.
    let drain = report.drain.expect("drain report");
    assert_eq!(
        drain.flush_bytes, drain.origin_flushed_bytes,
        "writeback bytes lost in the drain"
    );
    assert_eq!(
        drain.acked_writes, report.writes,
        "daemon acked more writes than the client saw acknowledged"
    );

    // A request arriving after the drain is refused, not dropped.
    let stream = TcpStream::connect(daemon_addr).expect("late connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let hello = Frame::Hello {
        version: fmig_serve::PROTO_VERSION,
        conn: 99,
    };
    hello.write_to(&mut writer).expect("hello");
    writer.flush().expect("flush");
    match Frame::read_from(&mut reader).expect("hello ack") {
        Frame::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    let late = &setup.refs[limit];
    Frame::ReadReq {
        req: limit as u64,
        file: late.id.index() as u64,
        size: late.size,
        time_s: late.time,
        next_use: late.next_use.unwrap_or(NO_NEXT_USE),
        device: late.device,
    }
    .write_to(&mut writer)
    .expect("late request");
    writer.flush().expect("flush");
    match Frame::read_from(&mut reader).expect("late reply") {
        Frame::Rejected {
            req,
            reason: RejectReason::Draining,
        } => assert_eq!(req, limit as u64),
        other => panic!("expected Rejected(Draining), got {other:?}"),
    }

    Frame::Shutdown.write_to(&mut writer).expect("shutdown");
    writer.flush().expect("flush");

    daemon_thread
        .join()
        .expect("daemon thread")
        .expect("daemon serve");
    origin_thread
        .join()
        .expect("origin thread")
        .expect("origin serve");
    report.accounting_json()
}

#[test]
fn drain_then_cold_restart_replays_byte_identical() {
    let setup = loadgen::tiny_cell(FaultScenarioId::None);
    let limit = 400.min(setup.refs.len() - 1);
    let first = drained_run(&setup, limit);
    // "Restart": a brand-new daemon+origin pair, cold cache, same
    // deterministic single-connection prefix.
    let second = drained_run(&setup, limit);
    assert_eq!(
        first, second,
        "cold restart accounting diverged from the first run"
    );
    // The accounting is non-trivial: it saw writes and recalls.
    assert!(first.contains("\"svc_recalls\":"), "{first}");
}

#[test]
fn degraded_drain_loses_nothing_either() {
    let setup = loadgen::tiny_cell(FaultScenarioId::DegradedPeak);
    let limit = 300.min(setup.refs.len() - 1);
    let first = drained_run(&setup, limit);
    let second = drained_run(&setup, limit);
    assert_eq!(first, second);
}
