//! In-process oracle contract: the daemon/origin split replaying the
//! tiny-preset cell must reproduce the counter-noise hierarchy engine's
//! cache decisions exactly and its wait distribution within tolerance —
//! healthy and under degraded-peak chaos. This is the same contract
//! `make service-smoke` enforces through the real binaries, kept in
//! tier-1 so `cargo test` covers it without process spawning.

use std::net::TcpListener;
use std::thread;

use fmig_core::{FaultScenarioId, SweepConfig};
use fmig_migrate::cache::CacheConfig;
use fmig_serve::daemon::{self, DaemonConfig};
use fmig_serve::loadgen::{self, LoadgenConfig};
use fmig_serve::origin;
use fmig_sim::config::SimConfig;
use fmig_sim::HierarchySimulator;

fn replay(scenario: FaultScenarioId, connections: usize) {
    let setup = loadgen::tiny_cell(scenario);

    let policy = SweepConfig::tiny().policies[0].build();
    let oracle = HierarchySimulator::new(
        SimConfig::default()
            .with_seed(setup.seed)
            .with_counter_noise(true),
    )
    .run_with_faults(
        CacheConfig::with_capacity(setup.capacity),
        policy.as_ref(),
        &setup.refs,
        &scenario.plan(),
    );

    let origin_listener = TcpListener::bind("127.0.0.1:0").expect("bind origin");
    let origin_addr = origin_listener.local_addr().expect("origin addr");
    let origin_thread = thread::spawn(move || origin::serve(origin_listener));

    let daemon_listener = TcpListener::bind("127.0.0.1:0").expect("bind daemon");
    let daemon_addr = daemon_listener.local_addr().expect("daemon addr");
    let cfg = DaemonConfig::compat(
        origin_addr.to_string(),
        setup.capacity,
        SweepConfig::tiny().policies[0],
        scenario,
        setup.seed,
        setup.span_start_vms,
        setup.span_end_vms,
    );
    let daemon_thread = thread::spawn(move || daemon::serve(daemon_listener, cfg));

    let report = loadgen::run(
        &LoadgenConfig {
            addr: daemon_addr.to_string(),
            connections,
            limit: None,
            drain: true,
            stats: true,
            shutdown: true,
        },
        &setup,
    )
    .expect("loadgen run");

    let stats = daemon_thread
        .join()
        .expect("daemon thread")
        .expect("daemon serve");
    origin_thread
        .join()
        .expect("origin thread")
        .expect("origin serve");

    // Exact cache-decision equality: the measured miss ratio IS the
    // oracle's.
    let c = oracle.cache;
    assert_eq!(stats.read_hits, c.read_hits, "read_hits");
    assert_eq!(stats.read_misses, c.read_misses, "read_misses");
    assert_eq!(stats.read_hit_bytes, c.read_hit_bytes, "read_hit_bytes");
    assert_eq!(stats.read_miss_bytes, c.read_miss_bytes, "read_miss_bytes");
    assert_eq!(stats.writes, c.writes, "writes");
    assert_eq!(stats.evictions, c.evictions, "evictions");
    assert_eq!(stats.evicted_bytes, c.evicted_bytes, "evicted_bytes");
    assert_eq!(stats.stall_bytes, c.stall_bytes, "stall_bytes");
    assert_eq!(
        stats.purge_flush_bytes, c.purge_flush_bytes,
        "purge_flush_bytes"
    );
    assert_eq!(stats.writeback_bytes, c.writeback_bytes, "writeback_bytes");
    assert_eq!(
        stats.fetch_retries, oracle.cache_fetch_retries,
        "fetch_retries"
    );
    assert_eq!(stats.recalls, oracle.recalls, "recalls");
    assert_eq!(stats.delayed_hits, oracle.delayed_hits, "delayed_hits");
    assert_eq!(stats.flush_jobs, oracle.flush_jobs, "flush_jobs");
    assert_eq!(stats.flush_bytes, oracle.flush_bytes, "flush_bytes");
    assert_eq!(stats.abandoned, 0, "compat mode never abandons");

    // The loadgen saw every reference answered.
    assert_eq!(report.sent, setup.refs.len() as u64);
    assert_eq!(
        report.hits + report.delayed_hits + report.recalls + report.writes,
        report.sent,
        "every request served (no failures, no rejections)"
    );

    // Durability: all flushed bytes landed at the origin.
    let drain = report.drain.expect("drain report");
    assert_eq!(
        drain.flush_bytes, drain.origin_flushed_bytes,
        "no writeback lost"
    );
    assert_eq!(drain.acked_writes, c.writes, "every write acked");

    // Wait distribution vs the oracle. The virtual-time split preserves
    // event causality exactly, so the histograms should agree to the
    // bucket; the smoke-level guarantee is ±15% on p99.
    let oracle_p99 = oracle.read_wait().quantile(0.99);
    let live_p99 = report.read_waits.quantile(0.99);
    assert!(
        (live_p99 - oracle_p99).abs() <= 0.15 * oracle_p99.max(1.0),
        "p99 read wait {live_p99}s vs oracle {oracle_p99}s"
    );
    assert_eq!(
        report.read_waits.count(),
        oracle.read_wait().count(),
        "read wait sample counts"
    );

    // Degraded mode actually degraded: the chaos run exercises the
    // retry path.
    if scenario != FaultScenarioId::None {
        assert!(stats.fetch_retries > 0, "chaos produced no read retries");
        let budget = scenario.plan().max_read_retries as u64 * stats.recalls;
        assert!(stats.fetch_retries <= budget, "retries exceed budget");
        assert!(stats.outage_events > 0, "chaos produced no outages");
    }
}

#[test]
fn healthy_replay_matches_the_simulator_oracle() {
    replay(FaultScenarioId::None, 2);
}

#[test]
fn degraded_peak_replay_matches_the_simulator_oracle() {
    replay(FaultScenarioId::DegradedPeak, 2);
}

#[test]
fn single_connection_replay_matches_too() {
    replay(FaultScenarioId::None, 1);
}
