//! Wire-codec properties: every frame type round-trips; truncated,
//! corrupted, and oversized frames come back as protocol errors —
//! never a panic, never an unbounded allocation.

use proptest::prelude::*;

use fmig_serve::protocol::{Frame, ProtoError, RejectReason, ServedKind, ServiceStats, MAX_FRAME};
use fmig_trace::DeviceClass;

/// Builds one frame of every wire type from a selector and a word pool,
/// so arbitrary (selector, words) tuples cover the full frame space.
fn frame_from(sel: u8, w: &[u64]) -> Frame {
    let g = |i: usize| w[i % w.len()];
    let gi = |i: usize| g(i) as i64;
    let device = match g(7) % 3 {
        0 => DeviceClass::Disk,
        1 => DeviceClass::TapeSilo,
        _ => DeviceClass::TapeManual,
    };
    let served = match g(8) % 5 {
        0 => ServedKind::Hit,
        1 => ServedKind::DelayedHit,
        2 => ServedKind::Recall,
        3 => ServedKind::Write,
        _ => ServedKind::Failed,
    };
    let reason = if g(9) % 2 == 0 {
        RejectReason::Draining
    } else {
        RejectReason::Shedding
    };
    let stats = ServiceStats {
        requests: g(0),
        read_hits: g(1),
        read_misses: g(2),
        read_hit_bytes: g(3),
        read_miss_bytes: g(4),
        writes: g(5),
        evictions: g(6),
        evicted_bytes: g(7),
        stall_bytes: g(8),
        purge_flush_bytes: g(9),
        writeback_bytes: g(10),
        fetch_retries: g(11),
        recalls: g(12),
        delayed_hits: g(13),
        flush_jobs: g(14),
        flush_bytes: g(15),
        abandoned: g(16),
        outage_events: g(17),
        outage_wait_vms: gi(18),
        slow_transfers: g(19),
    };
    match sel % 27 {
        0 => Frame::Hello {
            version: g(0) as u32,
            conn: g(1) as u32,
        },
        1 => Frame::HelloAck {
            version: g(0) as u32,
        },
        2 => Frame::ReadReq {
            req: g(0),
            file: g(1),
            size: g(2),
            time_s: gi(3),
            next_use: gi(4),
            device,
        },
        3 => Frame::WriteReq {
            req: g(0),
            file: g(1),
            size: g(2),
            time_s: gi(3),
            next_use: gi(4),
            device,
        },
        4 => Frame::Done {
            req: g(0),
            wait_vms: gi(1),
            served,
        },
        5 => Frame::Rejected { req: g(0), reason },
        6 => Frame::Drain,
        7 => Frame::DrainDone {
            acked_writes: g(0),
            acked_write_bytes: g(1),
            flush_jobs: g(2),
            flush_bytes: g(3),
            origin_flushed_bytes: g(4),
        },
        8 => Frame::StatsReq,
        9 => Frame::Stats(stats),
        10 => Frame::Shutdown,
        11 => Frame::OriginHello {
            version: g(0) as u32,
            seed: g(1),
            scenario: g(2) as u8,
            span_start_vms: gi(3),
            span_end_vms: gi(4),
        },
        12 => Frame::OriginHelloAck {
            version: g(0) as u32,
        },
        13 => Frame::Recall {
            job: g(0),
            file: g(1),
            seq: g(2),
            size: g(3),
            tier: device,
            enter_vms: gi(4),
            deadline_vms: gi(5),
        },
        14 => Frame::Flush {
            job: g(0),
            file: g(1),
            seq: g(2),
            size: g(3),
            tier: device,
            ready_vms: gi(4),
        },
        15 => Frame::Advance { until_vms: gi(0) },
        16 => Frame::AdvanceDone { now_vms: gi(0) },
        17 => Frame::RecallFirstByte {
            job: g(0),
            fb_vms: gi(1),
        },
        18 => Frame::RecallDone {
            job: g(0),
            done_vms: gi(1),
        },
        19 => Frame::RecallFailed {
            job: g(0),
            attempt: g(1) as u32,
            failed_vms: gi(2),
            drive_free_vms: gi(3),
        },
        20 => Frame::RecallRetry {
            job: g(0),
            rejoin_vms: gi(1),
        },
        21 => Frame::RecallAbandon { job: g(0) },
        22 => Frame::FlushDone {
            job: g(0),
            done_vms: gi(1),
            bytes: g(2),
        },
        23 => Frame::OriginDrainDone {
            outage_events: g(0),
            outage_wait_vms: gi(1),
            slow_transfers: g(2),
            flushed_bytes: g(3),
            recalls_completed: g(4),
            read_failures: g(5),
        },
        24 => Frame::Drain,
        25 => Frame::StatsReq,
        _ => Frame::Shutdown,
    }
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    frame.write_to(&mut buf).expect("encode");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every frame type round-trips the wire exactly.
    #[test]
    fn frames_roundtrip(
        sel in any::<u8>(),
        words in proptest::collection::vec(any::<u64>(), 20..21),
    ) {
        let frame = frame_from(sel, &words);
        let buf = encode(&frame);
        let decoded = Frame::read_from(&mut &buf[..]).expect("decode");
        prop_assert_eq!(frame, decoded);
    }

    /// Truncating a valid frame at any point yields a protocol error —
    /// never a panic, never a partial frame.
    #[test]
    fn truncated_frames_are_rejected(
        sel in any::<u8>(),
        words in proptest::collection::vec(any::<u64>(), 20..21),
        cut in any::<u16>(),
    ) {
        let frame = frame_from(sel, &words);
        let buf = encode(&frame);
        let cut = (cut as usize) % buf.len();
        let result = Frame::read_from(&mut &buf[..cut]);
        prop_assert!(result.is_err(), "truncated to {cut} of {}", buf.len());
    }

    /// Flipping any byte never panics: the decoder returns either a
    /// (different) valid frame or a protocol error.
    #[test]
    fn corrupted_frames_never_panic(
        sel in any::<u8>(),
        words in proptest::collection::vec(any::<u64>(), 20..21),
        at in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let frame = frame_from(sel, &words);
        let mut buf = encode(&frame);
        let at = (at as usize) % buf.len();
        buf[at] ^= xor;
        let _ = Frame::read_from(&mut &buf[..]);
    }

    /// A length prefix past the frame bound is rejected *before* any
    /// payload allocation, so a hostile peer cannot balloon memory.
    #[test]
    fn oversized_frames_are_rejected_without_allocation(
        len in (MAX_FRAME + 1)..u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&tail);
        match Frame::read_from(&mut &buf[..]) {
            Err(ProtoError::Oversized(l)) => prop_assert_eq!(l, len),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Frame::read_from(&mut &bytes[..]);
    }
}
