//! End-to-end reproduction of Miller & Katz, *An Analysis of File
//! Migration in a Unix Supercomputing Environment* (USENIX Winter 1993).
//!
//! This crate is the public entry point of the workspace. It wires the
//! substrates together:
//!
//! * [`fmig_workload`] generates an NCAR-calibrated synthetic request
//!   trace (the original logs are unavailable);
//! * [`fmig_sim`] replays it against a discrete-event model of the NCAR
//!   MSS (disk farm, StorageTek silo, operator-mounted shelf tape);
//! * [`fmig_analysis`] regenerates every table and figure;
//! * [`fmig_migrate`] runs the §6 algorithm studies (STP/LRU/SAAC
//!   comparison, request dedup, dividing point, write-behind).
//!
//! [`Study`] runs the pipeline; [`experiments`] maps each paper artefact
//! (`table1`..`table4`, `fig3`..`fig12`, `policies`, `dedup`, ...) to a
//! regenerated report with paper-vs-measured comparisons. [`sweep`]
//! declares a scenario matrix (policy × preset × scale × cache size) and
//! [`runner`] executes it on a deterministic worker pool, streaming each
//! cell end to end instead of materializing its trace.
//!
//! # Examples
//!
//! ```
//! use fmig_core::{Study, StudyConfig};
//!
//! let output = Study::new(StudyConfig::at_scale(0.001)).run();
//! let fig8 = fmig_core::experiments::run_experiment("fig8", &output).unwrap();
//! assert!(fig8.render().contains("never read"));
//! ```

pub mod experiments;
pub mod runner;
pub mod study;
pub mod sweep;

pub use experiments::{experiment_ids, run_experiment, ExperimentResult};
pub use runner::run_sweep;
pub use study::{Study, StudyConfig, StudyOutput};
pub use sweep::{
    CellResult, FaultScenarioId, PaperDelta, PolicyId, PresetId, ShardReport, SweepConfig,
    SweepReport, Winner,
};

pub use fmig_analysis as analysis;
pub use fmig_migrate as migrate;
pub use fmig_sim as sim;
pub use fmig_trace as trace;
pub use fmig_workload as workload;
