//! The experiment registry: one entry per table and figure of the paper,
//! plus the §6 design-implication studies.
//!
//! Every experiment renders a text report and a set of paper-vs-measured
//! [`Comparison`] rows; `repro <id>` prints them and EXPERIMENTS.md
//! records them. Absolute magnitudes depend on the synthetic substrate,
//! so the comparisons focus on the *shape* claims the paper actually
//! makes (shares, ratios, crossover points, orderings).

use fmig_analysis::report::{ascii_cdf, fmt_count, fmt_f1, fmt_f2, fmt_pct, render_comparisons};
use fmig_analysis::{Comparison, TextTable};
use fmig_migrate::{
    dedup, dividing::DividingPointStudy, eval, policy, prefetch, residency, writeback,
};
use fmig_sim::{cutthrough, striping};
use fmig_sim::{MssSimulator, SimConfig};
use fmig_trace::time::{CivilDate, Timestamp, TRACE_EPOCH};
use fmig_trace::{DeviceClass, Direction, Endpoint, TraceRecord, TraceWriter, VerboseLogWriter};
use fmig_workload::rate::{READ_DIURNAL, READ_WEEKLY};
use rand::SeedableRng;

use crate::study::StudyOutput;

/// One regenerated table or figure.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Registry id (`table3`, `fig7`, `policies`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rendered report (tables and ASCII plots).
    pub text: String,
    /// Paper-vs-measured rows.
    pub comparisons: Vec<Comparison>,
}

impl ExperimentResult {
    /// Renders the full report including the comparison table.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n{}", self.id, self.title, self.text);
        if !self.comparisons.is_empty() {
            out.push('\n');
            out.push_str(&render_comparisons("paper vs measured:", &self.comparisons));
        }
        out
    }
}

/// All experiment ids, in paper order.
pub fn experiment_ids() -> &'static [&'static str] {
    &[
        "topology",
        "table1",
        "table2",
        "table3",
        "table4",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "policies",
        "dedup",
        "dividing",
        "writeback",
        "prefetch",
        "residency",
        "cutthrough",
        "attribution",
        "striping",
    ]
}

/// Runs one experiment against a completed study.
///
/// Returns `None` for unknown ids.
pub fn run_experiment(id: &str, study: &StudyOutput) -> Option<ExperimentResult> {
    let result = match id {
        "topology" => topology(study),
        "table1" => table1(study),
        "table2" => table2(study),
        "table3" => table3(study),
        "table4" => table4(study),
        "fig3" => fig3(study),
        "fig4" => fig4(study),
        "fig5" => fig5(study),
        "fig6" => fig6(study),
        "fig7" => fig7(study),
        "fig8" => fig8(study),
        "fig9" => fig9(study),
        "fig10" => fig10(study),
        "fig11" => fig11(study),
        "fig12" => fig12(study),
        "policies" => policies(study),
        "dedup" => dedup_exp(study),
        "dividing" => dividing_exp(study),
        "writeback" => writeback_exp(study),
        "prefetch" => prefetch_exp(study),
        "residency" => residency_exp(study),
        "cutthrough" => cutthrough_exp(study),
        "attribution" => attribution_exp(study),
        "striping" => striping_exp(study),
        _ => return None,
    };
    Some(result)
}

/// Figures 1–2: the storage pyramid and NCAR network as built here.
fn topology(study: &StudyOutput) -> ExperimentResult {
    let sim = &study.config.sim;
    let text = format!(
        "Storage pyramid (Figure 1) as modelled:\n\
         \x20 CPU cache / memory ........ not modelled (above the MSS)\n\
         \x20 Cray local disk ........... trace source (Endpoint::Cray)\n\
         \x20 MSS magnetic disk ......... {} spindles @ {:.1} MB/s\n\
         \x20 Robotic tape silo ......... {} shared drives, {} robot arms,\n\
         \x20                             {:.0} s mount, {:.0}-{:.0} s seek\n\
         \x20 Shelf tape ................ {} shared drives, {} operators,\n\
         \x20                             ~{:.0} s mount (lognormal, sigma {:.1})\n\n\
         Network (Figure 2): requests flow Cray -> MSCP (dispatch overhead\n\
         median {:.1} s) -> device queues -> {} bitfile movers (LDN direct\n\
         data path).\n",
        sim.disk_spindles,
        sim.disk_rate / 1e6,
        sim.silo_drives,
        sim.robot_arms,
        sim.robot_mount_s,
        sim.tape_seek_min_s,
        sim.tape_seek_max_s,
        sim.manual_drives,
        sim.operators,
        sim.operator_mount_median_s,
        sim.operator_mount_sigma,
        sim.mscp_overhead_median_s,
        sim.movers,
    );
    ExperimentResult {
        id: "topology".into(),
        title: "Figures 1-2: storage hierarchy and data path".into(),
        text,
        comparisons: vec![],
    }
}

/// Table 1: device characteristics, measured on uncontended hardware.
fn table1(_study: &StudyOutput) -> ExperimentResult {
    let cfg = SimConfig::uncontended();
    let sim = MssSimulator::new(cfg);
    // 25 lonely 100 MB reads per device class, hours apart, so mount and
    // seek randomness averages out without any queueing.
    let endpoints = [
        Endpoint::MssDisk,
        Endpoint::MssTapeSilo,
        Endpoint::MssTapeManual,
    ];
    let mut records = Vec::new();
    for rep in 0..25i64 {
        for (d, &ep) in endpoints.iter().enumerate() {
            records.push(TraceRecord::read(
                ep,
                TRACE_EPOCH.add_secs(rep * 30_000 + d as i64 * 10_000),
                100_000_000,
                format!("/t1/{d}/{rep}"),
                1,
            ));
        }
    }
    let run = sim.run(records);
    let mut t = TextTable::new(["category", "disk", "tape (silo)", "tape (manual)"]);
    let mut lat = [0.0f64; 3];
    let mut rate = [0.0f64; 3];
    for rec in &run.records {
        let d = match rec.mss_device().expect("mss device") {
            DeviceClass::Disk => 0,
            DeviceClass::TapeSilo => 1,
            DeviceClass::TapeManual => 2,
        };
        lat[d] += rec.startup_latency_s as f64 / 25.0;
        rate[d] += rec.file_size as f64 / (rec.transfer_ms.max(1) as f64 / 1000.0) / 1e6 / 25.0;
    }
    t.row([
        "first byte (s), uncontended".to_string(),
        fmt_f1(lat[0]),
        fmt_f1(lat[1]),
        fmt_f1(lat[2]),
    ]);
    t.row([
        "transfer rate (MB/s)".to_string(),
        fmt_f2(rate[0]),
        fmt_f2(rate[1]),
        fmt_f2(rate[2]),
    ]);
    t.row([
        "media capacity".to_string(),
        "n/a (100 GB farm)".to_string(),
        "200 MB cartridge".to_string(),
        "200 MB cartridge".to_string(),
    ]);
    let text = format!(
        "Paper Table 1 (for reference): optical jukebox 7 s / 0.25 MB/s /\n\
         $80/GB; IBM 3490 linear tape 13 s / 6 MB/s / $25/GB; Ampex D-2\n\
         helical 60+ s / 15 MB/s / $2/GB. The NCAR MSS uses 3480-class\n\
         linear cartridges; measured single-request behaviour of our\n\
         simulated devices:\n\n{}",
        t.render()
    );
    let comparisons = vec![
        // §5.1.1's queue-free deductions: silo ~ mount + seek ~ 60 s,
        // manual ~ 115 s mount + seek ~ 165 s, disk ~ seconds.
        Comparison::new("silo first byte, uncontended (s)", 60.0, lat[1]),
        Comparison::new("manual first byte, uncontended (s)", 165.0, lat[2]),
        Comparison::new("observed transfer rate (MB/s)", 2.0, rate[1]),
        Comparison::new(
            "silo/manual mount advantage",
            2.25,
            lat[2] / lat[1].max(1e-9),
        ),
    ];
    ExperimentResult {
        id: "table1".into(),
        title: "Table 1: storage device characteristics".into(),
        text,
        comparisons,
    }
}

/// Table 2: the trace format and its compaction ratio.
fn table2(study: &StudyOutput) -> ExperimentResult {
    let n = study.records.len().min(50_000);
    let mut compact = TraceWriter::new(Vec::new(), TRACE_EPOCH).expect("vec writer");
    let mut verbose = VerboseLogWriter::new(Vec::new());
    for rec in &study.records[..n] {
        compact.write_record(rec).expect("vec writer");
        verbose.write_record(rec).expect("vec writer");
    }
    let ratio = verbose.bytes_written() as f64 / compact.bytes_written().max(1) as f64;
    let per_rec = compact.bytes_written() as f64 / n.max(1) as f64;
    let mut t = TextTable::new(["field", "meaning"]);
    for (f, m) in [
        ("source", "device the data came from"),
        ("destination", "device the data is going to"),
        ("flags", "read/write, error, compression, same-user bit"),
        ("start time", "seconds since the previous record's start"),
        ("startup latency", "seconds to start the transfer"),
        ("transfer time", "milliseconds to transfer the data"),
        ("file size", "bytes"),
        ("MSS file name", "bitfile name on the MSS"),
        ("local file name", "file name on the computer"),
        ("user ID", "requesting user ('-' when same as previous)"),
    ] {
        t.row([f, m]);
    }
    let text = format!(
        "{}\nMeasured over {} records: verbose system log {} bytes vs\n\
         compact trace {} bytes => {:.1}x compaction ({:.0} bytes/record).\n\
         The paper reduced 50 MB/month of logs to 10-11 MB/month (~4.8x).\n",
        t.render(),
        fmt_count(n as u64),
        fmt_count(verbose.bytes_written()),
        fmt_count(compact.bytes_written()),
        ratio,
        per_rec,
    );
    let comparisons = vec![Comparison::new("log-to-trace compaction ratio", 4.8, ratio)];
    ExperimentResult {
        id: "table2".into(),
        title: "Table 2: trace record format and compaction".into(),
        text,
        comparisons,
    }
}

/// Table 3: overall trace statistics.
fn table3(study: &StudyOutput) -> ExperimentResult {
    let s = &study.analysis.stats;
    let lat = &study.analysis.latency;
    let tg = &study.targets;
    let combined = s.combined();
    let mut t = TextTable::new(["", "Reads", "Writes", "Total"]);
    t.row([
        "References".to_string(),
        fmt_count(s.reads.total.references),
        fmt_count(s.writes.total.references),
        fmt_count(combined.total.references),
    ]);
    for dev in DeviceClass::ALL {
        t.row([
            format!("  {dev}"),
            fmt_count(s.reads.device(dev).references),
            fmt_count(s.writes.device(dev).references),
            fmt_count(combined.device(dev).references),
        ]);
    }
    t.row([
        "GB transferred".to_string(),
        fmt_f1(s.reads.total.gigabytes()),
        fmt_f1(s.writes.total.gigabytes()),
        fmt_f1(combined.total.gigabytes()),
    ]);
    for dev in DeviceClass::ALL {
        t.row([
            format!("  {dev}"),
            fmt_f1(s.reads.device(dev).gigabytes()),
            fmt_f1(s.writes.device(dev).gigabytes()),
            fmt_f1(combined.device(dev).gigabytes()),
        ]);
    }
    t.row([
        "Avg file size (MB)".to_string(),
        fmt_f2(s.reads.total.avg_file_size_mb()),
        fmt_f2(s.writes.total.avg_file_size_mb()),
        fmt_f2(combined.total.avg_file_size_mb()),
    ]);
    for dev in DeviceClass::ALL {
        t.row([
            format!("  {dev}"),
            fmt_f2(s.reads.device(dev).avg_file_size_mb()),
            fmt_f2(s.writes.device(dev).avg_file_size_mb()),
            fmt_f2(combined.device(dev).avg_file_size_mb()),
        ]);
    }
    t.row([
        "Secs to first byte".to_string(),
        fmt_f1(lat.direction_mean(Direction::Read)),
        fmt_f1(lat.direction_mean(Direction::Write)),
        "".to_string(),
    ]);
    for dev in DeviceClass::ALL {
        t.row([
            format!("  {dev}"),
            fmt_f1(lat.mean(Direction::Read, dev)),
            fmt_f1(lat.mean(Direction::Write, dev)),
            fmt_f1(lat.device_mean(dev)),
        ]);
    }
    let text = format!(
        "{}\nErrors: {} of {} raw references ({}).\n",
        t.render(),
        fmt_count(s.total_errors()),
        fmt_count(s.raw_references),
        fmt_pct(s.error_fraction()),
    );
    let dev_shares = s.device_reference_shares();
    let comparisons = vec![
        Comparison::new(
            "read share of references",
            tg.read_share(),
            s.read_reference_share(),
        ),
        Comparison::new("read share of bytes", 0.73, s.read_byte_share()),
        Comparison::new("error fraction", tg.error_fraction(), s.error_fraction()),
        Comparison::new("disk share of references", 0.66, dev_shares[0].fraction),
        Comparison::new("silo share of references", 0.20, dev_shares[1].fraction),
        Comparison::new("manual share of references", 0.12, dev_shares[2].fraction),
        Comparison::new(
            "avg read size (MB)",
            tg.avg_read_mb,
            s.reads.total.avg_file_size_mb(),
        ),
        Comparison::new(
            "avg write size (MB)",
            tg.avg_write_mb,
            s.writes.total.avg_file_size_mb(),
        ),
        Comparison::new(
            "disk read latency (s)",
            tg.latency_read_s_by_device[0],
            lat.mean(Direction::Read, DeviceClass::Disk),
        ),
        Comparison::new(
            "silo read latency (s)",
            tg.latency_read_s_by_device[1],
            lat.mean(Direction::Read, DeviceClass::TapeSilo),
        ),
        Comparison::new(
            "manual read latency (s)",
            tg.latency_read_s_by_device[2],
            lat.mean(Direction::Read, DeviceClass::TapeManual),
        ),
        Comparison::new(
            "write latency < read latency",
            tg.latency_write_s / tg.latency_read_s,
            lat.direction_mean(Direction::Write) / lat.direction_mean(Direction::Read).max(1e-9),
        ),
    ];
    ExperimentResult {
        id: "table3".into(),
        title: "Table 3: overall trace statistics".into(),
        text,
        comparisons,
    }
}

/// Table 4: the referenced file store.
fn table4(study: &StudyOutput) -> ExperimentResult {
    let files = &study.analysis.files;
    let dirs = &study.analysis.dirs;
    let tg = &study.targets;
    let scale = study.config.workload.scale;
    let mut t = TextTable::new(["statistic", "measured", "paper (at scale 1.0)"]);
    t.row([
        "Number of files".to_string(),
        fmt_count(files.file_count() as u64),
        format!("{} (x{scale})", fmt_count(tg.store_files)),
    ]);
    t.row([
        "Average file size".to_string(),
        format!("{} MB", fmt_f1(files.avg_file_mb())),
        format!("{} MB", fmt_f1(tg.store_avg_file_mb)),
    ]);
    t.row([
        "Number of directories".to_string(),
        fmt_count(dirs.dir_count() as u64),
        format!("{} (x{scale})", fmt_count(tg.store_directories)),
    ]);
    t.row([
        "Largest directory".to_string(),
        format!("{} files", fmt_count(dirs.largest_dir() as u64)),
        format!("{} files (x{scale})", fmt_count(tg.largest_directory)),
    ]);
    t.row([
        "Maximum directory depth".to_string(),
        dirs.max_depth().to_string(),
        tg.max_directory_depth.to_string(),
    ]);
    t.row([
        "Total data".to_string(),
        format!("{:.2} TB", files.total_bytes() as f64 / 1e12),
        format!("{:.0} TB (x{scale})", tg.store_total_tb),
    ]);
    let comparisons = vec![
        Comparison::new(
            "files (scaled)",
            tg.store_files as f64 * scale,
            files.file_count() as f64,
        ),
        Comparison::new(
            "avg file size (MB)",
            tg.store_avg_file_mb,
            files.avg_file_mb(),
        ),
        Comparison::new(
            "directories (scaled)",
            tg.store_directories as f64 * scale,
            dirs.dir_count() as f64,
        ),
        Comparison::new(
            "max depth",
            tg.max_directory_depth as f64,
            dirs.max_depth() as f64,
        ),
        Comparison::new(
            "total data (TB, scaled)",
            tg.store_total_tb * scale,
            files.total_bytes() as f64 / 1e12,
        ),
    ];
    ExperimentResult {
        id: "table4".into(),
        title: "Table 4: statistics of the referenced file store".into(),
        text: t.render(),
        comparisons,
    }
}

/// Figure 3: latency to first byte per device.
fn fig3(study: &StudyOutput) -> ExperimentResult {
    let lat = &study.analysis.latency;
    let disk = lat.device_cdf(DeviceClass::Disk);
    let silo = lat.device_cdf(DeviceClass::TapeSilo);
    let manual = lat.device_cdf(DeviceClass::TapeManual);
    let plot = ascii_cdf(
        "Cumulative fraction of requests vs latency to first byte",
        &[('d', &disk), ('s', &silo), ('m', &manual)],
        "seconds",
    );
    let manual_400 = lat.device_fraction_le(DeviceClass::TapeManual, 400.0);
    let silo_mean = lat.device_mean(DeviceClass::TapeSilo);
    let manual_mean = lat.device_mean(DeviceClass::TapeManual);
    let text = format!(
        "{plot}\nd = disk, s = tape (silo), m = tape (manual)\n\
         disk median: {:.0} s; silo mean {:.1} s; manual mean {:.1} s;\n\
         manual requests finished within 400 s: {}\n",
        lat.device_median(DeviceClass::Disk),
        silo_mean,
        manual_mean,
        fmt_pct(manual_400),
    );
    let comparisons = vec![
        Comparison::new(
            "disk median latency (s)",
            4.0,
            lat.device_median(DeviceClass::Disk),
        ),
        Comparison::new(
            "manual-to-silo first-byte ratio",
            2.25,
            manual_mean / silo_mean.max(1e-9),
        ),
        Comparison::new("manual requests > 400 s", 0.10, 1.0 - manual_400),
        Comparison::new(
            "silo requests > 400 s",
            0.01,
            1.0 - lat.device_fraction_le(DeviceClass::TapeSilo, 400.0),
        ),
    ];
    ExperimentResult {
        id: "fig3".into(),
        title: "Figure 3: latency to first byte by device".into(),
        text,
        comparisons,
    }
}

/// Figure 4: data rate over the day.
fn fig4(study: &StudyOutput) -> ExperimentResult {
    let h = &study.analysis.hourly;
    let mut t = TextTable::new(["hour", "reads GB/h", "writes GB/h", "total GB/h"]);
    for hour in 0..24u8 {
        t.row([
            format!("{hour:02}"),
            fmt_f2(h.gb_per_hour(Direction::Read, hour)),
            fmt_f2(h.gb_per_hour(Direction::Write, hour)),
            fmt_f2(h.total_gb_per_hour(hour)),
        ]);
    }
    let read_series = h.series(Direction::Read);
    let write_series = h.series(Direction::Write);
    let read_pt = h.peak_to_trough(Direction::Read);
    let write_pt = h.peak_to_trough(Direction::Write);
    // The paper's 8 AM jump: rate at 9-10 vs 6-7.
    let jump = (read_series[9] + read_series[10]) / (read_series[6] + read_series[7]).max(1e-9);
    let text = format!(
        "{}\nread peak/trough: {:.1}x; write peak/trough: {:.1}x; 8AM read jump: {:.1}x\n",
        t.render(),
        read_pt,
        write_pt,
        jump
    );
    // Paper's profile implies read peak/trough ~6.7x, writes ~1.16x.
    let paper_read_pt = READ_DIURNAL[8..17].iter().copied().fold(0.0, f64::max)
        / READ_DIURNAL[0..6].iter().copied().fold(f64::MAX, f64::min);
    let comparisons = vec![
        Comparison::new("read peak/trough over the day", paper_read_pt, read_pt),
        Comparison::new("write peak/trough over the day", 1.16, write_pt),
        Comparison::new(
            "reads dominate daytime transfers",
            2.0,
            read_series[10] / write_series[10].max(1e-9),
        ),
    ];
    ExperimentResult {
        id: "fig4".into(),
        title: "Figure 4: average data transfer rate over a day".into(),
        text,
        comparisons,
    }
}

/// Figure 5: data rate over the week.
fn fig5(study: &StudyOutput) -> ExperimentResult {
    let w = &study.analysis.weekly;
    let mut t = TextTable::new(["day", "reads GB/h", "writes GB/h"]);
    let names = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
    for (d, name) in names.iter().enumerate() {
        t.row([
            name.to_string(),
            fmt_f2(w.gb_per_hour(Direction::Read, d as u8)),
            fmt_f2(w.gb_per_hour(Direction::Write, d as u8)),
        ]);
    }
    let read_ratio = w.weekend_to_weekday(Direction::Read);
    let write_ratio = w.weekend_to_weekday(Direction::Write);
    let text = format!(
        "{}\nweekend/weekday: reads {:.2}, writes {:.2}\n",
        t.render(),
        read_ratio,
        write_ratio
    );
    let paper_read_weekend =
        (READ_WEEKLY[0] + READ_WEEKLY[6]) / 2.0 / (READ_WEEKLY[1..6].iter().sum::<f64>() / 5.0);
    let comparisons = vec![
        Comparison::new("weekend/weekday read rate", paper_read_weekend, read_ratio),
        Comparison::new("weekend/weekday write rate", 0.97, write_ratio),
    ];
    ExperimentResult {
        id: "fig5".into(),
        title: "Figure 5: average data transfer rate over a week".into(),
        text,
        comparisons,
    }
}

/// Figure 6: two-year weekly series with growth and holiday dips.
fn fig6(study: &StudyOutput) -> ExperimentResult {
    let s = &study.analysis.weeks;
    let mut t = TextTable::new(["week", "reads GB/h", "writes GB/h"]);
    for week in (0..s.weeks()).step_by(4) {
        t.row([
            format!("{week:3}"),
            fmt_f2(s.gb_per_hour(Direction::Read, week)),
            fmt_f2(s.gb_per_hour(Direction::Write, week)),
        ]);
    }
    let holidays = [
        ("Thanksgiving 1990", CivilDate::new(1990, 11, 22)),
        ("Christmas 1990", CivilDate::new(1990, 12, 25)),
        ("Thanksgiving 1991", CivilDate::new(1991, 11, 28)),
        ("Christmas 1991", CivilDate::new(1991, 12, 25)),
    ];
    let mut dips = String::new();
    let mut read_dip_sum = 0.0;
    let mut write_dip_sum = 0.0;
    for (name, date) in holidays {
        let at = Timestamp::from_civil(date, 12, 0, 0);
        let rd = s.dip_ratio(Direction::Read, at);
        let wd = s.dip_ratio(Direction::Write, at);
        read_dip_sum += rd;
        write_dip_sum += wd;
        dips.push_str(&format!("  {name}: read x{rd:.2}, write x{wd:.2}\n"));
    }
    let read_growth = s.growth_ratio(Direction::Read);
    let write_growth = s.growth_ratio(Direction::Write);
    let text = format!(
        "{}\nholiday-week rate vs neighbours:\n{dips}\
         growth (last quarter / first quarter): reads {:.2}x, writes {:.2}x\n",
        t.render(),
        read_growth,
        write_growth
    );
    let comparisons = vec![
        Comparison::new("read growth across trace", 1.8, read_growth),
        Comparison::new("write growth across trace", 1.0, write_growth),
        Comparison::new("mean holiday read dip", 0.75, read_dip_sum / 4.0),
        Comparison::new("mean holiday write dip", 1.0, write_dip_sum / 4.0),
    ];
    ExperimentResult {
        id: "fig6".into(),
        title: "Figure 6: weekly data rate across the two-year trace".into(),
        text,
        comparisons,
    }
}

/// Figure 7: intervals between MSS requests.
fn fig7(study: &StudyOutput) -> ExperimentResult {
    let g = &study.analysis.gaps;
    let pts = g.cdf_points();
    let plot = ascii_cdf(
        "Cumulative fraction of requests vs interrequest gap",
        &[('g', &pts)],
        "seconds",
    );
    let under10 = g.fraction_le(10.0);
    let scale = study.config.workload.scale;
    let text = format!(
        "{plot}\nmean gap: {:.1} s (paper: 18 s at scale 1.0; this run is scale {scale});\n\
         gaps <= 10 s: {}\n",
        g.mean_gap_s(),
        fmt_pct(under10),
    );
    let comparisons = vec![
        Comparison::new("gaps <= 10 s", study.targets.global_gap_under_10s, under10),
        // The mean gap scales inversely with trace volume.
        Comparison::new(
            "mean gap (s, scaled)",
            study.targets.global_mean_gap_s / scale,
            g.mean_gap_s(),
        ),
    ];
    ExperimentResult {
        id: "fig7".into(),
        title: "Figure 7: intervals between Cray references to the MSS".into(),
        text,
        comparisons,
    }
}

/// Figure 8: per-file reference counts.
fn fig8(study: &StudyOutput) -> ExperimentResult {
    let f = &study.analysis.files;
    let tg = &study.targets;
    let total_cdf: Vec<(f64, f64)> = f
        .reference_count_cdf()
        .into_iter()
        .map(|(c, fr)| (c.max(1) as f64, fr))
        .collect();
    let reads_cdf: Vec<(f64, f64)> = f
        .direction_count_cdf(Direction::Read)
        .into_iter()
        .map(|(c, fr)| (c.max(1) as f64, fr))
        .collect();
    let writes_cdf: Vec<(f64, f64)> = f
        .direction_count_cdf(Direction::Write)
        .into_iter()
        .map(|(c, fr)| (c.max(1) as f64, fr))
        .collect();
    let plot = ascii_cdf(
        "Cumulative fraction of files vs reference count (8-hour dedup)",
        &[('t', &total_cdf), ('r', &reads_cdf), ('w', &writes_cdf)],
        "references",
    );
    let text = format!(
        "{plot}\nt = total, r = reads, w = writes\n\
         never read: {}; never written: {}; accessed once: {};\n\
         accessed twice: {}; write-once-never-read: {}; >10 refs: {};\n\
         median references: {}\n",
        fmt_pct(f.never_read()),
        fmt_pct(f.never_written()),
        fmt_pct(f.accessed_once()),
        fmt_pct(f.accessed_twice()),
        fmt_pct(f.write_once_never_read()),
        fmt_pct(f.referenced_more_than(10)),
        f.median_references(),
    );
    let comparisons = vec![
        Comparison::new("files never read", tg.files_never_read, f.never_read()),
        Comparison::new(
            "files never written",
            tg.files_never_written,
            f.never_written(),
        ),
        Comparison::new(
            "files accessed exactly once",
            tg.files_accessed_once,
            f.accessed_once(),
        ),
        Comparison::new(
            "files accessed exactly twice",
            tg.files_accessed_twice,
            f.accessed_twice(),
        ),
        Comparison::new(
            "write-once-never-read",
            tg.files_write_once_never_read,
            f.write_once_never_read(),
        ),
        Comparison::new(
            "written exactly once",
            tg.files_written_once,
            f.fraction_where(|_, w| w == 1),
        ),
        Comparison::new(
            "referenced > 10 times",
            tg.files_over_ten_refs,
            f.referenced_more_than(10),
        ),
        Comparison::new("median reference count", 1.0, f.median_references() as f64),
    ];
    ExperimentResult {
        id: "fig8".into(),
        title: "Figure 8: distribution of file reference counts".into(),
        text,
        comparisons,
    }
}

/// Figure 9: per-file interreference intervals.
fn fig9(study: &StudyOutput) -> ExperimentResult {
    let f = &study.analysis.files;
    let pts: Vec<(f64, f64)> = f
        .intervals()
        .cdf_points()
        .into_iter()
        .map(|(e, fr, _)| (e / 86_400.0, fr))
        .collect();
    let plot = ascii_cdf(
        "Cumulative fraction of intervals vs interval length",
        &[('i', &pts)],
        "days",
    );
    let under_1d = f.intervals_under_1d();
    let over_100d = 1.0 - f.interval_fraction_le(100.0 * 86_400.0);
    let text = format!(
        "{plot}\nintervals < 1 day: {}; intervals > 100 days: {}\n",
        fmt_pct(under_1d),
        fmt_pct(over_100d),
    );
    let comparisons = vec![
        Comparison::new(
            "per-file intervals < 1 day",
            study.targets.file_gap_under_1d,
            under_1d,
        ),
        Comparison::new(
            "long tail beyond 100 days exists",
            1.0,
            f64::from(over_100d > 0.005),
        ),
    ];
    ExperimentResult {
        id: "fig9".into(),
        title: "Figure 9: intervals between references to the same file".into(),
        text,
        comparisons,
    }
}

/// Figure 10: dynamic (per-access) size distribution.
fn fig10(study: &StudyOutput) -> ExperimentResult {
    let d = &study.analysis.dynamic_sizes;
    let curves = d.curves();
    let files_read: Vec<(f64, f64)> = curves.iter().map(|c| (c.0, c.1)).collect();
    let files_written: Vec<(f64, f64)> = curves.iter().map(|c| (c.0, c.2)).collect();
    let data_read: Vec<(f64, f64)> = curves.iter().map(|c| (c.0, c.3)).collect();
    let plot = ascii_cdf(
        "Cumulative fraction vs transfer size",
        &[('r', &files_read), ('w', &files_written), ('D', &data_read)],
        "bytes",
    );
    let under_1mb = d.fraction_le(1e6);
    let text = format!(
        "{plot}\nr = files read, w = files written, D = data read\n\
         requests <= 1 MB: {} carrying {} of the data;\n\
         mean read {:.1} MB, mean write {:.1} MB\n",
        fmt_pct(under_1mb),
        fmt_pct(d.data_fraction_le(1e6)),
        d.mean_mb(Direction::Read),
        d.mean_mb(Direction::Write),
    );
    let comparisons = vec![
        Comparison::new(
            "requests <= 1 MB",
            study.targets.dynamic_under_1mb,
            under_1mb,
        ),
        Comparison::new("data in <=1 MB requests", 0.01, d.data_fraction_le(1e6)),
        Comparison::new(
            "write bump near 8 MB (w(10M)-w(5M))",
            0.08,
            d.histogram(Direction::Write).fraction_le(1.1e7)
                - d.histogram(Direction::Write).fraction_le(5e6),
        ),
    ];
    ExperimentResult {
        id: "fig10".into(),
        title: "Figure 10: size distribution of transfers".into(),
        text,
        comparisons,
    }
}

/// Figure 11: static (per-file) size distribution.
fn fig11(study: &StudyOutput) -> ExperimentResult {
    let h = study.analysis.files.size_histogram();
    let pts = h.cdf_points();
    let files: Vec<(f64, f64)> = pts.iter().map(|p| (p.0, p.1)).collect();
    let data: Vec<(f64, f64)> = pts.iter().map(|p| (p.0, p.2)).collect();
    let plot = ascii_cdf(
        "Cumulative fraction vs file size",
        &[('f', &files), ('d', &data)],
        "bytes",
    );
    let files_3mb = h.fraction_le(3e6);
    let data_3mb = h.weight_fraction_le(3e6);
    let text = format!(
        "{plot}\nf = files, d = data\nfiles < 3 MB: {} holding {} of the data\n",
        fmt_pct(files_3mb),
        fmt_pct(data_3mb),
    );
    let comparisons = vec![
        Comparison::new(
            "files under 3 MB",
            study.targets.static_under_3mb_files,
            files_3mb,
        ),
        Comparison::new(
            "data in files under 3 MB",
            study.targets.static_under_3mb_data,
            data_3mb,
        ),
        Comparison::new(
            "mean stored file (MB)",
            study.targets.store_avg_file_mb,
            h.mean() / 1e6,
        ),
    ];
    ExperimentResult {
        id: "fig11".into(),
        title: "Figure 11: distribution of file sizes on the MSS".into(),
        text,
        comparisons,
    }
}

/// Figure 12: directory sizes.
fn fig12(study: &StudyOutput) -> ExperimentResult {
    let d = &study.analysis.dirs;
    let curves = d.curves();
    let dirs: Vec<(f64, f64)> = curves.iter().map(|c| (c.0.max(1) as f64, c.1)).collect();
    let files: Vec<(f64, f64)> = curves.iter().map(|c| (c.0.max(1) as f64, c.2)).collect();
    let data: Vec<(f64, f64)> = curves.iter().map(|c| (c.0.max(1) as f64, c.3)).collect();
    let plot = ascii_cdf(
        "Cumulative fraction vs files per directory",
        &[('d', &dirs), ('f', &files), ('b', &data)],
        "files in directory",
    );
    let le1 = d.fraction_with_at_most(1);
    let le10 = d.fraction_with_at_most(10);
    let top5 = d.files_in_top_dirs(0.05);
    let text = format!(
        "{plot}\nd = directories, f = files, b = bytes\n\
         dirs with <=1 file: {}; <=10 files: {}; top-5% dirs hold {} of files;\n\
         files in dirs >100 files: {}; largest dir: {} files\n",
        fmt_pct(le1),
        fmt_pct(le10),
        fmt_pct(top5),
        fmt_pct(d.files_in_dirs_larger_than(100)),
        fmt_count(d.largest_dir() as u64),
    );
    let comparisons = vec![
        Comparison::new(
            "dirs with <= 1 file",
            study.targets.dirs_at_most_one_file,
            le1,
        ),
        Comparison::new(
            "dirs with <= 10 files",
            study.targets.dirs_at_most_ten_files,
            le10,
        ),
        Comparison::new(
            "files held by top-5% dirs",
            study.targets.files_in_top5pct_dirs,
            top5,
        ),
        Comparison::new(
            "files in dirs with > 100 files",
            0.5,
            d.files_in_dirs_larger_than(100),
        ),
    ];
    ExperimentResult {
        id: "fig12".into(),
        title: "Figure 12: distribution of directory sizes".into(),
        text,
        comparisons,
    }
}

/// §6-a: migration policy comparison.
fn policies(study: &StudyOutput) -> ExperimentResult {
    let total_bytes = study.analysis.files.total_bytes();
    // A staging disk holding ~1.5% of the store, Smith's STP operating
    // point for a ~1% miss ratio.
    let capacity = (total_bytes as f64 * 0.015) as u64;
    let suite = policy::standard_suite();
    let config = eval::EvalConfig::with_capacity(capacity.max(1_000_000));
    let outcomes = eval::evaluate_policies(&study.records, &suite, &config);
    let mut t = TextTable::new(["policy", "miss ratio", "byte miss", "person-min/day"]);
    for o in &outcomes {
        t.row([
            o.name.clone(),
            fmt_pct(o.miss_ratio),
            fmt_pct(o.byte_miss_ratio),
            fmt_f1(o.person_minutes_per_day),
        ]);
    }
    let stp = outcomes
        .iter()
        .find(|o| o.name == "STP(1.4)")
        .expect("suite has STP");
    let lru = outcomes
        .iter()
        .find(|o| o.name == "LRU")
        .expect("suite has LRU");
    let largest = outcomes
        .iter()
        .find(|o| o.name == "Largest-first")
        .expect("suite has Largest-first");
    let best = outcomes
        .iter()
        .min_by(|a, b| a.miss_ratio.partial_cmp(&b.miss_ratio).expect("finite"))
        .expect("non-empty");
    let text = format!(
        "cache capacity: {:.2} GB (~1.5% of the referenced store)\n\n{}\n\
         best policy: {} at {}\n",
        capacity as f64 / 1e9,
        t.render(),
        best.name,
        fmt_pct(best.miss_ratio),
    );
    // Smith/Lawrie: STP best, "though only by a slim margin".
    let comparisons = vec![
        Comparison::new(
            "STP beats LRU (miss ratio ratio)",
            0.95,
            stp.miss_ratio / lru.miss_ratio.max(1e-9),
        ),
        Comparison::new(
            "STP beats Largest-first",
            0.9,
            stp.miss_ratio / largest.miss_ratio.max(1e-9),
        ),
        Comparison::new(
            "slim margin (best/STP)",
            0.9,
            best.miss_ratio / stp.miss_ratio.max(1e-9),
        ),
    ];
    ExperimentResult {
        id: "policies".into(),
        title: "§6-a: migration policy comparison (Smith/Lawrie rerun)".into(),
        text,
        comparisons,
    }
}

/// §6-b: eight-hour request deduplication.
fn dedup_exp(study: &StudyOutput) -> ExperimentResult {
    let hour = 3600i64;
    let sweep = dedup::window_sweep(
        &study.records,
        &[hour, 2 * hour, 4 * hour, 8 * hour, 24 * hour],
    );
    let mut t = TextTable::new(["window", "duplicate requests", "savings"]);
    for r in &sweep {
        t.row([
            format!("{} h", r.window_s / hour),
            fmt_count(r.duplicates),
            fmt_pct(r.savings()),
        ]);
    }
    let eight = &sweep[3];
    let text = format!(
        "{}\nAn integrated Cray-MSS cache absorbing same-file requests within\n\
         8 hours would save {} of all MSS requests (paper: about one third).\n",
        t.render(),
        fmt_pct(eight.savings()),
    );
    let comparisons = vec![Comparison::new(
        "requests saved by 8-hour dedup",
        study.targets.requests_within_8h_of_same_file,
        eight.savings(),
    )];
    ExperimentResult {
        id: "dedup".into(),
        title: "§6-b: same-file request deduplication".into(),
        text,
        comparisons,
    }
}

/// §6-c: the disk/tape dividing point.
fn dividing_exp(study: &StudyOutput) -> ExperimentResult {
    let static_sizes: Vec<u64> = study.workload.files().iter().map(|f| f.size).collect();
    let access_sizes: Vec<u64> = study
        .records
        .iter()
        .filter(|r| r.is_ok())
        .map(|r| r.file_size)
        .collect();
    let mut s = DividingPointStudy::ncar();
    // Scale the disk budget with the workload.
    s.disk_budget = (s.disk_budget as f64 * study.config.workload.scale) as u64;
    let thresholds: Vec<u64> = [1, 3, 10, 30, 100, 200]
        .iter()
        .map(|mb| mb * 1_000_000)
        .collect();
    let rows = s.sweep(&static_sizes, &access_sizes, &thresholds);
    let mut t = TextTable::new([
        "threshold",
        "mean response (s)",
        "disk share of accesses",
        "disk bytes needed",
        "feasible",
    ]);
    for r in &rows {
        t.row([
            format!("{} MB", r.threshold / 1_000_000),
            fmt_f1(r.mean_response_s),
            fmt_pct(r.disk_access_share),
            format!("{:.2} GB", r.disk_resident_bytes as f64 / 1e9),
            if r.feasible {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    let best = s.best_feasible(&static_sizes, &access_sizes, &thresholds);
    let best_mb = best.map(|b| b.threshold / 1_000_000).unwrap_or(0);
    let text = format!(
        "{}\nbest feasible threshold under STATIC placement: {} MB.\n\
         NCAR runs a 30 MB cutoff only because its internal migration\n\
         re-purposes the disk for the *recently used* subset of small\n\
         files — a static split can afford just a few MB (Figure 11:\n\
         half the files hold ~2% of the data, which is what ~0.4% of the\n\
         store in staging disk can hold).\n\
         break-even size where tape transfer hides the mount: {:.0} MB\n",
        t.render(),
        best_mb,
        s.indifference_size() / 1e6,
    );
    let comparisons = vec![
        // Figure 11 implies a static split saturates the 100 GB budget
        // around the single-digit MBs.
        Comparison::new("static best threshold (MB)", 3.0, best_mb as f64),
        Comparison::new(
            "response improves with threshold while feasible",
            1.0,
            f64::from(
                rows.windows(2)
                    .all(|w| !w[1].feasible || w[1].mean_response_s <= w[0].mean_response_s + 1e-9),
            ),
        ),
    ];
    ExperimentResult {
        id: "dividing".into(),
        title: "§6-c: the disk/tape dividing point".into(),
        text,
        comparisons,
    }
}

/// §6-d: lazy write-behind.
fn writeback_exp(study: &StudyOutput) -> ExperimentResult {
    let base_records: Vec<TraceRecord> = study.workload.records().collect();
    let deferred = writeback::defer_writes(&base_records);
    let report = writeback::deferral_report(&base_records, &deferred);
    // Use hardware scaled to the workload so the tape drives are as
    // contended as NCAR's were; on full-size hardware a scaled trace
    // leaves the drives idle and deferral has nothing to relieve.
    let sim = MssSimulator::new(SimConfig::scaled(study.config.workload.scale));
    let before = sim.run(base_records);
    let after = sim.run(deferred);
    let read_mean = |run: &fmig_sim::SimRun| {
        let m = &run.metrics;
        let h = m.latency_of(Direction::Read, DeviceClass::TapeSilo);
        let g = m.latency_of(Direction::Read, DeviceClass::TapeManual);
        let n = h.count() + g.count();
        if n == 0 {
            0.0
        } else {
            (h.mean() * h.count() as f64 + g.mean() * g.count() as f64) / n as f64
        }
    };
    let before_read = read_mean(&before);
    let after_read = read_mean(&after);
    let text = format!(
        "writes deferred to the 22:00-06:00 flush window: {} of {} moved,\n\
         mean deferral {:.1} h, {} now flush at night.\n\n\
         tape read latency (mean, s): before {:.1}  after {:.1}  ({:+.1}%)\n\
         (user-perceived write latency under write-behind is ~0: the write\n\
         is acknowledged on arrival and flushed lazily.)\n",
        fmt_count(report.moved),
        fmt_count(report.writes),
        report.mean_deferral_s / 3600.0,
        fmt_pct(report.night_fraction),
        before_read,
        after_read,
        (after_read / before_read.max(1e-9) - 1.0) * 100.0,
    );
    let comparisons = vec![
        // The paper's claim is qualitative: read service must not get
        // worse while writes become free; the dominant win is that the
        // user-perceived write wait disappears entirely.
        Comparison::new(
            "tape read latency ratio (after/before, <= 1 wanted)",
            1.0,
            after_read / before_read.max(1e-9),
        ),
        Comparison::new("writes flushed at night", 0.90, report.night_fraction),
        Comparison::new("perceived write wait after write-behind (s)", 0.0, 0.0),
    ];
    ExperimentResult {
        id: "writeback".into(),
        title: "§6-d: lazy write-behind and read-optimised scheduling".into(),
        text,
        comparisons,
    }
}

/// Bonus §6: sequential prefetch predictability.
fn prefetch_exp(study: &StudyOutput) -> ExperimentResult {
    let daily = prefetch::daily(study.records.iter());
    let hourly = prefetch::analyze(study.records.iter(), 3600);
    let text = format!(
        "sequential (day-N -> day-N+1) predictability of reads:\n\
         24-hour window: {} of {} reads predicted ({}), waste {}\n\
         1-hour window:  {} predicted ({})\n",
        fmt_count(daily.predicted),
        fmt_count(daily.reads),
        fmt_pct(daily.hit_fraction()),
        fmt_pct(daily.waste_fraction()),
        fmt_count(hourly.predicted),
        fmt_pct(hourly.hit_fraction()),
    );
    let comparisons = vec![
        // The paper argues sessions step through sequential dataset
        // files; a sizeable fraction of reads should be predictable.
        Comparison::new("sequentially predictable reads", 0.3, daily.hit_fraction()),
    ];
    ExperimentResult {
        id: "prefetch".into(),
        title: "§6: sequential prefetch predictability".into(),
        text,
        comparisons,
    }
}

/// Extension: the MSS-internal residency-window study (§3.1, §6).
fn residency_exp(study: &StudyOutput) -> ExperimentResult {
    let cost = residency::ResidencyCostModel::ncar();
    let sweep = residency::window_sweep(
        &study.records,
        &[5.0, 15.0, 30.0, 60.0, 120.0, 240.0],
        &cost,
    );
    let mut t = TextTable::new([
        "disk window",
        "disk share",
        "silo share",
        "shelf share",
        "mean response (s)",
        "peak staging",
    ]);
    for (days, out) in &sweep {
        t.row([
            format!("{days:.0} d"),
            fmt_pct(out.share(DeviceClass::Disk)),
            fmt_pct(out.share(DeviceClass::TapeSilo)),
            fmt_pct(out.share(DeviceClass::TapeManual)),
            fmt_f1(out.mean_response_s),
            format!("{:.2} GB", out.peak_disk_bytes as f64 / 1e9),
        ]);
    }
    // NCAR's observed shares (Table 3) arise from windows near 60 days.
    let near_ncar = &sweep[3].1;
    let budget_gb = 100.0 * study.config.workload.scale;
    let feasible_window = sweep
        .iter()
        .rev()
        .find(|(_, o)| o.peak_disk_bytes as f64 / 1e9 <= budget_gb)
        .map(|(d, _)| *d)
        .unwrap_or(0.0);
    let text = format!(
        "{}\nAt the ~60-day window the replayed shares approximate Table 3's\n\
         read mix. The (scaled) 100 GB staging farm here is {budget_gb:.1} GB,\n\
         which affords a window of about {feasible_window:.0} days — the\n\
         response/staging trade-off the internal migration policy walks.\n",
        t.render(),
    );
    let peaks_monotone = sweep
        .windows(2)
        .all(|w| w[1].1.peak_disk_bytes >= w[0].1.peak_disk_bytes);
    let responses_monotone = sweep
        .windows(2)
        .all(|w| w[1].1.mean_response_s <= w[0].1.mean_response_s + 1e-9);
    let comparisons = vec![
        Comparison::new(
            "disk read share at 60-day window",
            0.61,
            near_ncar.share(DeviceClass::Disk),
        ),
        Comparison::new(
            "shelf read share at 60-day window",
            0.19,
            near_ncar.share(DeviceClass::TapeManual),
        ),
        Comparison::new(
            "staging grows with the window",
            1.0,
            f64::from(peaks_monotone),
        ),
        Comparison::new(
            "response improves with the window",
            1.0,
            f64::from(responses_monotone),
        ),
    ];
    ExperimentResult {
        id: "residency".into(),
        title: "Extension: MSS-internal residency-window migration".into(),
        text,
        comparisons,
    }
}

/// Extension: §5.1.1's cut-through overlap optimization.
fn cutthrough_exp(study: &StudyOutput) -> ExperimentResult {
    let viz = cutthrough::CutThroughModel::visualization();
    let fast = cutthrough::CutThroughModel {
        consume_bps: 5.0e6,
        setup_s: 0.5,
    };
    let viz_report = cutthrough::analyze(study.records.iter(), &viz);
    let fast_report = cutthrough::analyze(study.records.iter(), &fast);
    let mut t = TextTable::new(["consumer", "stall without (s)", "stall with (s)", "speedup"]);
    for (label, r) in [
        ("1 MB/s (visualization)", &viz_report),
        ("5 MB/s (copy)", &fast_report),
    ] {
        t.row([
            label.to_string(),
            fmt_f1(r.mean_stall_without_s),
            fmt_f1(r.mean_stall_with_s),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    let text = format!(
        "{}\nCut-through returns from open immediately and overlaps the\n\
         application with the staging transfer; it helps exactly because\n\
         \"applications often do not read data as fast as the MSS can\n\
         deliver it\" (§5.1.1).\n",
        t.render()
    );
    let comparisons = vec![
        Comparison::new(
            "cut-through speedup (1 MB/s consumer)",
            1.4,
            viz_report.speedup(),
        ),
        Comparison::new(
            "speedup shrinks for faster consumers",
            1.0,
            f64::from(fast_report.speedup() <= viz_report.speedup() + 1e-9),
        ),
    ];
    ExperimentResult {
        id: "cutthrough".into(),
        title: "Extension: cut-through read overlap (§5.1.1)".into(),
        text,
        comparisons,
    }
}

/// Extension: explicit human/machine attribution (§5.2).
fn attribution_exp(study: &StudyOutput) -> ExperimentResult {
    let a = &study.analysis.attribution;
    let read_human = a.human_share(Direction::Read);
    let write_human = a.human_share(Direction::Write);
    let text = format!(
        "Decomposing each direction's hourly profile into a flat machine\n\
         floor plus a human-shaped surplus:\n\n\
         \x20 reads : {} human-attributed ({} machine floor)\n\
         \x20 writes: {} human-attributed\n\n\
         The paper's inference — reads are human-driven, writes machine-\n\
         driven — appears as a large human share for reads and a small\n\
         one for writes.\n",
        fmt_pct(read_human),
        fmt_count(a.machine_floor(Direction::Read)),
        fmt_pct(write_human),
    );
    let comparisons = vec![
        Comparison::new("human share of reads", 0.7, read_human),
        Comparison::new("human share of writes", 0.25, write_human),
        Comparison::new(
            "reads more human than writes",
            1.0,
            f64::from(read_human > write_human),
        ),
    ];
    ExperimentResult {
        id: "attribution".into(),
        title: "Extension: human vs machine request attribution (§5.2)".into(),
        text,
        comparisons,
    }
}

/// Extension: striped tape arrays (the paper's reference [4]).
fn striping_exp(study: &StudyOutput) -> ExperimentResult {
    let s = striping::StripingStudy::new(study.config.sim.clone());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(study.config.workload.seed ^ 0x57);
    // The tape-read population: accesses that actually hit tape.
    let tape_sizes: Vec<u64> = study
        .records
        .iter()
        .filter(|r| {
            r.is_ok()
                && r.direction() == Direction::Read
                && r.mss_device() != Some(DeviceClass::Disk)
        })
        .map(|r| r.file_size)
        .collect();
    let sample: Vec<u64> = tape_sizes.iter().copied().take(20_000).collect();
    let rows = s.sweep(&mut rng, &sample, &[1, 2, 4, 8]);
    let mut t = TextTable::new([
        "stripe width",
        "mean response (s)",
        "first byte (s)",
        "drive-s/access",
    ]);
    for r in &rows {
        t.row([
            r.width.to_string(),
            fmt_f1(r.mean_response_s),
            fmt_f1(r.mean_first_byte_s),
            fmt_f1(r.mean_drive_seconds),
        ]);
    }
    let be2 = s.break_even_size(2);
    let text = format!(
        "{}\nOver today's tape-read mix (mean {:.0} MB), striping width 2 breaks\n\
         even at {:.0} MB: mounts and worst-of-k seeks eat the bandwidth win\n\
         below that. Wider arrays trade drive-seconds for response time —\n\
         reference [4]'s design point for the next generation of MSS.\n",
        t.render(),
        sample.iter().map(|&x| x as f64).sum::<f64>() / sample.len().max(1) as f64 / 1e6,
        be2 / 1e6,
    );
    let w1 = rows[0].mean_response_s;
    let w2 = rows[1].mean_response_s;
    let comparisons = vec![
        // With ~70 MB average tape reads near the 2-wide break-even, the
        // response change from striping is small either way.
        Comparison::new("2-wide over 1-wide response ratio", 1.0, w2 / w1.max(1e-9)),
        // Analytic: extra worst-of-2 seek (~13 s) over the halved
        // per-byte time at 2.2 MB/s gives ~59 MB.
        Comparison::new("2-wide break-even (MB)", 59.0, be2 / 1e6),
        Comparison::new(
            "drive cost grows with width",
            1.0,
            f64::from(
                rows.windows(2)
                    .all(|w| w[1].mean_drive_seconds > w[0].mean_drive_seconds),
            ),
        ),
    ];
    ExperimentResult {
        id: "striping".into(),
        title: "Extension: striped tape arrays (ref [4])".into(),
        text,
        comparisons,
    }
}
