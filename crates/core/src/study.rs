//! End-to-end study orchestration: generate → simulate → analyze.
//!
//! [`Study`] wires the substrates together the way the paper's
//! measurement campaign did: a two-year request stream (synthetic, since
//! the NCAR logs are unavailable), the MSS hardware serving it (the
//! discrete-event simulator), and the analysis pass that produces every
//! table and figure.

use fmig_analysis::Analyzer;
use fmig_sim::{Metrics, MssSimulator, SimConfig};
use fmig_trace::TraceRecord;
use fmig_workload::{PaperTargets, Workload, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Configuration of a full study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Workload generator settings (scale, seed, calibration knobs).
    pub workload: WorkloadConfig,
    /// MSS hardware settings.
    pub sim: SimConfig,
    /// Run the device simulation to obtain latencies (Figure 3 and the
    /// Table 3 latency rows need it; the other analyses do not).
    pub simulate_devices: bool,
}

impl StudyConfig {
    /// A study at the given workload scale.
    ///
    /// The MSS hardware stays full-size at every scale: NCAR's machine
    /// room was provisioned for burst service (average drive utilisation
    /// was a few percent), so latency comes from short-term session
    /// queueing that exists at any traffic volume, not from long-term
    /// utilisation. `SimConfig::scaled` remains available for ablations.
    pub fn at_scale(scale: f64) -> Self {
        StudyConfig {
            workload: WorkloadConfig::at_scale(scale),
            sim: SimConfig::default(),
            simulate_devices: true,
        }
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self::at_scale(0.02)
    }
}

/// Everything a study run produces.
#[derive(Debug)]
pub struct StudyOutput {
    /// The configuration that produced this output.
    pub config: StudyConfig,
    /// The generated workload (namespace, file population, events).
    pub workload: Workload,
    /// The trace, annotated with simulated latencies when device
    /// simulation ran.
    pub records: Vec<TraceRecord>,
    /// Figure/table analyses over `records`.
    pub analysis: Analyzer,
    /// Simulator metrics (latency histograms, utilisation), if it ran.
    pub sim_metrics: Option<Metrics>,
    /// The paper's published values for comparison.
    pub targets: PaperTargets,
}

/// The study driver.
#[derive(Debug, Clone, Default)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study with the given configuration.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Runs the full pipeline.
    ///
    /// The analysis pass is fed record by record from the simulator's
    /// streaming sink, so analysis never requires a second sweep over the
    /// trace; the records themselves are kept because [`StudyOutput`]
    /// exposes them to the experiment registry. Sweep cells, which only
    /// need the aggregates, skip this type entirely and stream records
    /// straight into their accumulators (see [`crate::sweep`]).
    pub fn run(&self) -> StudyOutput {
        let workload = Workload::generate(&self.config.workload);
        let mut analysis = Analyzer::new();
        let mut records = Vec::with_capacity(workload.len());
        let sim_metrics = if self.config.simulate_devices {
            let sim = MssSimulator::new(self.config.sim.clone());
            let metrics = sim.run_streaming(workload.records(), |rec| {
                analysis.observe(&rec);
                records.push(rec);
            });
            Some(metrics)
        } else {
            for rec in workload.records() {
                analysis.observe(&rec);
                records.push(rec);
            }
            None
        };
        StudyOutput {
            config: self.config.clone(),
            workload,
            records,
            analysis,
            sim_metrics,
            targets: PaperTargets::ncar(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::Direction;

    fn tiny() -> StudyOutput {
        let mut config = StudyConfig::at_scale(0.002);
        config.workload.seed = 99;
        Study::new(config).run()
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let out = tiny();
        assert!(!out.records.is_empty());
        assert_eq!(out.records.len(), out.workload.len());
        assert_eq!(out.analysis.stats.raw_references, out.records.len() as u64);
        assert!(out.sim_metrics.is_some());
    }

    #[test]
    fn simulation_fills_latencies() {
        let out = tiny();
        let with_latency = out
            .records
            .iter()
            .filter(|r| r.is_ok() && r.startup_latency_s > 0)
            .count();
        // The vast majority of successful requests should have a
        // non-zero simulated startup latency.
        assert!(
            with_latency as f64 > 0.5 * out.records.len() as f64,
            "only {with_latency} of {} records have latency",
            out.records.len()
        );
        // And the analysis sees them.
        assert!(out.analysis.latency.direction_mean(Direction::Read) > 0.0);
    }

    #[test]
    fn skipping_simulation_leaves_latencies_zero() {
        let mut config = StudyConfig::at_scale(0.002);
        config.simulate_devices = false;
        let out = Study::new(config).run();
        assert!(out.sim_metrics.is_none());
        assert!(out.records.iter().all(|r| r.startup_latency_s == 0));
        // Non-latency analyses still work.
        assert!(out.analysis.files.file_count() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.records, b.records);
    }
}
