//! Scenario-sweep definitions: the matrix, its cells, and the report.
//!
//! The paper's contribution is comparative — a migration policy is only
//! good or bad *against* the alternatives, on a workload, at a scale,
//! under a cache budget. [`SweepConfig`] declares that comparison as a
//! matrix (policy × workload preset × scale × cache size); the runner
//! (see [`crate::runner`]) expands it into independent cells, executes
//! them on a deterministic worker pool, and folds the results into a
//! [`SweepReport`] with per-shard paper deltas and per-group winner
//! tables.
//!
//! # Determinism
//!
//! Every randomized stage of a cell derives its seed from the sweep's
//! `base_seed` and the cell's *coordinates* (never from scheduling
//! order), so a sweep produces byte-identical reports at any worker
//! count. Cells that share a (preset, scale) coordinate deliberately
//! share one generated trace — policies must be judged on the same
//! request stream — while distinct coordinates get distinct RNG streams
//! for both the generator and the device simulator (threaded through
//! [`WorkloadConfig::seed`] and [`fmig_sim::SimConfig::with_seed`]).

use fmig_migrate::eval::LatencyOutcome;
use fmig_migrate::policy::{
    Belady, Fifo, LargestFirst, Lru, MigrationPolicy, RandomEvict, Saac, SmallestFirst, Stp,
};
use fmig_workload::WorkloadConfig;
use serde::{Deserialize, Serialize};

/// A migration policy the sweep can instantiate, identified by a stable
/// name that survives JSON round-trips and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyId {
    /// Smith's space-time product, exponent 1.4 (his best).
    Stp14,
    /// Space-time product, exponent 1.0 (pure size × age).
    Stp10,
    /// Space-time product, exponent 2.0 (age-heavy).
    Stp20,
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// Largest file first (Lawrie's "length" criterion).
    LargestFirst,
    /// Smallest file first.
    SmallestFirst,
    /// Lawrie's space-age-activity criterion.
    Saac,
    /// Salted random eviction (baseline).
    Random,
    /// Belady's clairvoyant bound.
    Belady,
}

impl PolicyId {
    /// Every policy, in report order.
    pub const ALL: [PolicyId; 10] = [
        PolicyId::Stp14,
        PolicyId::Stp10,
        PolicyId::Stp20,
        PolicyId::Lru,
        PolicyId::Fifo,
        PolicyId::LargestFirst,
        PolicyId::SmallestFirst,
        PolicyId::Saac,
        PolicyId::Random,
        PolicyId::Belady,
    ];

    /// The stable identifier used in JSON reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyId::Stp14 => "stp1.4",
            PolicyId::Stp10 => "stp1.0",
            PolicyId::Stp20 => "stp2.0",
            PolicyId::Lru => "lru",
            PolicyId::Fifo => "fifo",
            PolicyId::LargestFirst => "largest",
            PolicyId::SmallestFirst => "smallest",
            PolicyId::Saac => "saac",
            PolicyId::Random => "random",
            PolicyId::Belady => "belady",
        }
    }

    /// Parses a stable identifier back to the policy.
    pub fn parse(s: &str) -> Option<PolicyId> {
        PolicyId::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn MigrationPolicy> {
        match self {
            PolicyId::Stp14 => Box::new(Stp::classic()),
            PolicyId::Stp10 => Box::new(Stp { exponent: 1.0 }),
            PolicyId::Stp20 => Box::new(Stp { exponent: 2.0 }),
            PolicyId::Lru => Box::new(Lru),
            PolicyId::Fifo => Box::new(Fifo),
            PolicyId::LargestFirst => Box::new(LargestFirst),
            PolicyId::SmallestFirst => Box::new(SmallestFirst),
            PolicyId::Saac => Box::new(Saac),
            PolicyId::Random => Box::new(RandomEvict { salt: 0xA5A5 }),
            PolicyId::Belady => Box::new(Belady),
        }
    }
}

/// A named workload shape: the NCAR calibration with a documented twist.
///
/// Presets vary the generator knobs that change migration *behaviour*
/// (re-read intensity, creation-write share, archive coldness); `scale`
/// stays a separate matrix axis so any preset can run from smoke-test to
/// full-trace volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PresetId {
    /// The paper's calibrated defaults.
    Ncar,
    /// Re-read heavy: higher echo probability and steeper read growth —
    /// the workload migration likes best.
    ReadHot,
    /// Write dominated: most datasets are created inside the window and
    /// echoes are rare, stressing write-behind and placement.
    WriteHeavy,
    /// Archive dominated: most datasets predate the window and residency
    /// clocks are short, stressing shelf restaging.
    Archival,
}

impl PresetId {
    /// Every preset, in report order.
    pub const ALL: [PresetId; 4] = [
        PresetId::Ncar,
        PresetId::ReadHot,
        PresetId::WriteHeavy,
        PresetId::Archival,
    ];

    /// The stable identifier used in JSON reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PresetId::Ncar => "ncar",
            PresetId::ReadHot => "read-hot",
            PresetId::WriteHeavy => "write-heavy",
            PresetId::Archival => "archival",
        }
    }

    /// Parses a stable identifier back to the preset.
    pub fn parse(s: &str) -> Option<PresetId> {
        PresetId::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The generator configuration for this preset at a scale and seed.
    pub fn workload(&self, scale: f64, seed: u64) -> WorkloadConfig {
        let base = WorkloadConfig {
            scale,
            seed,
            ..WorkloadConfig::default()
        };
        match self {
            PresetId::Ncar => base,
            PresetId::ReadHot => WorkloadConfig {
                echo_probability: 0.40,
                read_growth: 3.0,
                ..base
            },
            PresetId::WriteHeavy => WorkloadConfig {
                pre_trace_fraction: 0.08,
                echo_probability: 0.12,
                ..base
            },
            PresetId::Archival => WorkloadConfig {
                pre_trace_fraction: 0.55,
                disk_residency_days: 30.0,
                silo_residency_days: 45.0,
                ..base
            },
        }
    }
}

/// The scenario matrix: every combination of the four axes is one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Policies to compare (axis 1).
    pub policies: Vec<PolicyId>,
    /// Workload presets (axis 2).
    pub presets: Vec<PresetId>,
    /// Workload scales (axis 3).
    pub scales: Vec<f64>,
    /// Staging-disk capacities as fractions of each cell's referenced
    /// bytes (axis 4). The paper's predecessors operated near 0.015.
    pub cache_fractions: Vec<f64>,
    /// Root seed; per-shard generator and simulator seeds derive from it.
    pub base_seed: u64,
    /// Run the device simulation per shard (adds latency aggregates).
    pub simulate_devices: bool,
    /// Latency-true (closed-loop) evaluation: every cell replays its
    /// policy through the hierarchy engine, so cell results carry
    /// measured first-byte wait distributions and person-minutes derive
    /// from measured miss waits instead of the open-loop constant. Miss
    /// ratios are identical to open-loop mode by construction; the cost
    /// is one device simulation per cell instead of one per shard.
    pub latency: bool,
    /// Worker threads; 0 means one per available CPU, capped at the
    /// shard count. Any value produces the identical report.
    pub workers: usize,
}

impl SweepConfig {
    /// The smoke-test matrix CI benchmarks: three policies on the NCAR
    /// preset at a tiny scale, one cache point — 3 cells, 1 shard.
    pub fn tiny() -> Self {
        SweepConfig {
            policies: vec![PolicyId::Stp14, PolicyId::Lru, PolicyId::Belady],
            presets: vec![PresetId::Ncar],
            scales: vec![0.002],
            cache_fractions: vec![0.015],
            base_seed: 0x5357_4545, // "SWEE"
            simulate_devices: true,
            latency: false,
            workers: 0,
        }
    }

    /// A comparative matrix that still runs in seconds: five policies ×
    /// two presets × two scales × two cache sizes — 40 cells, 4 shards.
    pub fn small() -> Self {
        SweepConfig {
            policies: vec![
                PolicyId::Stp14,
                PolicyId::Lru,
                PolicyId::Fifo,
                PolicyId::Saac,
                PolicyId::Belady,
            ],
            presets: vec![PresetId::Ncar, PresetId::ReadHot],
            scales: vec![0.002, 0.004],
            cache_fractions: vec![0.005, 0.015],
            base_seed: 0x5357_4545,
            simulate_devices: true,
            latency: false,
            workers: 0,
        }
    }

    /// Number of scenario cells the matrix expands to.
    pub fn cell_count(&self) -> usize {
        self.policies.len() * self.presets.len() * self.scales.len() * self.cache_fractions.len()
    }

    /// Number of trace shards (distinct preset × scale coordinates); each
    /// shard generates and simulates one trace shared by its cells.
    pub fn shard_count(&self) -> usize {
        self.presets.len() * self.scales.len()
    }

    /// The generator seed for shard `(preset_idx, scale_idx)`.
    ///
    /// Derived from coordinates, not from execution order, so any worker
    /// can run any shard and the stream is still the cell's own.
    pub fn workload_seed(&self, preset_idx: usize, scale_idx: usize) -> u64 {
        mix(
            mix(mix(self.base_seed, 0x574B_4C44), preset_idx as u64),
            scale_idx as u64,
        )
    }

    /// The simulator seed for shard `(preset_idx, scale_idx)`; distinct
    /// from the generator seed so the two stages never share a stream.
    pub fn sim_seed(&self, preset_idx: usize, scale_idx: usize) -> u64 {
        mix(self.workload_seed(preset_idx, scale_idx), 0x5349_4D21)
    }

    /// The closed-loop hierarchy-engine seed for one latency cell.
    ///
    /// Latency mode runs one device simulation per (policy, cache
    /// fraction) cell, so every cell needs its own stream — derived from
    /// the cell's *coordinates*, never from scheduling order, like every
    /// other sweep seed.
    pub fn cell_sim_seed(
        &self,
        preset_idx: usize,
        scale_idx: usize,
        cache_idx: usize,
        policy_idx: usize,
    ) -> u64 {
        mix(
            mix(
                mix(self.sim_seed(preset_idx, scale_idx), 0x4C41_5443), // "LATC"
                cache_idx as u64,
            ),
            policy_idx as u64,
        )
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// splitmix64: the seed-derivation mixer (weak inputs, well-spread
/// outputs, no allocation).
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One paper-figure delta: the published value against this shard's
/// measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperDelta {
    /// Which published number.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// This shard's measured value.
    pub measured: f64,
}

impl PaperDelta {
    /// Measured minus paper.
    pub fn delta(&self) -> f64 {
        self.measured - self.paper
    }
}

/// One cell's outcome: a policy under a cache budget on a shard's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The policy evaluated.
    pub policy: PolicyId,
    /// The cache axis value (fraction of referenced bytes).
    pub cache_fraction: f64,
    /// The resolved staging-disk capacity in bytes.
    pub capacity_bytes: u64,
    /// Read miss ratio by references.
    pub miss_ratio: f64,
    /// Read miss ratio by bytes.
    pub byte_miss_ratio: f64,
    /// §2.3 person-minutes lost per day. In latency mode this derives
    /// from the cell's measured mean miss wait; open-loop cells charge
    /// the configured constant.
    pub person_minutes_per_day: f64,
    /// Measured first-byte wait distributions from the closed-loop run;
    /// `None` for open-loop cells.
    pub latency: Option<LatencyOutcome>,
}

/// Everything measured on one trace shard (a preset × scale coordinate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Workload preset.
    pub preset: PresetId,
    /// Workload scale.
    pub scale: f64,
    /// Seed the generator ran with.
    pub workload_seed: u64,
    /// Seed the device simulator ran with.
    pub sim_seed: u64,
    /// Trace records generated (including errors).
    pub records: u64,
    /// Files in the generated population.
    pub files: u64,
    /// Bytes referenced by the population, in GB.
    pub referenced_gb: f64,
    /// Read share of successful references.
    pub read_share: f64,
    /// Mean simulated read startup latency in seconds (0 when the device
    /// simulation is off).
    pub mean_read_latency_s: f64,
    /// Mean simulated write startup latency in seconds.
    pub mean_write_latency_s: f64,
    /// Published-vs-measured rows for the shape claims the sweep tracks.
    /// Populated only for the NCAR-calibrated preset; the other presets
    /// deviate from the paper's knobs by design, so a delta there would
    /// be noise dressed up as a fidelity check.
    pub paper_deltas: Vec<PaperDelta>,
    /// One result per (policy, cache fraction) cell, in matrix order
    /// (cache-fraction major, then policy).
    pub cells: Vec<CellResult>,
}

/// The winning policy of one (preset, scale, cache) group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Winner {
    /// Workload preset.
    pub preset: PresetId,
    /// Workload scale.
    pub scale: f64,
    /// Cache fraction.
    pub cache_fraction: f64,
    /// Best policy by read miss ratio.
    pub by_miss_ratio: PolicyId,
    /// Best policy by person-minutes per day.
    pub by_person_minutes: PolicyId,
    /// Best *practical* policy by miss ratio (Belady excluded), when the
    /// group contains a practical policy.
    pub practical: Option<PolicyId>,
    /// Best policy by mean first-byte read wait; latency mode only.
    pub by_mean_wait: Option<PolicyId>,
    /// Best policy by p99 first-byte read wait; latency mode only.
    pub by_p99_wait: Option<PolicyId>,
}

/// The comparative output of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Root seed the sweep derived every cell seed from.
    pub base_seed: u64,
    /// Whether shards ran the device simulation.
    pub simulated_devices: bool,
    /// Whether cells ran latency-true (closed-loop) evaluation.
    pub latency_mode: bool,
    /// One report per trace shard, in matrix order (preset major).
    pub shards: Vec<ShardReport>,
    /// One winner row per (preset, scale, cache) group.
    pub winners: Vec<Winner>,
}

impl SweepReport {
    /// Fills the winner table from the shard cells. Ties go to the first
    /// policy in the shard's cell order, which is the matrix order —
    /// deterministic by construction.
    pub(crate) fn compute_winners(&mut self) {
        self.winners.clear();
        for shard in &self.shards {
            let mut fractions: Vec<f64> = Vec::new();
            for cell in &shard.cells {
                if !fractions.contains(&cell.cache_fraction) {
                    fractions.push(cell.cache_fraction);
                }
            }
            for frac in fractions {
                let group: Vec<&CellResult> = shard
                    .cells
                    .iter()
                    .filter(|c| c.cache_fraction == frac)
                    .collect();
                let best = |key: fn(&CellResult) -> f64| {
                    group
                        .iter()
                        .fold(None::<&&CellResult>, |acc, c| match acc {
                            Some(a) if key(a) <= key(c) => Some(a),
                            _ => Some(c),
                        })
                        .expect("non-empty winner group")
                        .policy
                };
                let practical = group
                    .iter()
                    .filter(|c| c.policy != PolicyId::Belady)
                    .fold(None::<&&CellResult>, |acc, c| match acc {
                        Some(a) if a.miss_ratio <= c.miss_ratio => Some(a),
                        _ => Some(c),
                    })
                    .map(|c| c.policy);
                // Latency columns exist only when every cell in the
                // group carries a closed-loop measurement.
                let best_wait = |key: fn(&LatencyOutcome) -> f64| -> Option<PolicyId> {
                    if !group.iter().all(|c| c.latency.is_some()) {
                        return None;
                    }
                    group
                        .iter()
                        .fold(None::<&&CellResult>, |acc, c| match acc {
                            Some(a)
                                if key(&a.latency.expect("checked above"))
                                    <= key(&c.latency.expect("checked above")) =>
                            {
                                Some(a)
                            }
                            _ => Some(c),
                        })
                        .map(|c| c.policy)
                };
                self.winners.push(Winner {
                    preset: shard.preset,
                    scale: shard.scale,
                    cache_fraction: frac,
                    by_miss_ratio: best(|c| c.miss_ratio),
                    by_person_minutes: best(|c| c.person_minutes_per_day),
                    practical,
                    by_mean_wait: best_wait(|l| l.mean_read_wait_s),
                    by_p99_wait: best_wait(|l| l.p99_read_wait_s),
                });
            }
        }
    }

    /// Serializes the report as deterministic JSON: fixed key order,
    /// shortest-round-trip float formatting, no timing or host data. Two
    /// runs of the same matrix — at any worker count — produce identical
    /// bytes, which is what the CI artifact diff and the determinism test
    /// key on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"base_seed\": ");
        out.push_str(&self.base_seed.to_string());
        out.push_str(",\n  \"simulated_devices\": ");
        out.push_str(if self.simulated_devices {
            "true"
        } else {
            "false"
        });
        out.push_str(",\n  \"latency_mode\": ");
        out.push_str(if self.latency_mode { "true" } else { "false" });
        out.push_str(",\n  \"shards\": [");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            shard_json(&mut out, shard);
        }
        out.push_str("\n  ],\n  \"winners\": [");
        for (i, w) in self.winners.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"preset\": ");
            json_str(&mut out, w.preset.name());
            out.push_str(", \"scale\": ");
            json_f64(&mut out, w.scale);
            out.push_str(", \"cache_fraction\": ");
            json_f64(&mut out, w.cache_fraction);
            out.push_str(", \"by_miss_ratio\": ");
            json_str(&mut out, w.by_miss_ratio.name());
            out.push_str(", \"by_person_minutes\": ");
            json_str(&mut out, w.by_person_minutes.name());
            out.push_str(", \"practical\": ");
            match w.practical {
                Some(p) => json_str(&mut out, p.name()),
                None => out.push_str("null"),
            }
            out.push_str(", \"by_mean_wait\": ");
            match w.by_mean_wait {
                Some(p) => json_str(&mut out, p.name()),
                None => out.push_str("null"),
            }
            out.push_str(", \"by_p99_wait\": ");
            match w.by_p99_wait {
                Some(p) => json_str(&mut out, p.name()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the winner table and per-shard summaries as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for shard in &self.shards {
            out.push_str(&format!(
                "shard {}/{:<6} {} records, {} files, {:.2} GB referenced, read share {:.1}%\n",
                shard.preset.name(),
                shard.scale,
                shard.records,
                shard.files,
                shard.referenced_gb,
                shard.read_share * 100.0,
            ));
            for delta in &shard.paper_deltas {
                out.push_str(&format!(
                    "  paper {:<28} {:>8.3} measured {:>8.3}\n",
                    delta.metric, delta.paper, delta.measured
                ));
            }
            for cell in &shard.cells {
                out.push_str(&format!(
                    "  cache {:>5.2}% {:<9} miss {:>6.2}% byte-miss {:>6.2}% person-min/day {:>10.1}",
                    cell.cache_fraction * 100.0,
                    cell.policy.name(),
                    cell.miss_ratio * 100.0,
                    cell.byte_miss_ratio * 100.0,
                    cell.person_minutes_per_day,
                ));
                if let Some(l) = &cell.latency {
                    out.push_str(&format!(
                        " wait mean {:>6.1}s p99 {:>6.1}s coalesced {}",
                        l.mean_read_wait_s, l.p99_read_wait_s, l.delayed_hits,
                    ));
                }
                out.push('\n');
            }
        }
        out.push_str("winners:\n");
        for w in &self.winners {
            out.push_str(&format!(
                "  {}/{} @ cache {:.2}%: miss-ratio {} | person-minutes {} | practical {}",
                w.preset.name(),
                w.scale,
                w.cache_fraction * 100.0,
                w.by_miss_ratio.name(),
                w.by_person_minutes.name(),
                w.practical.map_or("-", |p| p.name()),
            ));
            if let (Some(mean), Some(p99)) = (w.by_mean_wait, w.by_p99_wait) {
                out.push_str(&format!(
                    " | mean-wait {} | p99-wait {}",
                    mean.name(),
                    p99.name()
                ));
            }
            out.push('\n');
        }
        out
    }
}

fn shard_json(out: &mut String, s: &ShardReport) {
    out.push_str("{\"preset\": ");
    json_str(out, s.preset.name());
    out.push_str(", \"scale\": ");
    json_f64(out, s.scale);
    out.push_str(", \"workload_seed\": ");
    out.push_str(&s.workload_seed.to_string());
    out.push_str(", \"sim_seed\": ");
    out.push_str(&s.sim_seed.to_string());
    out.push_str(", \"records\": ");
    out.push_str(&s.records.to_string());
    out.push_str(", \"files\": ");
    out.push_str(&s.files.to_string());
    out.push_str(", \"referenced_gb\": ");
    json_f64(out, s.referenced_gb);
    out.push_str(", \"read_share\": ");
    json_f64(out, s.read_share);
    out.push_str(", \"mean_read_latency_s\": ");
    json_f64(out, s.mean_read_latency_s);
    out.push_str(", \"mean_write_latency_s\": ");
    json_f64(out, s.mean_write_latency_s);
    out.push_str(", \"paper_deltas\": [");
    for (i, d) in s.paper_deltas.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"metric\": ");
        json_str(out, &d.metric);
        out.push_str(", \"paper\": ");
        json_f64(out, d.paper);
        out.push_str(", \"measured\": ");
        json_f64(out, d.measured);
        out.push('}');
    }
    out.push_str("], \"cells\": [");
    for (i, c) in s.cells.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"policy\": ");
        json_str(out, c.policy.name());
        out.push_str(", \"cache_fraction\": ");
        json_f64(out, c.cache_fraction);
        out.push_str(", \"capacity_bytes\": ");
        out.push_str(&c.capacity_bytes.to_string());
        out.push_str(", \"miss_ratio\": ");
        json_f64(out, c.miss_ratio);
        out.push_str(", \"byte_miss_ratio\": ");
        json_f64(out, c.byte_miss_ratio);
        out.push_str(", \"person_minutes_per_day\": ");
        json_f64(out, c.person_minutes_per_day);
        out.push_str(", \"latency\": ");
        match &c.latency {
            None => out.push_str("null"),
            Some(l) => {
                out.push_str("{\"mean_read_wait_s\": ");
                json_f64(out, l.mean_read_wait_s);
                out.push_str(", \"p99_read_wait_s\": ");
                json_f64(out, l.p99_read_wait_s);
                out.push_str(", \"mean_miss_wait_s\": ");
                json_f64(out, l.mean_miss_wait_s);
                out.push_str(", \"mean_delayed_wait_s\": ");
                json_f64(out, l.mean_delayed_wait_s);
                out.push_str(", \"delayed_hits\": ");
                out.push_str(&l.delayed_hits.to_string());
                out.push_str(", \"recalls\": ");
                out.push_str(&l.recalls.to_string());
                out.push_str(", \"flush_bytes\": ");
                out.push_str(&l.flush_bytes.to_string());
                out.push_str(", \"mean_flush_queue_s\": ");
                json_f64(out, l.mean_flush_queue_s);
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Writes a JSON string literal (the report only carries ASCII
/// identifiers, but escape defensively).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 with Rust's shortest-round-trip formatting — stable for
/// identical bits, which deterministic cells guarantee. Non-finite values
/// (which no metric should produce) become `null` rather than invalid
/// JSON.
fn json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ids_round_trip() {
        for p in PolicyId::ALL {
            assert_eq!(PolicyId::parse(p.name()), Some(p));
            // The instantiated policy self-describes consistently.
            assert!(!p.build().name().is_empty());
        }
        assert_eq!(PolicyId::parse("nope"), None);
    }

    #[test]
    fn preset_ids_round_trip() {
        for p in PresetId::ALL {
            assert_eq!(PresetId::parse(p.name()), Some(p));
            let cfg = p.workload(0.01, 7);
            assert_eq!(cfg.scale, 0.01);
            assert_eq!(cfg.seed, 7);
        }
    }

    #[test]
    fn seeds_differ_per_coordinate_and_stage() {
        let cfg = SweepConfig::small();
        let mut seen = std::collections::HashSet::new();
        for p in 0..cfg.presets.len() {
            for s in 0..cfg.scales.len() {
                assert!(seen.insert(cfg.workload_seed(p, s)), "workload seed reused");
                assert!(seen.insert(cfg.sim_seed(p, s)), "sim seed reused");
                for c in 0..cfg.cache_fractions.len() {
                    for pol in 0..cfg.policies.len() {
                        assert!(
                            seen.insert(cfg.cell_sim_seed(p, s, c, pol)),
                            "cell sim seed reused"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_counts() {
        let cfg = SweepConfig::small();
        assert_eq!(cfg.cell_count(), 5 * 2 * 2 * 2);
        assert_eq!(cfg.shard_count(), 4);
        assert_eq!(SweepConfig::tiny().cell_count(), 3);
        assert_eq!(SweepConfig::tiny().shard_count(), 1);
    }

    #[test]
    fn json_escapes_and_floats() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000a\"");
        let mut f = String::new();
        json_f64(&mut f, 0.015);
        assert_eq!(f, "0.015");
        let mut nan = String::new();
        json_f64(&mut nan, f64::NAN);
        assert_eq!(nan, "null");
    }

    fn test_report(cells: Vec<CellResult>) -> SweepReport {
        SweepReport {
            base_seed: 0,
            simulated_devices: false,
            latency_mode: false,
            shards: vec![ShardReport {
                preset: PresetId::Ncar,
                scale: 0.002,
                workload_seed: 0,
                sim_seed: 0,
                records: 0,
                files: 0,
                referenced_gb: 0.0,
                read_share: 0.0,
                mean_read_latency_s: 0.0,
                mean_write_latency_s: 0.0,
                paper_deltas: vec![],
                cells,
            }],
            winners: vec![],
        }
    }

    fn cell(policy: PolicyId, miss: f64, pm: f64) -> CellResult {
        CellResult {
            policy,
            cache_fraction: 0.01,
            capacity_bytes: 1,
            miss_ratio: miss,
            byte_miss_ratio: miss,
            person_minutes_per_day: pm,
            latency: None,
        }
    }

    #[test]
    fn winners_pick_the_minimum_and_exclude_belady_from_practical() {
        let mut report = test_report(vec![
            cell(PolicyId::Belady, 0.10, 5.0),
            cell(PolicyId::Lru, 0.30, 1.0),
            cell(PolicyId::Stp14, 0.20, 2.0),
        ]);
        report.compute_winners();
        assert_eq!(report.winners.len(), 1);
        let w = &report.winners[0];
        assert_eq!(w.by_miss_ratio, PolicyId::Belady);
        assert_eq!(w.by_person_minutes, PolicyId::Lru);
        assert_eq!(w.practical, Some(PolicyId::Stp14));
        // No latency measurements: the wait columns stay empty.
        assert_eq!(w.by_mean_wait, None);
        assert_eq!(w.by_p99_wait, None);
    }

    #[test]
    fn latency_winner_columns_rank_by_measured_waits() {
        let lat = |mean: f64, p99: f64| LatencyOutcome {
            mean_read_wait_s: mean,
            p99_read_wait_s: p99,
            mean_miss_wait_s: 60.0,
            mean_delayed_wait_s: 5.0,
            delayed_hits: 3,
            recalls: 10,
            flush_bytes: 0,
            mean_flush_queue_s: 0.0,
        };
        let mut cells = vec![
            cell(PolicyId::Lru, 0.30, 1.0),
            cell(PolicyId::Stp14, 0.20, 2.0),
        ];
        // LRU has the better mean, STP the better tail.
        cells[0].latency = Some(lat(10.0, 300.0));
        cells[1].latency = Some(lat(12.0, 150.0));
        let mut report = test_report(cells);
        report.latency_mode = true;
        report.compute_winners();
        let w = &report.winners[0];
        assert_eq!(w.by_mean_wait, Some(PolicyId::Lru));
        assert_eq!(w.by_p99_wait, Some(PolicyId::Stp14));
        // Both the JSON and the text rendering carry the new columns.
        let json = report.to_json();
        assert!(json.contains("\"latency_mode\": true"));
        assert!(json.contains("\"p99_read_wait_s\": 150.0"));
        assert!(json.contains("\"by_p99_wait\": \"stp1.4\""));
        let text = report.render();
        assert!(text.contains("p99-wait stp1.4"));
        assert!(text.contains("mean-wait lru"));
    }
}
