//! Scenario-sweep definitions: the matrix, its cells, and the report.
//!
//! The paper's contribution is comparative — a migration policy is only
//! good or bad *against* the alternatives, on a workload, at a scale,
//! under a cache budget. [`SweepConfig`] declares that comparison as a
//! matrix (policy × workload preset × scale × cache size); the runner
//! (see [`crate::runner`]) expands it into independent cells, executes
//! them on a deterministic worker pool, and folds the results into a
//! [`SweepReport`] with per-shard paper deltas and per-group winner
//! tables.
//!
//! # Determinism
//!
//! Every randomized stage of a cell derives its seed from the sweep's
//! `base_seed` and the cell's *coordinates* (never from scheduling
//! order), so a sweep produces byte-identical reports at any worker
//! count. Cells that share a (preset, scale) coordinate deliberately
//! share one generated trace — policies must be judged on the same
//! request stream — while distinct coordinates get distinct RNG streams
//! for both the generator and the device simulator (threaded through
//! [`WorkloadConfig::seed`] and [`fmig_sim::SimConfig::with_seed`]).

use fmig_migrate::eval::LatencyOutcome;
use fmig_migrate::policy::{
    Belady, Fifo, LargestFirst, Lru, LruMad, MigrationPolicy, RandomEvict, Saac, SmallestFirst,
    Stp, StpLat,
};
use fmig_sim::fault::{FaultPlan, FaultTarget, OutageClause, SlowDriveClause};
use fmig_workload::WorkloadConfig;
use serde::{Deserialize, Serialize};

/// A migration policy the sweep can instantiate, identified by a stable
/// name that survives JSON round-trips and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyId {
    /// Smith's space-time product, exponent 1.4 (his best).
    Stp14,
    /// Space-time product, exponent 1.0 (pure size × age).
    Stp10,
    /// Space-time product, exponent 2.0 (age-heavy).
    Stp20,
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// Largest file first (Lawrie's "length" criterion).
    LargestFirst,
    /// Smallest file first.
    SmallestFirst,
    /// Lawrie's space-age-activity criterion.
    Saac,
    /// Salted random eviction (baseline).
    Random,
    /// Belady's clairvoyant bound.
    Belady,
    /// Latency-aware LRU: minimise aggregate delay (delayed-hits model).
    LruMad,
    /// Latency-aware space-time product: recall wait folded into STP(1.4).
    StpLat,
}

impl PolicyId {
    /// Every policy, in report order.
    pub const ALL: [PolicyId; 12] = [
        PolicyId::Stp14,
        PolicyId::Stp10,
        PolicyId::Stp20,
        PolicyId::Lru,
        PolicyId::Fifo,
        PolicyId::LargestFirst,
        PolicyId::SmallestFirst,
        PolicyId::Saac,
        PolicyId::Random,
        PolicyId::Belady,
        PolicyId::LruMad,
        PolicyId::StpLat,
    ];

    /// The stable identifier used in JSON reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyId::Stp14 => "stp1.4",
            PolicyId::Stp10 => "stp1.0",
            PolicyId::Stp20 => "stp2.0",
            PolicyId::Lru => "lru",
            PolicyId::Fifo => "fifo",
            PolicyId::LargestFirst => "largest",
            PolicyId::SmallestFirst => "smallest",
            PolicyId::Saac => "saac",
            PolicyId::Random => "random",
            PolicyId::Belady => "belady",
            PolicyId::LruMad => "lru-mad",
            PolicyId::StpLat => "stp-lat",
        }
    }

    /// Parses a stable identifier back to the policy.
    pub fn parse(s: &str) -> Option<PolicyId> {
        PolicyId::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn MigrationPolicy> {
        match self {
            PolicyId::Stp14 => Box::new(Stp::classic()),
            PolicyId::Stp10 => Box::new(Stp { exponent: 1.0 }),
            PolicyId::Stp20 => Box::new(Stp { exponent: 2.0 }),
            PolicyId::Lru => Box::new(Lru),
            PolicyId::Fifo => Box::new(Fifo),
            PolicyId::LargestFirst => Box::new(LargestFirst),
            PolicyId::SmallestFirst => Box::new(SmallestFirst),
            PolicyId::Saac => Box::new(Saac),
            PolicyId::Random => Box::new(RandomEvict { salt: 0xA5A5 }),
            PolicyId::Belady => Box::new(Belady),
            PolicyId::LruMad => Box::new(LruMad::classic()),
            PolicyId::StpLat => Box::new(StpLat::classic()),
        }
    }

    /// Whether the policy reads the miss-latency feedback channel.
    ///
    /// Latency-aware cells diverge between open-loop and closed-loop
    /// evaluation: the closed loop feeds them live recall-wait EWMAs
    /// while the open loop only offers the `wait_s_per_miss` constant,
    /// so their victim choices — and hence miss ratios — may differ.
    pub fn latency_aware(&self) -> bool {
        self.build().latency_aware()
    }

    /// Which victim-ranking regime the replay core runs this policy
    /// under, probed through the same contract hooks the cache uses:
    /// `"affine"` (incremental monotone-queue/lazy-heap index),
    /// `"kinetic"` (certificate-carrying tournament for time-varying
    /// priorities), or `"rescan"` (the exact O(n) fallback — reachable
    /// for shipped policies only by degradation, never as a default;
    /// a test enforces that). Recency-keyed policies additionally take
    /// the shared-log fast path in the MRC engine, but rank as
    /// `"affine"` in a lone cache.
    pub fn rank_regime(&self) -> &'static str {
        use fmig_trace::FileId;
        let policy = self.build();
        let probe = fmig_migrate::policy::FileView {
            id: FileId::new(0),
            size: 1 << 20,
            last_ref: 60,
            created: 0,
            ref_count: 1,
            next_use: None,
            est_miss_wait_s: 0.0,
        };
        if policy.affine(&probe).is_some() {
            "affine"
        } else if policy.kinetic(&probe, 61).is_some() {
            "kinetic"
        } else {
            "rescan"
        }
    }
}

/// A named workload shape: the NCAR calibration with a documented twist.
///
/// Presets vary the generator knobs that change migration *behaviour*
/// (re-read intensity, creation-write share, archive coldness); `scale`
/// stays a separate matrix axis so any preset can run from smoke-test to
/// full-trace volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PresetId {
    /// The paper's calibrated defaults.
    Ncar,
    /// Re-read heavy: higher echo probability and steeper read growth —
    /// the workload migration likes best.
    ReadHot,
    /// Write dominated: most datasets are created inside the window and
    /// echoes are rare, stressing write-behind and placement.
    WriteHeavy,
    /// Archive dominated: most datasets predate the window and residency
    /// clocks are short, stressing shelf restaging.
    Archival,
    /// A real trace imported into the columnar replay store
    /// (`fmig_trace::ingest::store`) rather than generated. The shard's
    /// workload comes from [`SweepConfig::trace_store`], so this preset
    /// has no generator configuration and never appears in
    /// [`PresetId::ALL`].
    Imported,
}

impl PresetId {
    /// Every *generator* preset, in report order. [`PresetId::Imported`]
    /// is deliberately absent: it describes an external trace, not a
    /// generator configuration, so matrix helpers that instantiate
    /// workloads can iterate `ALL` safely.
    pub const ALL: [PresetId; 4] = [
        PresetId::Ncar,
        PresetId::ReadHot,
        PresetId::WriteHeavy,
        PresetId::Archival,
    ];

    /// The stable identifier used in JSON reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PresetId::Ncar => "ncar",
            PresetId::ReadHot => "read-hot",
            PresetId::WriteHeavy => "write-heavy",
            PresetId::Archival => "archival",
            PresetId::Imported => "imported",
        }
    }

    /// Parses a stable identifier back to the preset.
    pub fn parse(s: &str) -> Option<PresetId> {
        if s == PresetId::Imported.name() {
            return Some(PresetId::Imported);
        }
        PresetId::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The generator configuration for this preset at a scale and seed.
    ///
    /// # Panics
    ///
    /// Panics for [`PresetId::Imported`], which replays a stored trace
    /// instead of generating one — the runner routes it to the columnar
    /// store before ever asking for a generator.
    pub fn workload(&self, scale: f64, seed: u64) -> WorkloadConfig {
        assert!(
            *self != PresetId::Imported,
            "the `imported` preset replays a trace store and has no generator config"
        );
        let base = WorkloadConfig {
            scale,
            seed,
            ..WorkloadConfig::default()
        };
        match self {
            PresetId::Ncar => base,
            PresetId::ReadHot => WorkloadConfig {
                echo_probability: 0.40,
                read_growth: 3.0,
                ..base
            },
            PresetId::WriteHeavy => WorkloadConfig {
                pre_trace_fraction: 0.08,
                echo_probability: 0.12,
                ..base
            },
            PresetId::Archival => WorkloadConfig {
                pre_trace_fraction: 0.55,
                disk_residency_days: 30.0,
                silo_residency_days: 45.0,
                ..base
            },
            PresetId::Imported => unreachable!("rejected above"),
        }
    }
}

/// A named degraded-mode scenario for the fault axis: a stable
/// identifier (JSON / CLI) mapping to a concrete [`FaultPlan`].
///
/// Scenarios are *descriptions*; the concrete outage windows and
/// read-error decisions derive from each cell's seed, so the same
/// matrix always degrades the same way. `None` is the healthy system —
/// a matrix whose fault axis is `[None]` (the default) produces
/// byte-identical reports to the pre-fault engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScenarioId {
    /// No faults: the healthy hierarchy.
    None,
    /// Media read errors on recalls with bounded retry — the classic
    /// "dirty heads" week.
    FlakyReads,
    /// Drive failures with multi-hour repair windows on both tape
    /// tiers.
    DriveCrunch,
    /// Mounter outages: operator shifts go unstaffed, the robot arm
    /// sees occasional maintenance.
    OperatorStrike,
    /// The compound worst case: read errors, silo drive failures, and
    /// slow-drive degradation windows at once.
    DegradedPeak,
}

impl FaultScenarioId {
    /// Every scenario, in report order.
    pub const ALL: [FaultScenarioId; 5] = [
        FaultScenarioId::None,
        FaultScenarioId::FlakyReads,
        FaultScenarioId::DriveCrunch,
        FaultScenarioId::OperatorStrike,
        FaultScenarioId::DegradedPeak,
    ];

    /// The stable identifier used in JSON reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenarioId::None => "none",
            FaultScenarioId::FlakyReads => "flaky-reads",
            FaultScenarioId::DriveCrunch => "drive-crunch",
            FaultScenarioId::OperatorStrike => "operator-strike",
            FaultScenarioId::DegradedPeak => "degraded-peak",
        }
    }

    /// Parses a stable identifier back to the scenario.
    pub fn parse(s: &str) -> Option<FaultScenarioId> {
        FaultScenarioId::ALL.into_iter().find(|f| f.name() == s)
    }

    /// The fault plan this scenario injects.
    pub fn plan(&self) -> FaultPlan {
        let outage = |target, mean_up_s, down_s| OutageClause {
            target,
            mean_up_s,
            down_s,
            jitter: 0.3,
        };
        match self {
            FaultScenarioId::None => FaultPlan::none(),
            FaultScenarioId::FlakyReads => FaultPlan {
                read_error_prob: 0.12,
                max_read_retries: 3,
                retry_backoff_s: 60.0,
                ..FaultPlan::none()
            },
            FaultScenarioId::DriveCrunch => FaultPlan {
                outages: vec![
                    outage(FaultTarget::SiloDrive, 6.0 * 3600.0, 2_700.0),
                    outage(FaultTarget::ManualDrive, 12.0 * 3600.0, 7_200.0),
                ],
                ..FaultPlan::none()
            },
            FaultScenarioId::OperatorStrike => FaultPlan {
                outages: vec![
                    outage(FaultTarget::Operator, 8.0 * 3600.0, 4.0 * 3600.0),
                    outage(FaultTarget::RobotArm, 24.0 * 3600.0, 1_800.0),
                ],
                ..FaultPlan::none()
            },
            FaultScenarioId::DegradedPeak => FaultPlan {
                outages: vec![outage(FaultTarget::SiloDrive, 8.0 * 3600.0, 3_600.0)],
                read_error_prob: 0.08,
                max_read_retries: 2,
                retry_backoff_s: 45.0,
                slow_drive: Some(SlowDriveClause {
                    rate_factor: 0.5,
                    mean_up_s: 4.0 * 3600.0,
                    down_s: 1.5 * 3600.0,
                }),
            },
        }
    }
}

/// The scenario matrix: every combination of the five axes is one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Policies to compare (axis 1).
    pub policies: Vec<PolicyId>,
    /// Workload presets (axis 2).
    pub presets: Vec<PresetId>,
    /// Workload scales (axis 3).
    pub scales: Vec<f64>,
    /// Staging-disk capacities as fractions of each cell's referenced
    /// bytes (axis 4). The paper's predecessors operated near 0.015.
    pub cache_fractions: Vec<f64>,
    /// Root seed; per-shard generator and simulator seeds derive from it.
    pub base_seed: u64,
    /// Run the device simulation per shard (adds latency aggregates).
    pub simulate_devices: bool,
    /// Latency-true (closed-loop) evaluation: every cell replays its
    /// policy through the hierarchy engine, so cell results carry
    /// measured first-byte wait distributions and person-minutes derive
    /// from measured miss waits instead of the open-loop constant. For
    /// latency-blind policies the miss ratios are identical to open-loop
    /// mode by construction; latency-aware policies (those whose
    /// [`fmig_migrate::MigrationPolicy::latency_aware`] returns `true`)
    /// see the engine's live recall-wait feedback and may evict
    /// differently than the open-loop replay, which only offers them the
    /// `wait_s_per_miss` constant. The cost is one device simulation per
    /// cell instead of one per shard.
    pub latency: bool,
    /// Fault-scenario axis (axis 5). Every scenario expands the matrix
    /// like any other axis; non-`None` scenarios are inherently
    /// closed-loop (the faults live in the device model), so their
    /// cells run the hierarchy engine even when `latency` is off, and
    /// their results carry degraded-mode metrics. `[None]` — the
    /// default — reproduces the pre-fault report byte for byte. An
    /// empty vector behaves as `[None]`.
    pub faults: Vec<FaultScenarioId>,
    /// Worker threads; 0 means one per available CPU, capped at each
    /// phase's task count (shards during preparation, cell units during
    /// execution). Any value produces the identical report.
    pub workers: usize,
    /// Columnar replay-store directory backing [`PresetId::Imported`]
    /// shards (see `fmig_trace::ingest::store`). Must be `Some` whenever
    /// the preset axis contains `Imported`, and shows up in the report
    /// JSON as a `"trace"` config key only then — generated matrices
    /// keep the pre-ingestion schema byte for byte. Imported shards
    /// replay the store in streaming chunks, so even multi-GB traces
    /// never materialize in memory; they support open-loop evaluation
    /// only (no `latency`, no fault axis).
    pub trace_store: Option<String>,
}

impl SweepConfig {
    /// The smoke-test matrix CI benchmarks: five policies (including
    /// both latency-aware entrants) on the NCAR preset at a tiny scale,
    /// one cache point, healthy plus one compound fault scenario —
    /// 10 cells, 1 shard.
    pub fn tiny() -> Self {
        SweepConfig {
            policies: vec![
                PolicyId::Stp14,
                PolicyId::Lru,
                PolicyId::Belady,
                PolicyId::LruMad,
                PolicyId::StpLat,
            ],
            presets: vec![PresetId::Ncar],
            scales: vec![0.002],
            cache_fractions: vec![0.015],
            base_seed: 0x5357_4545, // "SWEE"
            simulate_devices: true,
            latency: false,
            faults: vec![FaultScenarioId::None, FaultScenarioId::DegradedPeak],
            workers: 0,
            trace_store: None,
        }
    }

    /// A comparative matrix that still runs in seconds: five policies ×
    /// two presets × two scales × two cache sizes — 40 cells, 4 shards.
    pub fn small() -> Self {
        SweepConfig {
            policies: vec![
                PolicyId::Stp14,
                PolicyId::Lru,
                PolicyId::Fifo,
                PolicyId::Saac,
                PolicyId::Belady,
            ],
            presets: vec![PresetId::Ncar, PresetId::ReadHot],
            scales: vec![0.002, 0.004],
            cache_fractions: vec![0.005, 0.015],
            base_seed: 0x5357_4545,
            simulate_devices: true,
            latency: false,
            faults: vec![FaultScenarioId::None],
            workers: 0,
            trace_store: None,
        }
    }

    /// The scaling matrix: one policy, one open-loop cell, at a scale
    /// that interns ~1 million distinct files (≈1.1× the paper's 900 k
    /// store, ~4 M raw references). Devices and latency are off — the
    /// point of this preset is the replay hot path itself: it must
    /// complete a single-policy open-loop sweep cell under bounded
    /// memory, which the dense-id arenas make a matter of one
    /// `Vec<PreparedRef>` plus flat per-file state.
    pub fn large() -> Self {
        SweepConfig {
            policies: vec![PolicyId::Lru],
            presets: vec![PresetId::Ncar],
            scales: vec![1.1],
            cache_fractions: vec![0.015],
            base_seed: 0x5357_4545,
            simulate_devices: false,
            latency: false,
            faults: vec![FaultScenarioId::None],
            workers: 0,
            trace_store: None,
        }
    }

    /// [`SweepConfig::large`] pushed to ~4× the paper's store (~3.6 M
    /// distinct files): a headroom check that the `u32` id space and
    /// the arena layout keep scaling past anything the trace needs.
    pub fn huge() -> Self {
        SweepConfig {
            scales: vec![4.0],
            ..Self::large()
        }
    }

    /// An open-loop matrix over one imported trace store: the five
    /// comparison policies at the classic cache fractions. Imported
    /// shards carry no generator scale — the axis is pinned to `1.0` so
    /// seed derivation and report keys stay well-defined.
    pub fn imported(store_dir: &str) -> Self {
        SweepConfig {
            policies: vec![
                PolicyId::Stp14,
                PolicyId::Lru,
                PolicyId::Fifo,
                PolicyId::Saac,
                PolicyId::Belady,
            ],
            presets: vec![PresetId::Imported],
            scales: vec![1.0],
            cache_fractions: vec![0.005, 0.015, 0.05],
            base_seed: 0x5357_4545,
            simulate_devices: false,
            latency: false,
            faults: vec![FaultScenarioId::None],
            workers: 0,
            trace_store: Some(store_dir.to_string()),
        }
    }

    /// The fault axis with the empty-vector fallback applied.
    pub fn fault_axis(&self) -> Vec<FaultScenarioId> {
        if self.faults.is_empty() {
            vec![FaultScenarioId::None]
        } else {
            self.faults.clone()
        }
    }

    /// Number of scenario cells the matrix expands to.
    pub fn cell_count(&self) -> usize {
        self.policies.len()
            * self.presets.len()
            * self.scales.len()
            * self.cache_fractions.len()
            * self.fault_axis().len()
    }

    /// Number of trace shards (distinct preset × scale coordinates); each
    /// shard generates and simulates one trace shared by its cells.
    pub fn shard_count(&self) -> usize {
        self.presets.len() * self.scales.len()
    }

    /// The generator seed for shard `(preset_idx, scale_idx)`.
    ///
    /// Derived from coordinates, not from execution order, so any worker
    /// can run any shard and the stream is still the cell's own.
    pub fn workload_seed(&self, preset_idx: usize, scale_idx: usize) -> u64 {
        mix(
            mix(mix(self.base_seed, 0x574B_4C44), preset_idx as u64),
            scale_idx as u64,
        )
    }

    /// The simulator seed for shard `(preset_idx, scale_idx)`; distinct
    /// from the generator seed so the two stages never share a stream.
    pub fn sim_seed(&self, preset_idx: usize, scale_idx: usize) -> u64 {
        mix(self.workload_seed(preset_idx, scale_idx), 0x5349_4D21)
    }

    /// The closed-loop hierarchy-engine seed for one latency cell.
    ///
    /// Latency mode runs one device simulation per (policy, cache
    /// fraction) cell, so every cell needs its own stream — derived from
    /// the cell's *coordinates*, never from scheduling order, like every
    /// other sweep seed.
    pub fn cell_sim_seed(
        &self,
        preset_idx: usize,
        scale_idx: usize,
        cache_idx: usize,
        policy_idx: usize,
    ) -> u64 {
        mix(
            mix(
                mix(self.sim_seed(preset_idx, scale_idx), 0x4C41_5443), // "LATC"
                cache_idx as u64,
            ),
            policy_idx as u64,
        )
    }

    /// The hierarchy-engine seed for one cell of the fault axis.
    ///
    /// The healthy scenario (`None`) keeps the pre-fault
    /// [`SweepConfig::cell_sim_seed`] untouched — that is what makes a
    /// `[None]` axis byte-identical to the old engine — while every
    /// fault scenario derives a distinct stream from the same
    /// coordinates plus its *position* on the axis, so its outage
    /// windows and device noise decorrelate from the healthy twin and
    /// from each other.
    pub fn cell_fault_seed(
        &self,
        preset_idx: usize,
        scale_idx: usize,
        cache_idx: usize,
        policy_idx: usize,
        fault_idx: usize,
        scenario: FaultScenarioId,
    ) -> u64 {
        let base = self.cell_sim_seed(preset_idx, scale_idx, cache_idx, policy_idx);
        if scenario == FaultScenarioId::None {
            base
        } else {
            mix(base, 0x4641_554C + fault_idx as u64) // "FAUL"
        }
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::small()
    }
}

// The workspace's one splitmix64 seed-derivation mixer, shared with
// the fault schedule so every derived stream has a single definition.
use fmig_sim::fault::seed_mix as mix;

/// One paper-figure delta: the published value against this shard's
/// measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperDelta {
    /// Which published number.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// This shard's measured value.
    pub measured: f64,
}

impl PaperDelta {
    /// Measured minus paper.
    pub fn delta(&self) -> f64 {
        self.measured - self.paper
    }
}

/// One cell's outcome: a policy under a cache budget on a shard's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The policy evaluated.
    pub policy: PolicyId,
    /// The fault scenario this cell degraded under (`None` = healthy).
    pub fault: FaultScenarioId,
    /// The cache axis value (fraction of referenced bytes).
    pub cache_fraction: f64,
    /// The resolved staging-disk capacity in bytes.
    pub capacity_bytes: u64,
    /// Read miss ratio by references.
    pub miss_ratio: f64,
    /// Read miss ratio by bytes.
    pub byte_miss_ratio: f64,
    /// §2.3 person-minutes lost per day. In latency mode this derives
    /// from the cell's measured mean miss wait; open-loop cells charge
    /// the configured constant.
    pub person_minutes_per_day: f64,
    /// Measured first-byte wait distributions from the closed-loop run;
    /// `None` for open-loop cells.
    pub latency: Option<LatencyOutcome>,
}

/// Everything measured on one trace shard (a preset × scale coordinate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Workload preset.
    pub preset: PresetId,
    /// Workload scale.
    pub scale: f64,
    /// Seed the generator ran with.
    pub workload_seed: u64,
    /// Seed the device simulator ran with.
    pub sim_seed: u64,
    /// Trace records generated (including errors).
    pub records: u64,
    /// Files in the generated population.
    pub files: u64,
    /// Bytes referenced by the population, in GB.
    pub referenced_gb: f64,
    /// Read share of successful references.
    pub read_share: f64,
    /// Mean simulated read startup latency in seconds (0 when the device
    /// simulation is off).
    pub mean_read_latency_s: f64,
    /// Mean simulated write startup latency in seconds.
    pub mean_write_latency_s: f64,
    /// Published-vs-measured rows for the shape claims the sweep tracks.
    /// Populated only for the NCAR-calibrated preset; the other presets
    /// deviate from the paper's knobs by design, so a delta there would
    /// be noise dressed up as a fidelity check.
    pub paper_deltas: Vec<PaperDelta>,
    /// One result per (fault, cache fraction, policy) cell, in matrix
    /// order (fault-scenario major, then cache fraction, then policy).
    pub cells: Vec<CellResult>,
}

/// The winning policy of one (preset, scale, cache) group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Winner {
    /// Workload preset.
    pub preset: PresetId,
    /// Workload scale.
    pub scale: f64,
    /// Cache fraction.
    pub cache_fraction: f64,
    /// Best policy by read miss ratio.
    pub by_miss_ratio: PolicyId,
    /// Best policy by person-minutes per day.
    pub by_person_minutes: PolicyId,
    /// Best *practical* policy by miss ratio (Belady excluded), when the
    /// group contains a practical policy.
    pub practical: Option<PolicyId>,
    /// Best policy by mean first-byte read wait; latency mode only.
    pub by_mean_wait: Option<PolicyId>,
    /// Best policy by p99 first-byte read wait; latency mode only.
    pub by_p99_wait: Option<PolicyId>,
    /// Most *robust* policy: the one whose worst-case p99 read wait
    /// across the group's fault scenarios is lowest. `None` when the
    /// matrix carries no fault scenarios — policies are then never
    /// ranked by a world they were not run in.
    pub by_degraded_p99: Option<PolicyId>,
}

/// The comparative output of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Root seed the sweep derived every cell seed from.
    pub base_seed: u64,
    /// Whether shards ran the device simulation.
    pub simulated_devices: bool,
    /// Whether cells ran latency-true (closed-loop) evaluation.
    pub latency_mode: bool,
    /// The columnar replay store the matrix drew imported shards from;
    /// `None` for purely generated matrices, which keep the
    /// pre-ingestion JSON schema byte for byte.
    pub trace_store: Option<String>,
    /// The fault axis the matrix expanded over. A `[None]` axis keeps
    /// every fault-related field out of the JSON entirely, making the
    /// healthy report byte-identical to the pre-fault schema.
    pub fault_scenarios: Vec<FaultScenarioId>,
    /// One report per trace shard, in matrix order (preset major).
    pub shards: Vec<ShardReport>,
    /// One winner row per (preset, scale, cache) group.
    pub winners: Vec<Winner>,
}

impl SweepReport {
    /// True when the matrix degraded at least one scenario — the switch
    /// for every fault-related JSON field and text column.
    pub fn fault_mode(&self) -> bool {
        self.fault_scenarios
            .iter()
            .any(|f| *f != FaultScenarioId::None)
    }
    /// Fills the winner table from the shard cells. Ties go to the first
    /// policy in the shard's cell order, which is the matrix order —
    /// deterministic by construction.
    ///
    /// The classic columns rank the *healthy* cells (fault `None`);
    /// when the matrix has no healthy scenario they fall back to the
    /// first scenario on the axis. `by_degraded_p99` ranks robustness:
    /// each policy is scored by its worst p99 read wait across the
    /// group's fault scenarios, lowest worst-case wins.
    pub(crate) fn compute_winners(&mut self) {
        self.winners.clear();
        let healthy = if self.fault_scenarios.contains(&FaultScenarioId::None) {
            FaultScenarioId::None
        } else {
            *self
                .fault_scenarios
                .first()
                .unwrap_or(&FaultScenarioId::None)
        };
        for shard in &self.shards {
            let mut fractions: Vec<f64> = Vec::new();
            for cell in &shard.cells {
                if !fractions.contains(&cell.cache_fraction) {
                    fractions.push(cell.cache_fraction);
                }
            }
            for frac in fractions {
                let group: Vec<&CellResult> = shard
                    .cells
                    .iter()
                    .filter(|c| c.cache_fraction == frac && c.fault == healthy)
                    .collect();
                let best = |key: fn(&CellResult) -> f64| {
                    group
                        .iter()
                        .fold(None::<&&CellResult>, |acc, c| match acc {
                            Some(a) if key(a) <= key(c) => Some(a),
                            _ => Some(c),
                        })
                        .expect("non-empty winner group")
                        .policy
                };
                let practical = group
                    .iter()
                    .filter(|c| c.policy != PolicyId::Belady)
                    .fold(None::<&&CellResult>, |acc, c| match acc {
                        Some(a) if a.miss_ratio <= c.miss_ratio => Some(a),
                        _ => Some(c),
                    })
                    .map(|c| c.policy);
                // Latency columns exist only when every cell in the
                // group carries a closed-loop measurement.
                let best_wait = |key: fn(&LatencyOutcome) -> f64| -> Option<PolicyId> {
                    if !group.iter().all(|c| c.latency.is_some()) {
                        return None;
                    }
                    group
                        .iter()
                        .fold(None::<&&CellResult>, |acc, c| match acc {
                            Some(a)
                                if key(&a.latency.expect("checked above"))
                                    <= key(&c.latency.expect("checked above")) =>
                            {
                                Some(a)
                            }
                            _ => Some(c),
                        })
                        .map(|c| c.policy)
                };
                // Robustness column: worst-case p99 across the group's
                // fault scenarios, per policy, in matrix policy order.
                let fault_cells: Vec<&CellResult> = shard
                    .cells
                    .iter()
                    .filter(|c| {
                        c.cache_fraction == frac
                            && c.fault != FaultScenarioId::None
                            && c.latency.is_some()
                    })
                    .collect();
                let mut by_degraded_p99: Option<(PolicyId, f64)> = None;
                let mut scored: Vec<PolicyId> = Vec::new();
                for cell in &fault_cells {
                    if scored.contains(&cell.policy) {
                        continue;
                    }
                    scored.push(cell.policy);
                    let worst = fault_cells
                        .iter()
                        .filter(|c| c.policy == cell.policy)
                        .map(|c| c.latency.expect("filtered above").p99_read_wait_s)
                        .fold(f64::NEG_INFINITY, f64::max);
                    match by_degraded_p99 {
                        Some((_, best_worst)) if best_worst <= worst => {}
                        _ => by_degraded_p99 = Some((cell.policy, worst)),
                    }
                }
                self.winners.push(Winner {
                    preset: shard.preset,
                    scale: shard.scale,
                    cache_fraction: frac,
                    by_miss_ratio: best(|c| c.miss_ratio),
                    by_person_minutes: best(|c| c.person_minutes_per_day),
                    practical,
                    by_mean_wait: best_wait(|l| l.mean_read_wait_s),
                    by_p99_wait: best_wait(|l| l.p99_read_wait_s),
                    by_degraded_p99: by_degraded_p99.map(|(p, _)| p),
                });
            }
        }
    }

    /// Serializes the report as deterministic JSON: fixed key order,
    /// shortest-round-trip float formatting, no timing or host data. Two
    /// runs of the same matrix — at any worker count — produce identical
    /// bytes, which is what the CI artifact diff and the determinism test
    /// key on.
    pub fn to_json(&self) -> String {
        let fault_mode = self.fault_mode();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"base_seed\": ");
        out.push_str(&self.base_seed.to_string());
        out.push_str(",\n  \"simulated_devices\": ");
        out.push_str(if self.simulated_devices {
            "true"
        } else {
            "false"
        });
        out.push_str(",\n  \"latency_mode\": ");
        out.push_str(if self.latency_mode { "true" } else { "false" });
        // Like the fault keys below, the trace key exists only when the
        // matrix actually imported something.
        if let Some(store) = &self.trace_store {
            out.push_str(",\n  \"trace\": ");
            json_str(&mut out, store);
        }
        // Every fault-related key is conditional on the matrix actually
        // degrading something: a [None] axis reproduces the pre-fault
        // schema byte for byte.
        if fault_mode {
            out.push_str(",\n  \"fault_scenarios\": [");
            for (i, f) in self.fault_scenarios.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json_str(&mut out, f.name());
            }
            out.push(']');
        }
        out.push_str(",\n  \"shards\": [");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            shard_json(&mut out, shard, fault_mode);
        }
        out.push_str("\n  ],\n  \"winners\": [");
        for (i, w) in self.winners.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"preset\": ");
            json_str(&mut out, w.preset.name());
            out.push_str(", \"scale\": ");
            json_f64(&mut out, w.scale);
            out.push_str(", \"cache_fraction\": ");
            json_f64(&mut out, w.cache_fraction);
            out.push_str(", \"by_miss_ratio\": ");
            json_str(&mut out, w.by_miss_ratio.name());
            out.push_str(", \"by_person_minutes\": ");
            json_str(&mut out, w.by_person_minutes.name());
            out.push_str(", \"practical\": ");
            match w.practical {
                Some(p) => json_str(&mut out, p.name()),
                None => out.push_str("null"),
            }
            out.push_str(", \"by_mean_wait\": ");
            match w.by_mean_wait {
                Some(p) => json_str(&mut out, p.name()),
                None => out.push_str("null"),
            }
            out.push_str(", \"by_p99_wait\": ");
            match w.by_p99_wait {
                Some(p) => json_str(&mut out, p.name()),
                None => out.push_str("null"),
            }
            if fault_mode {
                out.push_str(", \"by_degraded_p99\": ");
                match w.by_degraded_p99 {
                    Some(p) => json_str(&mut out, p.name()),
                    None => out.push_str("null"),
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the winner table and per-shard summaries as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for shard in &self.shards {
            out.push_str(&format!(
                "shard {}/{:<6} {} records, {} files, {:.2} GB referenced, read share {:.1}%\n",
                shard.preset.name(),
                shard.scale,
                shard.records,
                shard.files,
                shard.referenced_gb,
                shard.read_share * 100.0,
            ));
            for delta in &shard.paper_deltas {
                out.push_str(&format!(
                    "  paper {:<28} {:>8.3} measured {:>8.3}\n",
                    delta.metric, delta.paper, delta.measured
                ));
            }
            for cell in &shard.cells {
                out.push_str(&format!(
                    "  cache {:>5.2}% {:<9} miss {:>6.2}% byte-miss {:>6.2}% person-min/day {:>10.1}",
                    cell.cache_fraction * 100.0,
                    cell.policy.name(),
                    cell.miss_ratio * 100.0,
                    cell.byte_miss_ratio * 100.0,
                    cell.person_minutes_per_day,
                ));
                if let Some(l) = &cell.latency {
                    out.push_str(&format!(
                        " wait mean {:>6.1}s p99 {:>6.1}s coalesced {}",
                        l.mean_read_wait_s, l.p99_read_wait_s, l.delayed_hits,
                    ));
                    if let Some(d) = &l.degraded {
                        out.push_str(&format!(
                            " [{}: retries {} outages {} outage-wait {:.0}s]",
                            cell.fault.name(),
                            d.read_retries,
                            d.outage_events,
                            d.outage_wait_s,
                        ));
                    }
                }
                out.push('\n');
            }
        }
        out.push_str("winners:\n");
        for w in &self.winners {
            out.push_str(&format!(
                "  {}/{} @ cache {:.2}%: miss-ratio {} | person-minutes {} | practical {}",
                w.preset.name(),
                w.scale,
                w.cache_fraction * 100.0,
                w.by_miss_ratio.name(),
                w.by_person_minutes.name(),
                w.practical.map_or("-", |p| p.name()),
            ));
            if let (Some(mean), Some(p99)) = (w.by_mean_wait, w.by_p99_wait) {
                out.push_str(&format!(
                    " | mean-wait {} | p99-wait {}",
                    mean.name(),
                    p99.name()
                ));
            }
            if let Some(p) = w.by_degraded_p99 {
                out.push_str(&format!(" | degraded-p99 {}", p.name()));
            }
            out.push('\n');
        }
        out
    }
}

fn shard_json(out: &mut String, s: &ShardReport, fault_mode: bool) {
    out.push_str("{\"preset\": ");
    json_str(out, s.preset.name());
    out.push_str(", \"scale\": ");
    json_f64(out, s.scale);
    out.push_str(", \"workload_seed\": ");
    out.push_str(&s.workload_seed.to_string());
    out.push_str(", \"sim_seed\": ");
    out.push_str(&s.sim_seed.to_string());
    out.push_str(", \"records\": ");
    out.push_str(&s.records.to_string());
    out.push_str(", \"files\": ");
    out.push_str(&s.files.to_string());
    out.push_str(", \"referenced_gb\": ");
    json_f64(out, s.referenced_gb);
    out.push_str(", \"read_share\": ");
    json_f64(out, s.read_share);
    out.push_str(", \"mean_read_latency_s\": ");
    json_f64(out, s.mean_read_latency_s);
    out.push_str(", \"mean_write_latency_s\": ");
    json_f64(out, s.mean_write_latency_s);
    out.push_str(", \"paper_deltas\": [");
    for (i, d) in s.paper_deltas.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"metric\": ");
        json_str(out, &d.metric);
        out.push_str(", \"paper\": ");
        json_f64(out, d.paper);
        out.push_str(", \"measured\": ");
        json_f64(out, d.measured);
        out.push('}');
    }
    out.push_str("], \"cells\": [");
    for (i, c) in s.cells.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"policy\": ");
        json_str(out, c.policy.name());
        if fault_mode {
            out.push_str(", \"fault\": ");
            json_str(out, c.fault.name());
        }
        out.push_str(", \"cache_fraction\": ");
        json_f64(out, c.cache_fraction);
        out.push_str(", \"capacity_bytes\": ");
        out.push_str(&c.capacity_bytes.to_string());
        out.push_str(", \"miss_ratio\": ");
        json_f64(out, c.miss_ratio);
        out.push_str(", \"byte_miss_ratio\": ");
        json_f64(out, c.byte_miss_ratio);
        out.push_str(", \"person_minutes_per_day\": ");
        json_f64(out, c.person_minutes_per_day);
        out.push_str(", \"latency\": ");
        match &c.latency {
            None => out.push_str("null"),
            Some(l) => {
                out.push_str("{\"mean_read_wait_s\": ");
                json_f64(out, l.mean_read_wait_s);
                out.push_str(", \"p99_read_wait_s\": ");
                json_f64(out, l.p99_read_wait_s);
                out.push_str(", \"mean_miss_wait_s\": ");
                json_f64(out, l.mean_miss_wait_s);
                out.push_str(", \"mean_delayed_wait_s\": ");
                json_f64(out, l.mean_delayed_wait_s);
                out.push_str(", \"delayed_hits\": ");
                out.push_str(&l.delayed_hits.to_string());
                out.push_str(", \"recalls\": ");
                out.push_str(&l.recalls.to_string());
                out.push_str(", \"flush_bytes\": ");
                out.push_str(&l.flush_bytes.to_string());
                out.push_str(", \"mean_flush_queue_s\": ");
                json_f64(out, l.mean_flush_queue_s);
                // The degraded object exists exactly on fault cells, so
                // the healthy schema carries no trace of it.
                if let Some(d) = &l.degraded {
                    out.push_str(", \"degraded\": {\"read_retries\": ");
                    out.push_str(&d.read_retries.to_string());
                    out.push_str(", \"outage_events\": ");
                    out.push_str(&d.outage_events.to_string());
                    out.push_str(", \"outage_wait_s\": ");
                    json_f64(out, d.outage_wait_s);
                    out.push_str(", \"slow_transfers\": ");
                    out.push_str(&d.slow_transfers.to_string());
                    out.push('}');
                }
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Writes a JSON string literal (the report only carries ASCII
/// identifiers, but escape defensively).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 with Rust's shortest-round-trip formatting — stable for
/// identical bits, which deterministic cells guarantee. Non-finite values
/// (which no metric should produce) become `null` rather than invalid
/// JSON.
fn json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_migrate::eval::DegradedOutcome;

    #[test]
    fn policy_ids_round_trip() {
        for p in PolicyId::ALL {
            assert_eq!(PolicyId::parse(p.name()), Some(p));
            // The instantiated policy self-describes consistently.
            assert!(!p.build().name().is_empty());
        }
        assert_eq!(PolicyId::parse("nope"), None);
    }

    #[test]
    fn no_shipped_policy_defaults_to_the_rescan() {
        // The acceptance bar for the kinetic index: every policy in the
        // sweep matrix ranks victims through an index regime; the exact
        // rescan is reachable only by degradation.
        for p in PolicyId::ALL {
            assert_ne!(
                p.rank_regime(),
                "rescan",
                "{} would pay the O(n) purge rescan",
                p.name()
            );
        }
        // Spot-check the split: time-varying policies are kinetic, the
        // rest affine.
        assert_eq!(PolicyId::Stp14.rank_regime(), "kinetic");
        assert_eq!(PolicyId::Saac.rank_regime(), "kinetic");
        assert_eq!(PolicyId::Random.rank_regime(), "kinetic");
        assert_eq!(PolicyId::StpLat.rank_regime(), "kinetic");
        assert_eq!(PolicyId::LruMad.rank_regime(), "kinetic");
        assert_eq!(PolicyId::Lru.rank_regime(), "affine");
        assert_eq!(PolicyId::Belady.rank_regime(), "affine");
    }

    #[test]
    fn preset_ids_round_trip() {
        for p in PresetId::ALL {
            assert_eq!(PresetId::parse(p.name()), Some(p));
            let cfg = p.workload(0.01, 7);
            assert_eq!(cfg.scale, 0.01);
            assert_eq!(cfg.seed, 7);
        }
    }

    #[test]
    fn seeds_differ_per_coordinate_and_stage() {
        let cfg = SweepConfig::small();
        let mut seen = std::collections::HashSet::new();
        for p in 0..cfg.presets.len() {
            for s in 0..cfg.scales.len() {
                assert!(seen.insert(cfg.workload_seed(p, s)), "workload seed reused");
                assert!(seen.insert(cfg.sim_seed(p, s)), "sim seed reused");
                for c in 0..cfg.cache_fractions.len() {
                    for pol in 0..cfg.policies.len() {
                        assert!(
                            seen.insert(cfg.cell_sim_seed(p, s, c, pol)),
                            "cell sim seed reused"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_counts() {
        let cfg = SweepConfig::small();
        assert_eq!(cfg.cell_count(), 5 * 2 * 2 * 2);
        assert_eq!(cfg.shard_count(), 4);
        // tiny carries the healthy axis plus one fault scenario.
        assert_eq!(SweepConfig::tiny().cell_count(), 10);
        assert_eq!(SweepConfig::tiny().shard_count(), 1);
        // An empty fault axis behaves as [None].
        let mut bare = SweepConfig::tiny();
        bare.faults = vec![];
        assert_eq!(bare.fault_axis(), vec![FaultScenarioId::None]);
        assert_eq!(bare.cell_count(), 5);
    }

    #[test]
    fn fault_scenario_ids_round_trip() {
        for f in FaultScenarioId::ALL {
            assert_eq!(FaultScenarioId::parse(f.name()), Some(f));
            // Only the healthy scenario maps to an inert plan.
            assert_eq!(f.plan().is_none(), f == FaultScenarioId::None);
        }
        assert_eq!(FaultScenarioId::parse("meteor-strike"), None);
    }

    #[test]
    fn fault_cell_seeds_differ_from_healthy_and_per_scenario() {
        let cfg = SweepConfig::tiny();
        let healthy = cfg.cell_fault_seed(0, 0, 0, 0, 0, FaultScenarioId::None);
        assert_eq!(
            healthy,
            cfg.cell_sim_seed(0, 0, 0, 0),
            "the healthy scenario must keep the pre-fault stream"
        );
        let a = cfg.cell_fault_seed(0, 0, 0, 0, 1, FaultScenarioId::DegradedPeak);
        let b = cfg.cell_fault_seed(0, 0, 0, 0, 2, FaultScenarioId::FlakyReads);
        assert_ne!(a, healthy);
        assert_ne!(a, b);
    }

    #[test]
    fn json_escapes_and_floats() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000a\"");
        let mut f = String::new();
        json_f64(&mut f, 0.015);
        assert_eq!(f, "0.015");
        let mut nan = String::new();
        json_f64(&mut nan, f64::NAN);
        assert_eq!(nan, "null");
    }

    fn test_report(cells: Vec<CellResult>) -> SweepReport {
        SweepReport {
            base_seed: 0,
            simulated_devices: false,
            latency_mode: false,
            trace_store: None,
            fault_scenarios: vec![FaultScenarioId::None],
            shards: vec![ShardReport {
                preset: PresetId::Ncar,
                scale: 0.002,
                workload_seed: 0,
                sim_seed: 0,
                records: 0,
                files: 0,
                referenced_gb: 0.0,
                read_share: 0.0,
                mean_read_latency_s: 0.0,
                mean_write_latency_s: 0.0,
                paper_deltas: vec![],
                cells,
            }],
            winners: vec![],
        }
    }

    fn cell(policy: PolicyId, miss: f64, pm: f64) -> CellResult {
        CellResult {
            policy,
            fault: FaultScenarioId::None,
            cache_fraction: 0.01,
            capacity_bytes: 1,
            miss_ratio: miss,
            byte_miss_ratio: miss,
            person_minutes_per_day: pm,
            latency: None,
        }
    }

    #[test]
    fn winners_pick_the_minimum_and_exclude_belady_from_practical() {
        let mut report = test_report(vec![
            cell(PolicyId::Belady, 0.10, 5.0),
            cell(PolicyId::Lru, 0.30, 1.0),
            cell(PolicyId::Stp14, 0.20, 2.0),
        ]);
        report.compute_winners();
        assert_eq!(report.winners.len(), 1);
        let w = &report.winners[0];
        assert_eq!(w.by_miss_ratio, PolicyId::Belady);
        assert_eq!(w.by_person_minutes, PolicyId::Lru);
        assert_eq!(w.practical, Some(PolicyId::Stp14));
        // No latency measurements: the wait columns stay empty.
        assert_eq!(w.by_mean_wait, None);
        assert_eq!(w.by_p99_wait, None);
    }

    #[test]
    fn latency_winner_columns_rank_by_measured_waits() {
        let lat = |mean: f64, p99: f64| LatencyOutcome {
            mean_read_wait_s: mean,
            p99_read_wait_s: p99,
            mean_miss_wait_s: 60.0,
            mean_delayed_wait_s: 5.0,
            delayed_hits: 3,
            recalls: 10,
            flush_bytes: 0,
            mean_flush_queue_s: 0.0,
            degraded: None,
        };
        let mut cells = vec![
            cell(PolicyId::Lru, 0.30, 1.0),
            cell(PolicyId::Stp14, 0.20, 2.0),
        ];
        // LRU has the better mean, STP the better tail.
        cells[0].latency = Some(lat(10.0, 300.0));
        cells[1].latency = Some(lat(12.0, 150.0));
        let mut report = test_report(cells);
        report.latency_mode = true;
        report.compute_winners();
        let w = &report.winners[0];
        assert_eq!(w.by_mean_wait, Some(PolicyId::Lru));
        assert_eq!(w.by_p99_wait, Some(PolicyId::Stp14));
        // Both the JSON and the text rendering carry the new columns.
        let json = report.to_json();
        assert!(json.contains("\"latency_mode\": true"));
        assert!(json.contains("\"p99_read_wait_s\": 150.0"));
        assert!(json.contains("\"by_p99_wait\": \"stp1.4\""));
        let text = report.render();
        assert!(text.contains("p99-wait stp1.4"));
        assert!(text.contains("mean-wait lru"));
    }

    #[test]
    fn degraded_winner_ranks_by_worst_case_p99_and_keys_the_json() {
        let lat = |p99: f64, degraded: bool| LatencyOutcome {
            mean_read_wait_s: p99 / 3.0,
            p99_read_wait_s: p99,
            mean_miss_wait_s: 60.0,
            mean_delayed_wait_s: 5.0,
            delayed_hits: 0,
            recalls: 10,
            flush_bytes: 0,
            mean_flush_queue_s: 0.0,
            degraded: degraded.then_some(DegradedOutcome {
                read_retries: 4,
                outage_events: 2,
                outage_wait_s: 123.0,
                slow_transfers: 1,
            }),
        };
        let mut cells = vec![
            cell(PolicyId::Lru, 0.30, 1.0),
            cell(PolicyId::Stp14, 0.20, 2.0),
        ];
        // Two fault scenarios: LRU is great under one, terrible under
        // the other; STP is consistently middling. Worst-case ranking
        // must prefer STP.
        for (scenario, lru_p99, stp_p99) in [
            (FaultScenarioId::FlakyReads, 100.0, 200.0),
            (FaultScenarioId::DegradedPeak, 900.0, 250.0),
        ] {
            let mut lru = cell(PolicyId::Lru, 0.30, 1.0);
            lru.fault = scenario;
            lru.latency = Some(lat(lru_p99, true));
            let mut stp = cell(PolicyId::Stp14, 0.20, 2.0);
            stp.fault = scenario;
            stp.latency = Some(lat(stp_p99, true));
            cells.push(lru);
            cells.push(stp);
        }
        let mut report = test_report(cells);
        report.fault_scenarios = vec![
            FaultScenarioId::None,
            FaultScenarioId::FlakyReads,
            FaultScenarioId::DegradedPeak,
        ];
        report.compute_winners();
        let w = &report.winners[0];
        // Healthy columns ranked over the healthy cells only.
        assert_eq!(w.by_miss_ratio, PolicyId::Stp14);
        assert_eq!(w.by_degraded_p99, Some(PolicyId::Stp14));
        let json = report.to_json();
        assert!(
            json.contains("\"fault_scenarios\": [\"none\", \"flaky-reads\", \"degraded-peak\"]")
        );
        assert!(json.contains("\"by_degraded_p99\": \"stp1.4\""));
        assert!(json.contains("\"fault\": \"degraded-peak\""));
        assert!(json.contains("\"degraded\": {\"read_retries\": 4"));
        assert!(report.render().contains("degraded-p99 stp1.4"));
    }

    #[test]
    fn healthy_reports_carry_no_fault_keys() {
        let mut report = test_report(vec![cell(PolicyId::Lru, 0.1, 1.0)]);
        report.compute_winners();
        assert!(!report.fault_mode());
        let json = report.to_json();
        assert!(!json.contains("fault"));
        assert!(!json.contains("degraded"));
        assert_eq!(report.winners[0].by_degraded_p99, None);
    }
}
