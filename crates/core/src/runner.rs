//! The deterministic parallel sweep runner.
//!
//! [`run_sweep`] expands a [`SweepConfig`] into trace shards (one per
//! preset × scale coordinate) and runs them in **two phases** on a
//! `std::thread::scope` worker pool. Workers pull indices from an
//! atomic counter — classic self-scheduling fan-out, the same shape the
//! `ptexec` family used for parallel Unix commands — and write results
//! into the task's own slot, so scheduling order never leaks into the
//! report:
//!
//! 1. **Shard preparation** — each shard generates its workload and
//!    streams it once through the device simulator (or a plain pass)
//!    into the incremental [`Analyzer`] and the policy-replay
//!    preparation ([`TracePrep`]). The full annotated
//!    `Vec<TraceRecord>` that [`crate::Study::run`] keeps for the
//!    experiment registry is never materialized, which is what makes
//!    wide matrices affordable.
//! 2. **Cell execution** — the matrix is split into *cell units* that
//!    draw from one global queue: a closed-loop unit is a single
//!    (fault, cache, policy) hierarchy-engine run, an open-loop unit is
//!    one policy's entire single-pass miss-ratio curve (shared by every
//!    healthy open-loop cell of that policy, bit-identical to per-cell
//!    replay — see `fmig_migrate::mrc`). Splitting below the shard
//!    means a matrix with *one* shard but many cells — the `large`
//!    scaling preset, or a latency sweep — still spreads across every
//!    worker, and each unit's result lands in a pre-assigned slot that
//!    phase 3's purely serial assembly reads back in matrix order.
//!
//! The assembled report is therefore a pure function of the config:
//! any worker count yields byte-identical [`SweepReport::to_json`]
//! output, pinned by a tier-1 test.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fmig_analysis::Analyzer;
use fmig_migrate::eval::{EvalConfig, PreparedRef, PreparedTrace, TracePrep};
use fmig_migrate::mrc::{sweep_capacities_streaming, MissRatioCurve};
use fmig_sim::{HierarchySimulator, MssSimulator, SimConfig};
use fmig_trace::ingest::store::{StoreReader, StoreRow, CHUNK_RECORDS};
use fmig_trace::Direction;
use fmig_workload::{PaperTargets, Workload};

use crate::sweep::{
    CellResult, FaultScenarioId, PaperDelta, PresetId, ShardReport, SweepConfig, SweepReport,
};

/// Expands the matrix and runs every cell; see the module docs.
///
/// The report is a pure function of `config`: any worker count (including
/// the serial `workers = 1`) yields byte-identical
/// [`SweepReport::to_json`] output.
///
/// # Panics
///
/// Panics if the matrix is empty on any axis.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    assert!(
        !config.policies.is_empty()
            && !config.presets.is_empty()
            && !config.scales.is_empty()
            && !config.cache_fractions.is_empty(),
        "sweep matrix must be non-empty on every axis"
    );
    if config.presets.contains(&PresetId::Imported) {
        assert!(
            config.trace_store.is_some(),
            "the `imported` preset needs `trace_store` to point at a replay store"
        );
        assert!(
            !config.latency
                && config
                    .fault_axis()
                    .iter()
                    .all(|&f| f == FaultScenarioId::None),
            "imported traces replay open-loop only (no latency mode, no fault axis)"
        );
    }
    let coords: Vec<(usize, usize)> = (0..config.presets.len())
        .flat_map(|p| (0..config.scales.len()).map(move |s| (p, s)))
        .collect();

    // Phase 1: prepare every shard (generate + simulate + analyze).
    let prepared: Vec<PreparedShard> = parallel_indexed(coords.len(), config.workers, |i| {
        prepare_shard(config, coords[i].0, coords[i].1)
    });

    // Phase 2: run cell units from one global queue spanning all shards.
    let units = expand_units(config, coords.len());
    let outputs: Vec<UnitOutput> = parallel_indexed(units.len(), config.workers, |i| {
        run_unit(config, &units[i], &prepared[units[i].shard()], &coords)
    });

    // Phase 3: serial assembly in matrix order.
    let shards = assemble(config, prepared, &units, outputs);
    let mut report = SweepReport {
        base_seed: config.base_seed,
        simulated_devices: config.simulate_devices,
        latency_mode: config.latency,
        trace_store: config.trace_store.clone(),
        fault_scenarios: config.fault_axis(),
        shards,
        winners: Vec::new(),
    };
    report.compute_winners();
    report
}

/// Runs `f(0..n)` on a self-scheduling worker pool and returns results
/// in index order. The indexed slots make the output independent of
/// which worker ran which task.
fn parallel_indexed<T: Send>(n: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = effective_workers(workers, n);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let out = f(i);
                results.lock().expect("no panicked worker")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("no panicked worker")
        .into_iter()
        .map(|s| s.expect("every task produces a result"))
        .collect()
}

/// Resolves the worker-count knob: 0 means one per available CPU, and no
/// pool is ever wider than its phase's task list.
fn effective_workers(requested: usize, tasks: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, tasks.max(1))
}

/// One prepared trace shard plus the analysis-derived report skeleton.
struct PreparedShard {
    preset_idx: usize,
    scale_idx: usize,
    records: u64,
    files: u64,
    referenced_bytes: u64,
    read_share: f64,
    mean_read_latency_s: f64,
    mean_write_latency_s: f64,
    paper_deltas: Vec<PaperDelta>,
    data: ShardData,
    capacities: Vec<u64>,
}

/// Where a shard's replayable references live: in memory for generated
/// workloads, on disk for imported traces.
enum ShardData {
    /// A generated trace, fully materialized by [`TracePrep`].
    Generated(PreparedTrace),
    /// An imported trace in the columnar replay store; phase 2 streams
    /// it chunk by chunk, so the references never materialize.
    Imported(StoreReader),
}

/// Streams a replay store as [`PreparedRef`]s, one
/// [`CHUNK_RECORDS`]-sized buffer at a time.
///
/// The store was validated at open (column lengths match the manifest)
/// and is immutable after import, so a read failure mid-replay is a
/// broken environment, not bad input — it panics like any other
/// violated runner invariant rather than threading `Result` through
/// the fused sweep pass.
struct StoreRefStream {
    rows: fmig_trace::ingest::store::StoreRows,
    buf: Vec<StoreRow>,
    pos: usize,
}

impl StoreRefStream {
    fn open(store: &StoreReader) -> Self {
        let rows = store
            .rows(CHUNK_RECORDS)
            .expect("replay store columns open");
        StoreRefStream {
            rows,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Iterator for StoreRefStream {
    type Item = PreparedRef;

    fn next(&mut self) -> Option<PreparedRef> {
        if self.pos == self.buf.len() {
            let more = self
                .rows
                .next_chunk(&mut self.buf)
                .expect("replay store chunk reads");
            self.pos = 0;
            if !more {
                return None;
            }
        }
        let row = self.buf[self.pos];
        self.pos += 1;
        Some(PreparedRef {
            id: row.file,
            size: row.size,
            write: row.write,
            time: row.start,
            next_use: row.next_use,
            device: row.device,
        })
    }
}

/// Opens the columnar store behind an imported shard and lifts its
/// import-time statistics into the report skeleton. No trace data is
/// read here — phase 2 streams the columns per cell unit.
fn prepare_imported_shard(
    config: &SweepConfig,
    preset_idx: usize,
    scale_idx: usize,
) -> PreparedShard {
    let dir = config
        .trace_store
        .as_deref()
        .expect("validated by run_sweep");
    let store =
        StoreReader::open(Path::new(dir)).unwrap_or_else(|e| panic!("trace store {dir}: {e}"));
    let stats = store
        .stats()
        .unwrap_or_else(|e| panic!("trace store {dir}: {e}"));
    let manifest = store.manifest().clone();
    let capacities: Vec<u64> = config
        .cache_fractions
        .iter()
        .map(|&fraction| ((manifest.referenced_bytes as f64 * fraction) as u64).max(1))
        .collect();
    PreparedShard {
        preset_idx,
        scale_idx,
        records: stats.raw_references,
        files: manifest.files,
        referenced_bytes: manifest.referenced_bytes,
        read_share: stats.read_reference_share(),
        // Imported formats carry transfer durations at best, not the
        // simulator's startup-latency model; the stats file's latency
        // sums are whatever the source logs recorded (often zero).
        mean_read_latency_s: mean_latency(&stats.reads),
        mean_write_latency_s: mean_latency(&stats.writes),
        // Paper deltas row only makes sense for the NCAR-calibrated
        // generator; an external trace has its own shape by definition.
        paper_deltas: Vec::new(),
        data: ShardData::Imported(store),
        capacities,
    }
}

/// Mean recorded latency across a direction's device classes.
fn mean_latency(d: &fmig_trace::DirectionStats) -> f64 {
    let (refs, sum) = d.by_device.iter().fold((0u64, 0.0f64), |(n, s), a| {
        (n + a.references, s + a.latency_sum_s)
    });
    if refs == 0 {
        0.0
    } else {
        sum / refs as f64
    }
}

/// Generates, simulates, and analyzes one shard; policy evaluation is
/// phase 2's job.
fn prepare_shard(config: &SweepConfig, preset_idx: usize, scale_idx: usize) -> PreparedShard {
    let preset = config.presets[preset_idx];
    if preset == PresetId::Imported {
        return prepare_imported_shard(config, preset_idx, scale_idx);
    }
    let scale = config.scales[scale_idx];
    let workload_seed = config.workload_seed(preset_idx, scale_idx);
    let sim_seed = config.sim_seed(preset_idx, scale_idx);

    let workload = Workload::generate(&preset.workload(scale, workload_seed));
    let files = workload.files().len() as u64;
    let referenced_bytes: u64 = workload.files().iter().map(|f| f.size).sum();

    // One streaming pass: simulator → (analysis, policy prep).
    let mut analysis = Analyzer::new();
    let mut prep = TracePrep::new();
    let records = if config.simulate_devices {
        let sim = MssSimulator::new(SimConfig::default().with_seed(sim_seed));
        let metrics = sim.run_streaming(workload.into_records(), |rec| {
            analysis.observe(&rec);
            prep.observe(&rec);
        });
        metrics.requests
    } else {
        let mut n = 0u64;
        for rec in workload.into_records() {
            analysis.observe(&rec);
            prep.observe(&rec);
            n += 1;
        }
        n
    };
    let prepared = prep.finish();
    let capacities: Vec<u64> = config
        .cache_fractions
        .iter()
        .map(|&fraction| ((referenced_bytes as f64 * fraction) as u64).max(1))
        .collect();

    // Published-vs-measured rows only make sense where the generator
    // runs its NCAR calibration; the other presets twist those very
    // knobs on purpose, so deltas there would read as fidelity failures.
    let paper_deltas = if preset == crate::sweep::PresetId::Ncar {
        let targets = PaperTargets::ncar();
        let delta = |metric: &str, paper: f64, measured: f64| PaperDelta {
            metric: metric.to_string(),
            paper,
            measured,
        };
        vec![
            delta(
                "read_share",
                targets.read_share(),
                analysis.stats.read_reference_share(),
            ),
            delta(
                "error_fraction",
                targets.error_fraction(),
                analysis.stats.error_fraction(),
            ),
            delta(
                "files_never_read",
                targets.files_never_read,
                analysis.files.never_read(),
            ),
            delta(
                "files_accessed_once",
                targets.files_accessed_once,
                analysis.files.accessed_once(),
            ),
            delta(
                "requests_within_8h",
                targets.requests_within_8h_of_same_file,
                analysis.files.repeat_within_8h_fraction(),
            ),
            delta(
                "file_gap_under_1d",
                targets.file_gap_under_1d,
                analysis.files.intervals_under_1d(),
            ),
        ]
    } else {
        Vec::new()
    };

    PreparedShard {
        preset_idx,
        scale_idx,
        records,
        files,
        referenced_bytes,
        read_share: analysis.stats.read_reference_share(),
        mean_read_latency_s: analysis.latency.direction_mean(Direction::Read),
        mean_write_latency_s: analysis.latency.direction_mean(Direction::Write),
        paper_deltas,
        data: ShardData::Generated(prepared),
        capacities,
    }
}

/// One schedulable unit of cell work; see the module docs.
#[derive(Debug, Clone, Copy)]
enum CellUnit {
    /// One policy's full single-pass miss-ratio curve over the shard's
    /// capacity grid — serves every healthy open-loop cell of that
    /// policy, across all open-loop fault-axis entries.
    Curve { shard: usize, policy_idx: usize },
    /// One closed-loop hierarchy-engine run: a single
    /// (fault, cache, policy) cell.
    Closed {
        shard: usize,
        fault_idx: usize,
        cache_idx: usize,
        policy_idx: usize,
    },
}

impl CellUnit {
    fn shard(&self) -> usize {
        match *self {
            CellUnit::Curve { shard, .. } | CellUnit::Closed { shard, .. } => shard,
        }
    }
}

enum UnitOutput {
    Curve(MissRatioCurve),
    Closed(CellResult),
}

/// Expands the matrix into the phase-2 task list, in a deterministic
/// order (shard-major, then matrix order within the shard).
fn expand_units(config: &SweepConfig, shards: usize) -> Vec<CellUnit> {
    let faults = config.fault_axis();
    let mut units = Vec::new();
    for shard in 0..shards {
        let any_open = faults
            .iter()
            .any(|&s| !(config.latency || s != FaultScenarioId::None));
        if any_open {
            for policy_idx in 0..config.policies.len() {
                units.push(CellUnit::Curve { shard, policy_idx });
            }
        }
        for (fault_idx, &scenario) in faults.iter().enumerate() {
            if config.latency || scenario != FaultScenarioId::None {
                for cache_idx in 0..config.cache_fractions.len() {
                    for policy_idx in 0..config.policies.len() {
                        units.push(CellUnit::Closed {
                            shard,
                            fault_idx,
                            cache_idx,
                            policy_idx,
                        });
                    }
                }
            }
        }
    }
    units
}

/// Executes one cell unit against its prepared shard.
fn run_unit(
    config: &SweepConfig,
    unit: &CellUnit,
    shard: &PreparedShard,
    coords: &[(usize, usize)],
) -> UnitOutput {
    let faults = config.fault_axis();
    match *unit {
        CellUnit::Curve { policy_idx, .. } => {
            let base = EvalConfig::with_capacity(0);
            let policy = config.policies[policy_idx].build();
            UnitOutput::Curve(match &shard.data {
                ShardData::Generated(prepared) => {
                    prepared.miss_ratio_curve(policy.as_ref(), &shard.capacities, &base)
                }
                // Stream the store through the same fused single-pass
                // engine: one disk walk per policy covers the whole
                // capacity grid, and the references never materialize.
                ShardData::Imported(store) => sweep_capacities_streaming(
                    StoreRefStream::open(store),
                    policy.as_ref(),
                    &shard.capacities,
                    &base,
                ),
            })
        }
        CellUnit::Closed {
            shard: shard_idx,
            fault_idx,
            cache_idx,
            policy_idx,
        } => {
            let (preset_idx, scale_idx) = coords[shard_idx];
            let scenario = faults[fault_idx];
            let plan = scenario.plan();
            let eval_config = EvalConfig::with_capacity(shard.capacities[cache_idx]);
            let cell_seed = config.cell_fault_seed(
                preset_idx, scale_idx, cache_idx, policy_idx, fault_idx, scenario,
            );
            let hierarchy = HierarchySimulator::new(SimConfig::default().with_seed(cell_seed));
            let policy = config.policies[policy_idx];
            let ShardData::Generated(prepared) = &shard.data else {
                // run_sweep rejects latency/fault matrices over imported
                // presets, so no closed-loop unit is ever scheduled on a
                // store-backed shard.
                unreachable!("imported shards are open-loop only")
            };
            let outcome = hierarchy.evaluate_with_faults(
                prepared,
                policy.build().as_ref(),
                &eval_config,
                &plan,
            );
            UnitOutput::Closed(CellResult {
                policy,
                fault: scenario,
                cache_fraction: config.cache_fractions[cache_idx],
                capacity_bytes: shard.capacities[cache_idx],
                miss_ratio: outcome.miss_ratio,
                byte_miss_ratio: outcome.byte_miss_ratio,
                person_minutes_per_day: outcome.person_minutes_per_day,
                latency: outcome.latency,
            })
        }
    }
}

/// Stitches unit outputs back into per-shard cell lists, in the exact
/// matrix order the serial runner produced.
fn assemble(
    config: &SweepConfig,
    prepared: Vec<PreparedShard>,
    units: &[CellUnit],
    outputs: Vec<UnitOutput>,
) -> Vec<ShardReport> {
    let faults = config.fault_axis();
    // Index unit outputs by coordinates for order-free lookup.
    let mut curves: Vec<Vec<Option<&MissRatioCurve>>> =
        vec![vec![None; config.policies.len()]; prepared.len()];
    let mut closed: Vec<Vec<Option<&CellResult>>> =
        vec![
            vec![None; faults.len() * config.cache_fractions.len() * config.policies.len()];
            prepared.len()
        ];
    let cell_slot = |fault_idx: usize, cache_idx: usize, policy_idx: usize| {
        (fault_idx * config.cache_fractions.len() + cache_idx) * config.policies.len() + policy_idx
    };
    for (unit, out) in units.iter().zip(&outputs) {
        match (*unit, out) {
            (CellUnit::Curve { shard, policy_idx }, UnitOutput::Curve(c)) => {
                curves[shard][policy_idx] = Some(c);
            }
            (
                CellUnit::Closed {
                    shard,
                    fault_idx,
                    cache_idx,
                    policy_idx,
                },
                UnitOutput::Closed(c),
            ) => {
                closed[shard][cell_slot(fault_idx, cache_idx, policy_idx)] = Some(c);
            }
            _ => unreachable!("unit and output kinds are paired by construction"),
        }
    }

    prepared
        .into_iter()
        .enumerate()
        .map(|(shard_idx, shard)| {
            let mut cells = Vec::with_capacity(
                faults.len() * config.cache_fractions.len() * config.policies.len(),
            );
            for (fault_idx, &scenario) in faults.iter().enumerate() {
                let closed_loop = config.latency || scenario != FaultScenarioId::None;
                for (cache_idx, &fraction) in config.cache_fractions.iter().enumerate() {
                    let eval_config = EvalConfig::with_capacity(shard.capacities[cache_idx]);
                    for (policy_idx, policy) in config.policies.iter().enumerate() {
                        if closed_loop {
                            let cell = closed[shard_idx]
                                [cell_slot(fault_idx, cache_idx, policy_idx)]
                            .expect("closed unit ran");
                            cells.push(cell.clone());
                        } else {
                            let curve = curves[shard_idx][policy_idx].expect("curve unit ran");
                            let point = &curve.points[cache_idx];
                            cells.push(CellResult {
                                policy: *policy,
                                fault: scenario,
                                cache_fraction: fraction,
                                capacity_bytes: shard.capacities[cache_idx],
                                miss_ratio: point.miss_ratio(),
                                byte_miss_ratio: point.byte_miss_ratio(),
                                person_minutes_per_day: point.stats.person_minutes_per_day(
                                    eval_config.wait_s_per_miss,
                                    eval_config.trace_days,
                                ),
                                latency: None,
                            });
                        }
                    }
                }
            }
            ShardReport {
                preset: config.presets[shard.preset_idx],
                scale: config.scales[shard.scale_idx],
                workload_seed: config.workload_seed(shard.preset_idx, shard.scale_idx),
                sim_seed: config.sim_seed(shard.preset_idx, shard.scale_idx),
                records: shard.records,
                files: shard.files,
                referenced_gb: shard.referenced_bytes as f64 / 1e9,
                read_share: shard.read_share,
                mean_read_latency_s: shard.mean_read_latency_s,
                mean_write_latency_s: shard.mean_write_latency_s,
                paper_deltas: shard.paper_deltas,
                cells,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::PolicyId;

    #[test]
    fn tiny_sweep_produces_the_full_matrix() {
        let report = run_sweep(&SweepConfig::tiny());
        assert_eq!(report.shards.len(), 1);
        let shard = &report.shards[0];
        // Five policies × (healthy + degraded-peak).
        assert_eq!(shard.cells.len(), 10);
        assert!(shard.records > 0);
        assert!(shard.files > 0);
        assert!(
            shard.mean_read_latency_s > 0.0,
            "simulation annotated reads"
        );
        assert_eq!(report.winners.len(), 1);
        // Belady bounds every practical policy on the shared trace —
        // under faults too, since faults never change cache decisions.
        let belady = shard
            .cells
            .iter()
            .find(|c| c.policy == PolicyId::Belady)
            .expect("belady cell");
        for cell in &shard.cells {
            assert!(
                belady.miss_ratio <= cell.miss_ratio + 1e-12,
                "Belady beaten by {}",
                cell.policy.name()
            );
        }
        assert_ne!(report.winners[0].practical, Some(PolicyId::Belady));
        // The fault-scenario cells measured a degraded world.
        let degraded: Vec<_> = shard
            .cells
            .iter()
            .filter(|c| c.fault == FaultScenarioId::DegradedPeak)
            .collect();
        assert_eq!(degraded.len(), 5);
        for cell in degraded.iter() {
            let lat = cell.latency.expect("fault cells are closed-loop");
            let d = lat.degraded.expect("fault cells carry attribution");
            assert!(
                d.read_retries + d.outage_events + d.slow_transfers > 0,
                "the compound scenario must actually bite"
            );
            // Same trace, same decisions: miss ratio equals the healthy
            // twin's. Latency-aware policies are exempt — their healthy
            // twin ran open-loop on the wait constant while the fault
            // cell evicted against live (degraded) recall waits.
            let healthy = shard
                .cells
                .iter()
                .find(|h| h.fault == FaultScenarioId::None && h.policy == cell.policy)
                .expect("healthy twin");
            if !cell.policy.latency_aware() {
                assert_eq!(healthy.miss_ratio, cell.miss_ratio);
            }
            assert!(healthy.latency.is_none(), "healthy cells follow the flag");
        }
        assert!(report.winners[0].by_degraded_p99.is_some());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        // At least two shards, or phase 1 runs serially and the
        // comparison exercises less of the scheduler.
        let mut serial = SweepConfig::tiny();
        serial.scales = vec![0.002, 0.003];
        serial.simulate_devices = false;
        let mut parallel = serial.clone();
        serial.workers = 1;
        parallel.workers = 4;
        assert!(serial.shard_count() >= 2);
        assert_eq!(run_sweep(&serial), run_sweep(&parallel));
    }

    #[test]
    fn one_shard_many_cells_is_worker_count_invariant() {
        // Cell-level splitting: a single-shard latency matrix has one
        // phase-1 task but many phase-2 units, so a wide pool must still
        // assemble the identical report.
        let mut serial = SweepConfig::tiny();
        serial.latency = true;
        serial.simulate_devices = false;
        let mut parallel = serial.clone();
        serial.workers = 1;
        parallel.workers = 8;
        assert_eq!(serial.shard_count(), 1);
        assert!(parallel.cell_count() >= 8);
        assert_eq!(run_sweep(&serial), run_sweep(&parallel));
    }

    #[test]
    fn latency_mode_reproduces_open_loop_miss_ratios() {
        let mut open = SweepConfig::tiny();
        open.simulate_devices = false;
        open.faults = vec![FaultScenarioId::None];
        let mut closed = open.clone();
        closed.latency = true;
        let a = run_sweep(&open);
        let b = run_sweep(&closed);
        assert!(!a.latency_mode && b.latency_mode);
        for (ca, cb) in a.shards[0].cells.iter().zip(&b.shards[0].cells) {
            assert_eq!(ca.policy, cb.policy);
            // The open≡closed miss-ratio identity holds by construction
            // for latency-blind policies only; latency-aware ones see
            // live feedback in the closed loop and may evict differently.
            if !ca.policy.latency_aware() {
                assert_eq!(ca.miss_ratio, cb.miss_ratio, "{}", ca.policy.name());
                assert_eq!(ca.byte_miss_ratio, cb.byte_miss_ratio);
            }
            assert!(ca.latency.is_none());
            let lat = cb.latency.expect("latency cell");
            assert!(lat.mean_read_wait_s > 0.0, "device model must be felt");
            assert!(lat.recalls > 0);
            // Person-minutes now derive from the measured miss wait.
            assert_ne!(ca.person_minutes_per_day, cb.person_minutes_per_day);
        }
        let w = &b.winners[0];
        assert!(w.by_mean_wait.is_some() && w.by_p99_wait.is_some());
    }

    #[test]
    fn collapsed_capacity_cells_match_per_cell_replay() {
        // Three cache fractions share one MRC pass per policy; every
        // cell must still carry exactly what an individual replay at its
        // capacity produces. The closed-loop run replays each cell
        // individually, so equal miss ratios across all cells is an
        // end-to-end check of the collapse.
        let mut open = SweepConfig::tiny();
        open.simulate_devices = false;
        open.faults = vec![FaultScenarioId::None];
        open.cache_fractions = vec![0.005, 0.015, 0.05];
        let mut closed = open.clone();
        closed.latency = true;
        let a = run_sweep(&open);
        let b = run_sweep(&closed);
        assert_eq!(a.shards[0].cells.len(), 15);
        for (ca, cb) in a.shards[0].cells.iter().zip(&b.shards[0].cells) {
            assert_eq!(ca.policy, cb.policy);
            assert_eq!(ca.cache_fraction, cb.cache_fraction);
            if !ca.policy.latency_aware() {
                assert_eq!(ca.miss_ratio, cb.miss_ratio, "{}", ca.policy.name());
                assert_eq!(ca.byte_miss_ratio, cb.byte_miss_ratio);
            }
        }
        // Bigger caches never miss more on the same trace and policy.
        for policy in &open.policies {
            let series: Vec<f64> = a.shards[0]
                .cells
                .iter()
                .filter(|c| c.policy == *policy)
                .map(|c| c.miss_ratio)
                .collect();
            for w in series.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{}: {series:?}", policy.name());
            }
        }
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(1, 8), 1);
        assert_eq!(effective_workers(100, 3), 3);
        assert!(effective_workers(0, 8) >= 1);
        assert_eq!(effective_workers(4, 0), 1);
    }

    #[test]
    fn shards_get_distinct_rng_streams() {
        // Two shards of one sweep must not replay the same trace: the
        // derived seeds differ, so the generated populations differ.
        let mut cfg = SweepConfig::tiny();
        cfg.scales = vec![0.002, 0.002];
        cfg.simulate_devices = false;
        let report = run_sweep(&cfg);
        assert_eq!(report.shards.len(), 2);
        assert_ne!(
            report.shards[0].workload_seed,
            report.shards[1].workload_seed
        );
        assert_ne!(report.shards[0].records, report.shards[1].records);
    }
}
