//! The deterministic parallel sweep runner.
//!
//! [`run_sweep`] expands a [`SweepConfig`] into trace shards (one per
//! preset × scale coordinate), executes them on a `std::thread::scope`
//! worker pool, and assembles the [`SweepReport`]. Workers pull shard
//! indices from an atomic counter — classic self-scheduling fan-out, the
//! same shape the `ptexec` family used for parallel Unix commands — and
//! write results into the shard's own slot, so scheduling order never
//! leaks into the report.
//!
//! A shard is executed as a single streaming pass: the generated
//! workload's owning record stream feeds the device simulator, whose
//! sink feeds both the incremental [`Analyzer`] and the policy-replay
//! preparation ([`TracePrep`]) record by record. The full annotated
//! `Vec<TraceRecord>` that [`crate::Study::run`] keeps for the
//! experiment registry is never materialized here, which is what makes
//! wide matrices affordable.
//!
//! Open-loop cells that differ only in `cache_fraction` collapse onto
//! one single-pass miss-ratio curve per (policy, shard) — bit-identical
//! to per-cell replay (see `fmig_migrate::mrc`) but one trace walk
//! instead of one per capacity. Closed-loop (latency) cells keep their
//! individual hierarchy-engine runs, since device feedback is per-cell.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fmig_analysis::Analyzer;
use fmig_migrate::eval::{EvalConfig, TracePrep};
use fmig_sim::{HierarchySimulator, MssSimulator, SimConfig};
use fmig_trace::Direction;
use fmig_workload::{PaperTargets, Workload};

use crate::sweep::{
    CellResult, FaultScenarioId, PaperDelta, ShardReport, SweepConfig, SweepReport,
};

/// Expands the matrix and runs every cell; see the module docs.
///
/// The report is a pure function of `config`: any worker count (including
/// the serial `workers = 1`) yields byte-identical
/// [`SweepReport::to_json`] output.
///
/// # Panics
///
/// Panics if the matrix is empty on any axis.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    assert!(
        !config.policies.is_empty()
            && !config.presets.is_empty()
            && !config.scales.is_empty()
            && !config.cache_fractions.is_empty(),
        "sweep matrix must be non-empty on every axis"
    );
    let shards: Vec<(usize, usize)> = (0..config.presets.len())
        .flat_map(|p| (0..config.scales.len()).map(move |s| (p, s)))
        .collect();
    let workers = effective_workers(config.workers, shards.len());
    let results: Mutex<Vec<Option<ShardReport>>> = Mutex::new(vec![None; shards.len()]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= shards.len() {
                    break;
                }
                let (preset_idx, scale_idx) = shards[i];
                let shard = run_shard(config, preset_idx, scale_idx);
                results.lock().expect("no panicked worker")[i] = Some(shard);
            });
        }
    });
    let shards = results
        .into_inner()
        .expect("no panicked worker")
        .into_iter()
        .map(|s| s.expect("every shard produces a report"))
        .collect();
    let mut report = SweepReport {
        base_seed: config.base_seed,
        simulated_devices: config.simulate_devices,
        latency_mode: config.latency,
        fault_scenarios: config.fault_axis(),
        shards,
        winners: Vec::new(),
    };
    report.compute_winners();
    report
}

/// Resolves the worker-count knob: 0 means one per available CPU, and no
/// pool is ever wider than the shard list.
fn effective_workers(requested: usize, shards: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, shards.max(1))
}

/// Generates, simulates, analyzes, and policy-evaluates one shard.
fn run_shard(config: &SweepConfig, preset_idx: usize, scale_idx: usize) -> ShardReport {
    let preset = config.presets[preset_idx];
    let scale = config.scales[scale_idx];
    let workload_seed = config.workload_seed(preset_idx, scale_idx);
    let sim_seed = config.sim_seed(preset_idx, scale_idx);

    let workload = Workload::generate(&preset.workload(scale, workload_seed));
    let files = workload.files().len() as u64;
    let referenced_bytes: u64 = workload.files().iter().map(|f| f.size).sum();

    // One streaming pass: simulator → (analysis, policy prep).
    let mut analysis = Analyzer::new();
    let mut prep = TracePrep::new();
    let records = if config.simulate_devices {
        let sim = MssSimulator::new(SimConfig::default().with_seed(sim_seed));
        let metrics = sim.run_streaming(workload.into_records(), |rec| {
            analysis.observe(&rec);
            prep.observe(&rec);
        });
        metrics.requests
    } else {
        let mut n = 0u64;
        for rec in workload.into_records() {
            analysis.observe(&rec);
            prep.observe(&rec);
            n += 1;
        }
        n
    };

    let prepared = prep.finish();
    let capacities: Vec<u64> = config
        .cache_fractions
        .iter()
        .map(|&fraction| ((referenced_bytes as f64 * fraction) as u64).max(1))
        .collect();
    let faults = config.fault_axis();
    let mut cells =
        Vec::with_capacity(faults.len() * config.cache_fractions.len() * config.policies.len());
    // Open-loop miss-ratio curves are shared by every healthy
    // open-loop cell of a policy (bit-identical to per-cell replay,
    // see fmig_migrate::mrc) and computed at most once per shard.
    let mut curves: Option<Vec<_>> = None;
    for (fault_idx, &scenario) in faults.iter().enumerate() {
        // Fault scenarios are inherently closed-loop — the faults live
        // in the device model — so their cells run the hierarchy engine
        // even when the latency flag is off. Healthy cells follow the
        // flag, exactly as before the fault axis existed.
        let closed_loop = config.latency || scenario != FaultScenarioId::None;
        if closed_loop {
            let plan = scenario.plan();
            for (cache_idx, &fraction) in config.cache_fractions.iter().enumerate() {
                let eval_config = EvalConfig::with_capacity(capacities[cache_idx]);
                for (policy_idx, policy) in config.policies.iter().enumerate() {
                    let cell_seed = config.cell_fault_seed(
                        preset_idx, scale_idx, cache_idx, policy_idx, fault_idx, scenario,
                    );
                    let hierarchy =
                        HierarchySimulator::new(SimConfig::default().with_seed(cell_seed));
                    let outcome = hierarchy.evaluate_with_faults(
                        &prepared,
                        policy.build().as_ref(),
                        &eval_config,
                        &plan,
                    );
                    cells.push(CellResult {
                        policy: *policy,
                        fault: scenario,
                        cache_fraction: fraction,
                        capacity_bytes: capacities[cache_idx],
                        miss_ratio: outcome.miss_ratio,
                        byte_miss_ratio: outcome.byte_miss_ratio,
                        person_minutes_per_day: outcome.person_minutes_per_day,
                        latency: outcome.latency,
                    });
                }
            }
        } else {
            let base = EvalConfig::with_capacity(0);
            let curves = curves.get_or_insert_with(|| {
                config
                    .policies
                    .iter()
                    .map(|policy| {
                        prepared.miss_ratio_curve(policy.build().as_ref(), &capacities, &base)
                    })
                    .collect()
            });
            for (cache_idx, &fraction) in config.cache_fractions.iter().enumerate() {
                let eval_config = EvalConfig::with_capacity(capacities[cache_idx]);
                for (policy_idx, policy) in config.policies.iter().enumerate() {
                    let point = &curves[policy_idx].points[cache_idx];
                    cells.push(CellResult {
                        policy: *policy,
                        fault: scenario,
                        cache_fraction: fraction,
                        capacity_bytes: capacities[cache_idx],
                        miss_ratio: point.miss_ratio(),
                        byte_miss_ratio: point.byte_miss_ratio(),
                        person_minutes_per_day: point.stats.person_minutes_per_day(
                            eval_config.wait_s_per_miss,
                            eval_config.trace_days,
                        ),
                        latency: None,
                    });
                }
            }
        }
    }

    // Published-vs-measured rows only make sense where the generator
    // runs its NCAR calibration; the other presets twist those very
    // knobs on purpose, so deltas there would read as fidelity failures.
    let paper_deltas = if preset == crate::sweep::PresetId::Ncar {
        let targets = PaperTargets::ncar();
        let delta = |metric: &str, paper: f64, measured: f64| PaperDelta {
            metric: metric.to_string(),
            paper,
            measured,
        };
        vec![
            delta(
                "read_share",
                targets.read_share(),
                analysis.stats.read_reference_share(),
            ),
            delta(
                "error_fraction",
                targets.error_fraction(),
                analysis.stats.error_fraction(),
            ),
            delta(
                "files_never_read",
                targets.files_never_read,
                analysis.files.never_read(),
            ),
            delta(
                "files_accessed_once",
                targets.files_accessed_once,
                analysis.files.accessed_once(),
            ),
            delta(
                "requests_within_8h",
                targets.requests_within_8h_of_same_file,
                analysis.files.repeat_within_8h_fraction(),
            ),
            delta(
                "file_gap_under_1d",
                targets.file_gap_under_1d,
                analysis.files.intervals_under_1d(),
            ),
        ]
    } else {
        Vec::new()
    };

    ShardReport {
        preset,
        scale,
        workload_seed,
        sim_seed,
        records,
        files,
        referenced_gb: referenced_bytes as f64 / 1e9,
        read_share: analysis.stats.read_reference_share(),
        mean_read_latency_s: analysis.latency.direction_mean(Direction::Read),
        mean_write_latency_s: analysis.latency.direction_mean(Direction::Write),
        paper_deltas,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::PolicyId;

    #[test]
    fn tiny_sweep_produces_the_full_matrix() {
        let report = run_sweep(&SweepConfig::tiny());
        assert_eq!(report.shards.len(), 1);
        let shard = &report.shards[0];
        // Five policies × (healthy + degraded-peak).
        assert_eq!(shard.cells.len(), 10);
        assert!(shard.records > 0);
        assert!(shard.files > 0);
        assert!(
            shard.mean_read_latency_s > 0.0,
            "simulation annotated reads"
        );
        assert_eq!(report.winners.len(), 1);
        // Belady bounds every practical policy on the shared trace —
        // under faults too, since faults never change cache decisions.
        let belady = shard
            .cells
            .iter()
            .find(|c| c.policy == PolicyId::Belady)
            .expect("belady cell");
        for cell in &shard.cells {
            assert!(
                belady.miss_ratio <= cell.miss_ratio + 1e-12,
                "Belady beaten by {}",
                cell.policy.name()
            );
        }
        assert_ne!(report.winners[0].practical, Some(PolicyId::Belady));
        // The fault-scenario cells measured a degraded world.
        let degraded: Vec<_> = shard
            .cells
            .iter()
            .filter(|c| c.fault == FaultScenarioId::DegradedPeak)
            .collect();
        assert_eq!(degraded.len(), 5);
        for cell in degraded.iter() {
            let lat = cell.latency.expect("fault cells are closed-loop");
            let d = lat.degraded.expect("fault cells carry attribution");
            assert!(
                d.read_retries + d.outage_events + d.slow_transfers > 0,
                "the compound scenario must actually bite"
            );
            // Same trace, same decisions: miss ratio equals the healthy
            // twin's. Latency-aware policies are exempt — their healthy
            // twin ran open-loop on the wait constant while the fault
            // cell evicted against live (degraded) recall waits.
            let healthy = shard
                .cells
                .iter()
                .find(|h| h.fault == FaultScenarioId::None && h.policy == cell.policy)
                .expect("healthy twin");
            if !cell.policy.latency_aware() {
                assert_eq!(healthy.miss_ratio, cell.miss_ratio);
            }
            assert!(healthy.latency.is_none(), "healthy cells follow the flag");
        }
        assert!(report.winners[0].by_degraded_p99.is_some());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        // At least two shards, or the pool clamps both runs to one
        // worker and the comparison proves nothing.
        let mut serial = SweepConfig::tiny();
        serial.scales = vec![0.002, 0.003];
        serial.simulate_devices = false;
        let mut parallel = serial.clone();
        serial.workers = 1;
        parallel.workers = 4;
        assert!(serial.shard_count() >= 2);
        assert_eq!(run_sweep(&serial), run_sweep(&parallel));
    }

    #[test]
    fn latency_mode_reproduces_open_loop_miss_ratios() {
        let mut open = SweepConfig::tiny();
        open.simulate_devices = false;
        open.faults = vec![FaultScenarioId::None];
        let mut closed = open.clone();
        closed.latency = true;
        let a = run_sweep(&open);
        let b = run_sweep(&closed);
        assert!(!a.latency_mode && b.latency_mode);
        for (ca, cb) in a.shards[0].cells.iter().zip(&b.shards[0].cells) {
            assert_eq!(ca.policy, cb.policy);
            // The open≡closed miss-ratio identity holds by construction
            // for latency-blind policies only; latency-aware ones see
            // live feedback in the closed loop and may evict differently.
            if !ca.policy.latency_aware() {
                assert_eq!(ca.miss_ratio, cb.miss_ratio, "{}", ca.policy.name());
                assert_eq!(ca.byte_miss_ratio, cb.byte_miss_ratio);
            }
            assert!(ca.latency.is_none());
            let lat = cb.latency.expect("latency cell");
            assert!(lat.mean_read_wait_s > 0.0, "device model must be felt");
            assert!(lat.recalls > 0);
            // Person-minutes now derive from the measured miss wait.
            assert_ne!(ca.person_minutes_per_day, cb.person_minutes_per_day);
        }
        let w = &b.winners[0];
        assert!(w.by_mean_wait.is_some() && w.by_p99_wait.is_some());
    }

    #[test]
    fn collapsed_capacity_cells_match_per_cell_replay() {
        // Three cache fractions share one MRC pass per policy; every
        // cell must still carry exactly what an individual replay at its
        // capacity produces. The closed-loop run replays each cell
        // individually, so equal miss ratios across all cells is an
        // end-to-end check of the collapse.
        let mut open = SweepConfig::tiny();
        open.simulate_devices = false;
        open.faults = vec![FaultScenarioId::None];
        open.cache_fractions = vec![0.005, 0.015, 0.05];
        let mut closed = open.clone();
        closed.latency = true;
        let a = run_sweep(&open);
        let b = run_sweep(&closed);
        assert_eq!(a.shards[0].cells.len(), 15);
        for (ca, cb) in a.shards[0].cells.iter().zip(&b.shards[0].cells) {
            assert_eq!(ca.policy, cb.policy);
            assert_eq!(ca.cache_fraction, cb.cache_fraction);
            if !ca.policy.latency_aware() {
                assert_eq!(ca.miss_ratio, cb.miss_ratio, "{}", ca.policy.name());
                assert_eq!(ca.byte_miss_ratio, cb.byte_miss_ratio);
            }
        }
        // Bigger caches never miss more on the same trace and policy.
        for policy in &open.policies {
            let series: Vec<f64> = a.shards[0]
                .cells
                .iter()
                .filter(|c| c.policy == *policy)
                .map(|c| c.miss_ratio)
                .collect();
            for w in series.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{}: {series:?}", policy.name());
            }
        }
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(1, 8), 1);
        assert_eq!(effective_workers(100, 3), 3);
        assert!(effective_workers(0, 8) >= 1);
        assert_eq!(effective_workers(4, 0), 1);
    }

    #[test]
    fn shards_get_distinct_rng_streams() {
        // Two shards of one sweep must not replay the same trace: the
        // derived seeds differ, so the generated populations differ.
        let mut cfg = SweepConfig::tiny();
        cfg.scales = vec![0.002, 0.002];
        cfg.simulate_devices = false;
        let report = run_sweep(&cfg);
        assert_eq!(report.shards.len(), 2);
        assert_ne!(
            report.shards[0].workload_seed,
            report.shards[1].workload_seed
        );
        assert_ne!(report.shards[0].records, report.shards[1].records);
    }
}
