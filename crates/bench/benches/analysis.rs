//! Analysis bench: one-pass regeneration of every figure from a trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_analysis::Analyzer;
use fmig_trace::TraceRecord;
use fmig_workload::{Workload, WorkloadConfig};

fn records() -> Vec<TraceRecord> {
    Workload::generate(&WorkloadConfig {
        scale: 0.005,
        seed: 29,
        ..WorkloadConfig::default()
    })
    .records()
    .collect()
}

fn bench_analysis(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function(BenchmarkId::new("all_figures", recs.len()), |b| {
        b.iter(|| Analyzer::analyze(recs.iter()).files.file_count())
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
