//! Sweep-engine bench: wall cost of the tiny CI matrix, end to end
//! (generate → simulate → analyze → policy replay per cell), serial vs
//! pooled workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmig_core::{run_sweep, SweepConfig};

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for workers in [1usize, 0] {
        // A two-shard matrix so the pooled variant has fan-out to use.
        let mut config = SweepConfig::tiny();
        config.scales = vec![0.002, 0.003];
        config.workers = workers;
        let label = if workers == 0 { "auto" } else { "serial" };
        group.bench_function(BenchmarkId::new("tiny2", label), |b| {
            b.iter(|| run_sweep(&config).shards.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
