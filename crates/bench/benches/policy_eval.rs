//! §6-a bench: cost of replaying a trace through the policy-driven disk
//! cache, per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_migrate::eval::{evaluate_policies, EvalConfig};
use fmig_migrate::policy::{Belady, Lru, MigrationPolicy, Stp};
use fmig_trace::TraceRecord;
use fmig_workload::{Workload, WorkloadConfig};

fn records() -> Vec<TraceRecord> {
    Workload::generate(&WorkloadConfig {
        scale: 0.004,
        seed: 17,
        ..WorkloadConfig::default()
    })
    .records()
    .collect()
}

fn bench_policies(c: &mut Criterion) {
    let recs = records();
    let total: u64 = recs.iter().map(|r| r.file_size).sum();
    let config = EvalConfig::with_capacity((total as f64 * 0.015) as u64);
    let mut group = c.benchmark_group("policy_eval");
    group.sample_size(10);
    group.throughput(Throughput::Elements(recs.len() as u64));
    for (name, policy) in [
        ("stp", Box::new(Stp::classic()) as Box<dyn MigrationPolicy>),
        ("lru", Box::new(Lru)),
        ("belady", Box::new(Belady)),
    ] {
        let policies = vec![policy];
        group.bench_function(BenchmarkId::new("replay", name), |b| {
            b.iter(|| {
                evaluate_policies(&recs, &policies, &config)[0]
                    .stats
                    .read_misses
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
