//! Eviction-index bench: purge-heavy replay through the policy cache,
//! incremental index vs the sort-based rescan.
//!
//! The workload is built to make victim ranking the dominant cost: a
//! cache holding thousands of small files with a tight high/low
//! watermark band, so nearly every insert tips a purge that evicts only
//! a handful of files. The rescan re-ranks every resident per purge
//! (`O(n log n)`); the index pops the few victims (amortized
//! `O(log n)`), which is the whole point of the `Auto` eviction mode.
//! STP rides along as the fallback sanity case — non-affine, so both
//! modes run the identical rescan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_migrate::cache::{CacheConfig, DiskCache, EvictionMode};
use fmig_migrate::policy::{Lru, MigrationPolicy, Stp};

/// A churny reference stream over many more files than fit: steady
/// writes of fresh files with a re-read sprinkle, so the resident set
/// stays near the high watermark and purges fire constantly.
fn churn(ops: usize) -> Vec<(bool, u64, u64, i64)> {
    (0..ops as u64)
        .map(|i| {
            let write = i % 4 != 0;
            let id = if write { i } else { i.saturating_sub(900) };
            (write, id, 40_000 + (i % 7) * 10_000, (i * 3) as i64)
        })
        .collect()
}

fn replay(seq: &[(bool, u64, u64, i64)], policy: &dyn MigrationPolicy, mode: EvictionMode) -> u64 {
    // ~64 MB capacity over ~65 KB files: ~900 residents, and the
    // 0.98/0.95 band evicts only a few files per purge — the regime
    // where ranking cost, not eviction volume, dominates.
    let config = CacheConfig {
        capacity: 64 << 20,
        high_watermark: 0.98,
        low_watermark: 0.95,
        eager_writeback: true,
    };
    let mut cache = DiskCache::with_eviction_mode(config, policy, mode);
    for &(write, id, size, now) in seq {
        if write {
            cache.write(id, size, now, None);
        } else {
            cache.read(id, size, now, None);
        }
    }
    cache.stats().evictions
}

fn bench_eviction(c: &mut Criterion) {
    let seq = churn(30_000);
    let mut group = c.benchmark_group("eviction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(seq.len() as u64));
    for (label, mode) in [
        ("indexed", EvictionMode::Indexed),
        ("rescan", EvictionMode::Rescan),
    ] {
        group.bench_function(BenchmarkId::new("lru", label), |b| {
            b.iter(|| replay(&seq, &Lru, mode))
        });
        // STP has no affine form: both modes take the rescan, so this
        // pair doubles as a check that `Indexed` adds no cost when the
        // policy declines the index.
        group.bench_function(BenchmarkId::new("stp", label), |b| {
            b.iter(|| replay(&seq, &Stp::classic(), mode))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eviction);
criterion_main!(benches);
