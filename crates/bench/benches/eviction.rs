//! Eviction-index bench: purge-heavy replay through the policy cache,
//! incremental index (affine or kinetic) vs the sort-based rescan.
//!
//! The workload is built to make victim ranking the dominant cost: a
//! cache holding thousands of small files with a tight high/low
//! watermark band, so nearly every insert tips a purge that evicts only
//! a handful of files. The rescan re-ranks every resident per purge
//! (`O(n log n)`); the affine index pops the few victims (amortized
//! `O(log n)`), and the kinetic tournament — STP(1.4), SAAC,
//! RandomEvict — replays only certificate-expired subtrees per clock
//! advance, which is the whole point of the `Auto` eviction mode.
//! Every leg is indexed-vs-rescan over the identical reference stream,
//! so each pair reads directly as that policy's purge speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_migrate::cache::{CacheConfig, DiskCache, EvictionMode};
use fmig_migrate::policy::{Lru, MigrationPolicy, RandomEvict, Saac, Stp};

/// A churny reference stream over many more files than fit: steady
/// writes of fresh files with a re-read sprinkle, so the resident set
/// stays near the high watermark and purges fire constantly.
fn churn(ops: usize) -> Vec<(bool, u64, u64, i64)> {
    (0..ops as u64)
        .map(|i| {
            let write = i % 4 != 0;
            let id = if write { i } else { i.saturating_sub(900) };
            (write, id, 40_000 + (i % 7) * 10_000, (i * 3) as i64)
        })
        .collect()
}

fn replay(seq: &[(bool, u64, u64, i64)], policy: &dyn MigrationPolicy, mode: EvictionMode) -> u64 {
    // ~256 MB capacity over ~65 KB files: ~4000 residents, and the
    // razor-thin 0.995/0.99 band evicts only a sliver per purge — the
    // regime where ranking cost, not eviction volume, dominates (the
    // rescan re-ranks thousands of residents for every handful of
    // victims).
    let config = CacheConfig {
        capacity: 256 << 20,
        high_watermark: 0.995,
        low_watermark: 0.99,
        eager_writeback: true,
    };
    let mut cache = DiskCache::with_eviction_mode(config, policy, mode);
    for &(write, id, size, now) in seq {
        if write {
            cache.write(id, size, now, None);
        } else {
            cache.read(id, size, now, None);
        }
    }
    cache.stats().evictions
}

fn bench_eviction(c: &mut Criterion) {
    let seq = churn(30_000);
    let mut group = c.benchmark_group("eviction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(seq.len() as u64));
    for (label, mode) in [
        ("indexed", EvictionMode::Indexed),
        ("rescan", EvictionMode::Rescan),
    ] {
        // Affine tier: monotone queue (LRU's touches never reorder).
        group.bench_function(BenchmarkId::new("lru", label), |b| {
            b.iter(|| replay(&seq, &Lru, mode))
        });
        // Kinetic tier: STP(1.4) is the paper's headline policy and the
        // purge-heavy leg `repro sweep` scores as `kinetic_purge_speedup`.
        group.bench_function(BenchmarkId::new("stp", label), |b| {
            b.iter(|| replay(&seq, &Stp::classic(), mode))
        });
        // Kinetic tier, per-file affine curves (one shared tournament
        // variant, certificates from the linear crossing solver).
        group.bench_function(BenchmarkId::new("saac", label), |b| {
            b.iter(|| replay(&seq, &Saac, mode))
        });
        // Kinetic tier, piecewise-constant epochs: certificates expire
        // only at day boundaries, the cheapest kinetic case.
        group.bench_function(BenchmarkId::new("random", label), |b| {
            b.iter(|| replay(&seq, &RandomEvict { salt: 0xA5A5 }, mode))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eviction);
criterion_main!(benches);
