//! Table 3 bench: single-pass statistics accumulation over a trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_trace::{TraceRecord, TraceStats};
use fmig_workload::{Workload, WorkloadConfig};

fn records() -> Vec<TraceRecord> {
    Workload::generate(&WorkloadConfig {
        scale: 0.005,
        seed: 3,
        ..WorkloadConfig::default()
    })
    .records()
    .collect()
}

fn bench_stats(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("table3_stats");
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function(BenchmarkId::new("accumulate", recs.len()), |b| {
        b.iter(|| {
            let mut stats = TraceStats::new();
            stats.observe_all(recs.iter());
            stats.total_references()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
