//! Workload-generator bench: events per second of synthetic NCAR trace
//! production at several scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmig_workload::{Workload, WorkloadConfig};

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for scale in [0.002, 0.01, 0.05] {
        group.bench_function(BenchmarkId::new("generate", scale.to_string()), |b| {
            b.iter(|| {
                Workload::generate(&WorkloadConfig {
                    scale,
                    seed: 9,
                    ..WorkloadConfig::default()
                })
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
