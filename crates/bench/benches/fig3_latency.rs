//! Figure 3 bench: discrete-event simulation rate of the MSS model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_sim::{MssSimulator, SimConfig};
use fmig_trace::TraceRecord;
use fmig_workload::{Workload, WorkloadConfig};

fn records() -> Vec<TraceRecord> {
    Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 5,
        ..WorkloadConfig::default()
    })
    .records()
    .collect()
}

fn bench_sim(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("fig3_latency");
    group.sample_size(20);
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function(BenchmarkId::new("simulate", recs.len()), |b| {
        let sim = MssSimulator::new(SimConfig::default());
        b.iter(|| sim.run(recs.clone()).metrics.requests)
    });
    group.bench_function(BenchmarkId::new("simulate_uncontended", recs.len()), |b| {
        let sim = MssSimulator::new(SimConfig::uncontended());
        b.iter(|| sim.run(recs.clone()).metrics.requests)
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
