//! Table 2 bench: throughput of the compact trace codec (write + parse)
//! against the verbose system-log writer it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmig_trace::time::TRACE_EPOCH;
use fmig_trace::{TraceReader, TraceRecord, TraceWriter, VerboseLogWriter};
use fmig_workload::{Workload, WorkloadConfig};

fn records() -> Vec<TraceRecord> {
    Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 11,
        ..WorkloadConfig::default()
    })
    .records()
    .collect()
}

fn bench_codec(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("table2_codec");
    group.throughput(Throughput::Elements(recs.len() as u64));

    group.bench_function(BenchmarkId::new("compact_write", recs.len()), |b| {
        b.iter(|| {
            let mut w =
                TraceWriter::new(Vec::with_capacity(1 << 20), TRACE_EPOCH).expect("vec writer");
            for rec in &recs {
                w.write_record(rec).expect("write");
            }
            w.bytes_written()
        })
    });

    group.bench_function(BenchmarkId::new("verbose_write", recs.len()), |b| {
        b.iter(|| {
            let mut w = VerboseLogWriter::new(std::io::sink());
            for rec in &recs {
                w.write_record(rec).expect("write");
            }
            w.bytes_written()
        })
    });

    // Pre-encode once for the parse benchmark.
    let mut w = TraceWriter::new(Vec::with_capacity(1 << 20), TRACE_EPOCH).expect("vec writer");
    for rec in &recs {
        w.write_record(rec).expect("write");
    }
    let encoded = w.finish().expect("finish");
    group.bench_function(BenchmarkId::new("parse", recs.len()), |b| {
        b.iter(|| {
            TraceReader::new(std::io::Cursor::new(encoded.as_slice()))
                .expect("header")
                .fold(0usize, |n, r| {
                    r.expect("record");
                    n + 1
                })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
