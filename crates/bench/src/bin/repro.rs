//! `repro` — regenerate any table or figure of Miller & Katz (1993).
//!
//! ```text
//! repro [--scale S] [--seed N] [--no-sim] <experiment>|all|list
//! ```
//!
//! Experiments: table1..table4, fig3..fig12, topology, policies, dedup,
//! dividing, writeback, prefetch. `all` runs everything (EXPERIMENTS.md
//! is produced from this output). Scale 1.0 reproduces the full two-year
//! trace volume (~3.5 M references); the default 0.05 keeps runtime and
//! memory modest while preserving every distribution's shape.

use std::process::ExitCode;

use fmig_core::{experiment_ids, run_experiment, Study, StudyConfig};

struct Args {
    scale: f64,
    seed: u64,
    simulate: bool,
    targets: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 0.05,
        seed: 0x4E43_4152,
        simulate: true,
        targets: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0, 1], got {}", args.scale));
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--no-sim" => args.simulate = false,
            "-h" | "--help" => {
                args.targets.push("help".into());
            }
            other => args.targets.push(other.to_string()),
        }
    }
    if args.targets.is_empty() {
        args.targets.push("help".into());
    }
    Ok(args)
}

fn usage() -> String {
    format!(
        "usage: repro [--scale S] [--seed N] [--no-sim] <experiment>|all|list\n\
         experiments: {}\n",
        experiment_ids().join(" ")
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.targets.iter().any(|t| t == "help") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.targets.iter().any(|t| t == "list") {
        for id in experiment_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args.targets.iter().any(|t| t == "all") {
        experiment_ids().iter().map(|s| s.to_string()).collect()
    } else {
        args.targets.clone()
    };
    for id in &ids {
        if !experiment_ids().contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let mut config = StudyConfig::at_scale(args.scale);
    config.workload.seed = args.seed;
    config.simulate_devices = args.simulate;
    eprintln!(
        "generating study: scale {}, seed {:#x}, simulation {} ...",
        args.scale,
        args.seed,
        if args.simulate { "on" } else { "off" }
    );
    let started = std::time::Instant::now();
    let output = Study::new(config).run();
    eprintln!(
        "study ready: {} records, {} files, {} dirs ({:.1} s)",
        output.records.len(),
        output.analysis.files.file_count(),
        output.analysis.dirs.dir_count(),
        started.elapsed().as_secs_f64()
    );

    for id in &ids {
        match run_experiment(id, &output) {
            Some(result) => {
                println!("{}", result.render());
                println!();
            }
            None => {
                eprintln!("unknown experiment `{id}`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
