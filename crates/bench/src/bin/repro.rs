//! `repro` — regenerate any table or figure of Miller & Katz (1993).
//!
//! ```text
//! repro [--scale S] [--seed N] [--no-sim] <experiment>|all|list
//! repro sweep [--preset tiny|small] [--workers N] [--seed N] [--latency] [--out PATH]
//! ```
//!
//! Experiments: table1..table4, fig3..fig12, topology, policies, dedup,
//! dividing, writeback, prefetch. `all` runs everything (EXPERIMENTS.md
//! is produced from this output). Scale 1.0 reproduces the full two-year
//! trace volume (~3.5 M references); the default 0.05 keeps runtime and
//! memory modest while preserving every distribution's shape.
//!
//! `sweep` runs the parallel scenario-sweep engine and writes a
//! `BENCH_sweep.json` artifact: the deterministic [`fmig_core::sweep`]
//! report plus wall-clock timing normalized by an in-process CPU
//! calibration loop, so CI can gate on regressions across runner
//! generations.

use std::collections::HashMap;
use std::io::{BufReader, Cursor, Write as _};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use fmig_core::{
    experiment_ids, run_experiment, run_sweep, FaultScenarioId, Study, StudyConfig, SweepConfig,
};
use fmig_migrate::cache::{CacheConfig, DiskCache, EvictionMode};
use fmig_migrate::eval::{EvalConfig, TracePrep};
use fmig_migrate::policy::{Lru, Stp};
use fmig_trace::ingest::store::{import, ImportReport, StoreReader};
use fmig_trace::{FormatId, IngestConfig, Sampler, TraceStats};
use fmig_workload::{PaperTargets, Workload};

struct Args {
    scale: f64,
    seed: u64,
    simulate: bool,
    targets: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 0.05,
        seed: 0x4E43_4152,
        simulate: true,
        targets: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0, 1], got {}", args.scale));
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--no-sim" => args.simulate = false,
            "-h" | "--help" => {
                args.targets.push("help".into());
            }
            other => args.targets.push(other.to_string()),
        }
    }
    if args.targets.is_empty() {
        args.targets.push("help".into());
    }
    Ok(args)
}

fn usage() -> String {
    format!(
        "usage: repro [--scale S] [--seed N] [--no-sim] <experiment>|all|list\n\
         \x20      repro sweep [--preset tiny|small|large|huge] [--workers N] [--seed N]\n\
         \x20                  [--latency] [--scaling] [--faults S1,S2,...] [--out PATH]\n\
         \x20      repro sweep --trace STORE_DIR [--workers N] [--seed N] [--out PATH]\n\
         \x20      repro ingest --format msr|clf|ibm-kv --input PATH --out STORE_DIR\n\
         \x20                  [--sample K/M] [--sample-seed N] [--error-budget N]\n\
         \x20      repro ingest-gen --out PATH [--records N] [--files N]\n\
         \x20      repro ingest-smoke [--bench PATH]\n\
         \x20      repro service-smoke [--bench PATH]\n\
         experiments: {}\n\
         fault scenarios: {}\n",
        experiment_ids().join(" "),
        FaultScenarioId::ALL
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(" ")
    )
}

/// `repro sweep`: run the scenario-sweep engine and emit the benchmark
/// artifact the `bench-track` CI job uploads and gates on.
///
/// With `--latency` the matrix also runs latency-true: every cell goes
/// through the closed-loop hierarchy engine, the report carries measured
/// wait distributions, and the artifact gains a second, separately-gated
/// `latency_normalized_cost` score (the open-loop `normalized_cost`
/// keeps its meaning so baselines stay comparable).
///
/// The artifact always carries a third gated score,
/// `mrc_normalized_cost`: the single-pass miss-ratio-curve engine
/// (`fmig_migrate::mrc`) drawing an eight-point capacity curve on the
/// matrix's first shard — the replay hot path this repo optimizes,
/// tracked directly.
///
/// Two in-process higher-is-better ratios ride along unconditionally:
/// `scaling_speedup_vs_hashed` (dense-id replay vs the frozen hashed
/// baseline) and `kinetic_purge_speedup` (the kinetic tournament vs the
/// exact rescan on a purge-heavy STP(1.4) churn). With `--scaling` the
/// artifact also gains the refs/sec `scaling_curve` and its gated
/// `scaling_large_refs_per_sec` big-trace throughput score.
fn run_sweep_command(args: &[String]) -> Result<(), String> {
    let mut preset = "tiny".to_string();
    let mut preset_set = false;
    let mut workers = 0usize;
    let mut seed: Option<u64> = None;
    let mut latency = false;
    let mut scaling = false;
    let mut faults: Option<Vec<FaultScenarioId>> = None;
    let mut trace: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                preset = it.next().ok_or("--preset needs a value")?.clone();
                preset_set = true;
            }
            "--trace" => trace = Some(it.next().ok_or("--trace needs a store dir")?.clone()),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = v.parse().map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|e| format!("bad --seed: {e}"))?);
            }
            "--latency" => latency = true,
            "--scaling" => scaling = true,
            "--faults" => {
                let v = it.next().ok_or("--faults needs a comma-separated list")?;
                let parsed: Result<Vec<FaultScenarioId>, String> = v
                    .split(',')
                    .map(|s| {
                        FaultScenarioId::parse(s.trim())
                            .ok_or_else(|| format!("unknown fault scenario `{s}`"))
                    })
                    .collect();
                faults = Some(parsed?);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown sweep flag `{other}`")),
        }
    }
    if let Some(dir) = trace {
        if preset_set || latency || scaling || faults.is_some() {
            return Err(
                "--trace replays an imported store open-loop; it takes no --preset, \
                 --latency, --scaling, or --faults"
                    .into(),
            );
        }
        return run_trace_sweep(
            &dir,
            workers,
            seed,
            &out.unwrap_or_else(|| "SWEEP_trace.json".to_string()),
        );
    }
    let out = out.unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let mut config = match preset.as_str() {
        "tiny" => SweepConfig::tiny(),
        "small" => SweepConfig::small(),
        "large" => SweepConfig::large(),
        "huge" => SweepConfig::huge(),
        other => {
            return Err(format!(
                "unknown sweep preset `{other}` (tiny|small|large|huge)"
            ))
        }
    };
    config.workers = workers;
    if let Some(s) = seed {
        config.base_seed = s;
    }
    if let Some(f) = faults {
        config.faults = f;
    }

    let calibration_ms = calibrate_ms();
    eprintln!(
        "sweep: preset {preset}, {} cells in {} shards, workers {} (0 = auto), latency {}, faults [{}], calibration {calibration_ms:.1} ms",
        config.cell_count(),
        config.shard_count(),
        config.workers,
        if latency { "on" } else { "off" },
        config
            .fault_axis()
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(","),
    );
    // Repeat the sweep until a time budget fills and keep the fastest
    // run: a single tiny-matrix execution is milliseconds, far inside
    // scheduler noise, but the minimum over a half-second of repeats is
    // a stable figure the 25% regression gate can trust. (Minimum-taking
    // also discounts the cold first pass, so no separate warm-up run.)
    // With --latency every iteration times the open-loop and the
    // closed-loop matrix back to back so both scores come off the same
    // machine state.
    let mut wall_ms = f64::INFINITY;
    let mut latency_wall_ms = f64::INFINITY;
    let mut report = None;
    let budget = Instant::now();
    let mut runs = 0u32;
    while runs < 1 || (budget.elapsed().as_secs_f64() < 0.5 && runs < 50) {
        let started = Instant::now();
        let open_report = run_sweep(&config);
        wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
        if latency {
            let mut closed = config.clone();
            closed.latency = true;
            let started = Instant::now();
            report = Some(run_sweep(&closed));
            latency_wall_ms = latency_wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
        } else {
            report = Some(open_report);
        }
        runs += 1;
    }
    let report = report.expect("loop runs at least once");
    let normalized_cost = wall_ms / calibration_ms;
    eprintln!(
        "sweep done: best of {runs} runs {wall_ms:.1} ms (normalized cost {normalized_cost:.3})"
    );
    if latency {
        eprintln!(
            "latency sweep: best {latency_wall_ms:.1} ms (normalized cost {:.3})",
            latency_wall_ms / calibration_ms
        );
    }

    // Third tracked score: the single-pass capacity-curve engine on the
    // matrix's first shard, timed against the naive one-replay-per-
    // capacity sweep it replaced (LRU, so the shared recency log — the
    // engine's fastest exact tier — carries the purges). The artifact
    // records both costs and the speedup.
    let (prepared, referenced) = {
        let shard_preset = config.presets[0];
        let scale = config.scales[0];
        let workload =
            Workload::generate(&shard_preset.workload(scale, config.workload_seed(0, 0)));
        let referenced: u64 = workload.files().iter().map(|f| f.size).sum();
        let mut prep = TracePrep::new();
        for rec in workload.into_records() {
            prep.observe(&rec);
        }
        (prep.finish(), referenced)
    };
    let (mrc_wall_ms, mrc_naive_wall_ms) = {
        let capacities: Vec<u64> = [0.002, 0.005, 0.01, 0.015, 0.02, 0.03, 0.05, 0.08]
            .iter()
            .map(|f| ((referenced as f64 * f) as u64).max(1))
            .collect();
        let base = EvalConfig::with_capacity(0);
        let mut best = f64::INFINITY;
        let mut naive_best = f64::INFINITY;
        let budget = Instant::now();
        let mut mrc_runs = 0u32;
        while mrc_runs < 1 || (budget.elapsed().as_secs_f64() < 0.4 && mrc_runs < 50) {
            let started = Instant::now();
            let curve = prepared.miss_ratio_curve(&Lru, &capacities, &base);
            std::hint::black_box(curve.points.len());
            best = best.min(started.elapsed().as_secs_f64() * 1e3);
            let started = Instant::now();
            let naive = prepared.capacity_sweep_naive(&Lru, &capacities, &base);
            std::hint::black_box(naive.len());
            naive_best = naive_best.min(started.elapsed().as_secs_f64() * 1e3);
            mrc_runs += 1;
        }
        eprintln!(
            "mrc: {}-point LRU capacity curve, best of {mrc_runs} runs {best:.1} ms \
             (normalized cost {:.3}); naive per-capacity sweep {naive_best:.1} ms \
             ({:.1}x speedup)",
            capacities.len(),
            best / calibration_ms,
            naive_best / best
        );
        (best, naive_best)
    };
    let mrc_normalized_cost = mrc_wall_ms / calibration_ms;
    let mrc_speedup = mrc_naive_wall_ms / mrc_wall_ms;

    // Fourth tracked score, from the dense-identity redesign: one
    // single-policy open-loop cell — the Belady next-use reverse sweep
    // plus an LRU replay at the first cache fraction — run through the
    // live FileId/arena plumbing and through the frozen hashed baseline
    // (`fmig_migrate::hashed`: `HashMap<u64, i64>` next-use sweep,
    // `HashMap<u64, Entry>` cache, per-purge ranking allocation).
    // Reported as refs/sec so the figure is comparable across presets;
    // `ci/check_bench.py` gates both the dense throughput and its
    // speedup over the baseline, so hashing can't silently creep back
    // into the replay hot path.
    let (scaling_refs_per_sec, hashed_refs_per_sec) = {
        // Quarter-capacity cache: hit-dominated, so per-reference
        // identity work (lookup + touch) is the hot path being measured
        // rather than the purge machinery both implementations share.
        // Whole-matrix cost with purges is what `normalized_cost`
        // tracks; this score isolates the id-plumbing term.
        let capacity = ((referenced as f64 * 0.25) as u64).max(1);
        let cfg = EvalConfig::with_capacity(capacity);
        let total_refs = prepared.refs().len() as f64;
        // The reverse sweep is idempotent (next_use values are fully
        // overwritten), so each leg re-runs it on its own buffer
        // without a per-iteration clone.
        let mut dense_refs = prepared.refs().to_vec();
        let mut hashed_refs = prepared.refs().to_vec();
        let mut dense_best = f64::INFINITY;
        let mut hashed_best = f64::INFINITY;
        let budget = Instant::now();
        let mut scaling_runs = 0u32;
        while scaling_runs < 1 || (budget.elapsed().as_secs_f64() < 0.4 && scaling_runs < 50) {
            let started = Instant::now();
            {
                let mut next_seen = vec![i64::MIN; prepared.file_count()];
                for r in dense_refs.iter_mut().rev() {
                    let slot = &mut next_seen[r.id.index()];
                    r.next_use = (*slot != i64::MIN).then_some(*slot);
                    *slot = r.time;
                }
                let mut cache = DiskCache::new(cfg.cache, &Lru);
                cache.reserve_files(prepared.file_count());
                cache.set_est_miss_wait_s(cfg.wait_s_per_miss);
                for r in &dense_refs {
                    if r.write {
                        cache.write(r.id, r.size, r.time, r.next_use);
                    } else {
                        cache.read(r.id, r.size, r.time, r.next_use);
                    }
                }
                std::hint::black_box(cache.stats().read_hits);
            }
            dense_best = dense_best.min(started.elapsed().as_secs_f64());
            let started = Instant::now();
            {
                let mut next_seen: HashMap<u64, i64> = HashMap::new();
                for r in hashed_refs.iter_mut().rev() {
                    let id = u64::from(r.id);
                    r.next_use = next_seen.get(&id).copied();
                    next_seen.insert(id, r.time);
                }
                let stats = fmig_migrate::hashed::replay_prepared(&hashed_refs, &Lru, &cfg);
                std::hint::black_box(stats.read_hits);
            }
            hashed_best = hashed_best.min(started.elapsed().as_secs_f64());
            scaling_runs += 1;
        }
        eprintln!(
            "scaling: {} refs over {} files, dense {:.0} refs/s vs hashed {:.0} refs/s \
             ({:.2}x), best of {scaling_runs} runs",
            prepared.refs().len(),
            prepared.file_count(),
            total_refs / dense_best,
            total_refs / hashed_best,
            hashed_best / dense_best,
        );
        (total_refs / dense_best, total_refs / hashed_best)
    };
    let scaling_speedup_vs_hashed = scaling_refs_per_sec / hashed_refs_per_sec;

    // Fifth tracked score: the kinetic-tournament purge path. A
    // purge-heavy STP(1.4) churn over a *large* resident set (~4000
    // files) in a razor-thin 0.995/0.99 watermark band — the regime the
    // tournament targets: each purge evicts a sliver, so the rescan
    // re-ranks thousands of residents for every handful of victims
    // while the tournament replays only certificate-expired subtrees
    // plus one root-to-leaf path per mutation. The ratio is the
    // victim-ranking speedup on the paper's headline (time-varying)
    // policy; being an in-process ratio it needs no calibration, and
    // `ci/check_bench.py` gates it in the higher-is-better family.
    let (kinetic_purge_indexed_ms, kinetic_purge_rescan_ms) = {
        let seq: Vec<(bool, u64, u64, i64)> = (0..30_000u64)
            .map(|i| {
                let write = i % 4 != 0;
                let id = if write { i } else { i.saturating_sub(900) };
                (write, id, 40_000 + (i % 7) * 10_000, (i * 3) as i64)
            })
            .collect();
        let cfg = CacheConfig {
            capacity: 256 << 20,
            high_watermark: 0.995,
            low_watermark: 0.99,
            eager_writeback: true,
        };
        let stp = Stp::classic();
        let replay = |mode: EvictionMode| {
            let mut cache = DiskCache::with_eviction_mode(cfg, &stp, mode);
            for &(write, id, size, now) in &seq {
                if write {
                    cache.write(id, size, now, None);
                } else {
                    cache.read(id, size, now, None);
                }
            }
            std::hint::black_box(cache.stats().evictions)
        };
        let mut indexed_best = f64::INFINITY;
        let mut rescan_best = f64::INFINITY;
        let budget = Instant::now();
        let mut kinetic_runs = 0u32;
        while kinetic_runs < 1 || (budget.elapsed().as_secs_f64() < 0.4 && kinetic_runs < 50) {
            let started = Instant::now();
            replay(EvictionMode::Indexed);
            indexed_best = indexed_best.min(started.elapsed().as_secs_f64() * 1e3);
            let started = Instant::now();
            replay(EvictionMode::Rescan);
            rescan_best = rescan_best.min(started.elapsed().as_secs_f64() * 1e3);
            kinetic_runs += 1;
        }
        eprintln!(
            "kinetic: purge-heavy STP(1.4) churn, best of {kinetic_runs} runs: \
             tournament {indexed_best:.1} ms vs rescan {rescan_best:.1} ms \
             ({:.1}x speedup)",
            rescan_best / indexed_best
        );
        (indexed_best, rescan_best)
    };
    let kinetic_purge_speedup = kinetic_purge_rescan_ms / kinetic_purge_indexed_ms;

    // `--scaling`: a refs/sec-vs-file-count curve across preset sizes,
    // dense replay only (the artifact's scaling_curve array). Kept
    // behind a flag because the larger points regenerate multi-million-
    // reference workloads.
    let mut scaling_large_refs_per_sec = None;
    let scaling_curve = if scaling {
        let mut rows = Vec::new();
        for (name, curve_config) in [
            ("tiny", SweepConfig::tiny()),
            ("large", SweepConfig::large()),
        ] {
            let shard_preset = curve_config.presets[0];
            let scale = curve_config.scales[0];
            let workload =
                Workload::generate(&shard_preset.workload(scale, curve_config.workload_seed(0, 0)));
            let bytes: u64 = workload.files().iter().map(|f| f.size).sum();
            let mut prep = TracePrep::new();
            for rec in workload.into_records() {
                prep.observe(&rec);
            }
            let point = prep.finish();
            let cfg = EvalConfig::with_capacity(
                ((bytes as f64 * curve_config.cache_fractions[0]) as u64).max(1),
            );
            let started = Instant::now();
            let outcome = point.replay(&Lru, &cfg);
            std::hint::black_box(outcome.stats.read_hits);
            let secs = started.elapsed().as_secs_f64();
            let refs_per_sec = point.refs().len() as f64 / secs;
            eprintln!(
                "scaling curve [{name}]: {} files, {} refs, {refs_per_sec:.0} refs/s",
                point.file_count(),
                point.refs().len(),
            );
            rows.push(format!(
                "{{\"preset\": \"{name}\", \"files\": {}, \"refs\": {}, \"refs_per_sec\": {refs_per_sec:?}}}",
                point.file_count(),
                point.refs().len(),
            ));
            if name == "large" {
                // Surfaced as a top-level score so `ci/check_bench.py`
                // can gate big-trace throughput directly — the tiny-cell
                // speedup alone would miss a large-preset collapse.
                scaling_large_refs_per_sec = Some(refs_per_sec);
            }
        }
        Some(rows)
    } else {
        None
    };

    eprint!("{}", report.render());

    // The report body is deterministic; only the timing envelope varies
    // run to run, which is exactly what the CI baseline compares.
    let latency_fields = if latency {
        format!(
            "  \"latency_wall_ms\": {latency_wall_ms:?},\n  \"latency_normalized_cost\": {:?},\n",
            latency_wall_ms / calibration_ms
        )
    } else {
        String::new()
    };
    let curve_field = match &scaling_curve {
        Some(rows) => {
            let large = scaling_large_refs_per_sec
                .map(|v| format!("  \"scaling_large_refs_per_sec\": {v:?},\n"))
                .unwrap_or_default();
            format!(
                "  \"scaling_curve\": [\n    {}\n  ],\n{large}",
                rows.join(",\n    ")
            )
        }
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"preset\": \"{preset}\",\n  \"cells\": {},\n  \"shards\": {},\n  \"runs\": {runs},\n  \
         \"calibration_ms\": {calibration_ms:?},\n  \"wall_ms\": {wall_ms:?},\n  \
         \"normalized_cost\": {normalized_cost:?},\n  \"mrc_wall_ms\": {mrc_wall_ms:?},\n  \
         \"mrc_naive_wall_ms\": {mrc_naive_wall_ms:?},\n  \"mrc_speedup\": {mrc_speedup:?},\n  \
         \"mrc_normalized_cost\": {mrc_normalized_cost:?},\n  \
         \"scaling_refs_per_sec\": {scaling_refs_per_sec:?},\n  \
         \"hashed_refs_per_sec\": {hashed_refs_per_sec:?},\n  \
         \"scaling_speedup_vs_hashed\": {scaling_speedup_vs_hashed:?},\n  \
         \"kinetic_purge_indexed_ms\": {kinetic_purge_indexed_ms:?},\n  \
         \"kinetic_purge_rescan_ms\": {kinetic_purge_rescan_ms:?},\n  \
         \"kinetic_purge_speedup\": {kinetic_purge_speedup:?},\n{curve_field}{latency_fields}  \"report\": {}}}\n",
        config.cell_count(),
        config.shard_count(),
        indent_json(&report.to_json()),
    );
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

/// `repro sweep --trace`: replay an imported columnar store through the
/// open-loop sweep matrix ([`SweepConfig::imported`]) and write the
/// deterministic report JSON. The store is streamed chunk by chunk, so
/// multi-GB traces replay under bounded memory; the report is
/// byte-identical at any worker count, like every other sweep.
fn run_trace_sweep(dir: &str, workers: usize, seed: Option<u64>, out: &str) -> Result<(), String> {
    // Open once up front for a friendly error and the progress line;
    // the runner re-opens per shard.
    let store = StoreReader::open(Path::new(dir)).map_err(|e| format!("trace store {dir}: {e}"))?;
    let manifest = store.manifest().clone();
    let mut config = SweepConfig::imported(dir);
    config.workers = workers;
    if let Some(s) = seed {
        config.base_seed = s;
    }
    eprintln!(
        "trace sweep: {} records over {} files ({:.2} GB referenced), {} cells, workers {} (0 = auto)",
        manifest.records,
        manifest.files,
        manifest.referenced_bytes as f64 / 1e9,
        config.cell_count(),
        config.workers,
    );
    let started = Instant::now();
    let report = run_sweep(&config);
    let wall_s = started.elapsed().as_secs_f64();
    // One streaming store pass per policy covers the whole capacity grid.
    let replayed = manifest.records as f64 * config.policies.len() as f64;
    eprintln!(
        "trace sweep done: {wall_s:.1} s ({:.0} replayed refs/s across {} policies)",
        replayed / wall_s.max(1e-9),
        config.policies.len(),
    );
    eprint!("{}", report.render());
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

/// `repro ingest`: stream an external-format trace into a columnar
/// replay store and print the trace-stats verifier — the import tallies
/// plus the measured-vs-paper delta table, so the first question about
/// any real trace ("how far is this from the NCAR workload?") is
/// answered at import time.
fn run_ingest_command(args: &[String]) -> Result<(), String> {
    let mut format: Option<FormatId> = None;
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut sample: Option<(u32, u32)> = None;
    let mut sample_seed = 0u64;
    let mut error_budget: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = Some(
                    FormatId::parse(v)
                        .ok_or_else(|| format!("unknown format `{v}` (msr|clf|ibm-kv)"))?,
                );
            }
            "--input" => input = Some(it.next().ok_or("--input needs a path")?.clone()),
            "--out" => out = Some(it.next().ok_or("--out needs a store dir")?.clone()),
            "--sample" => {
                let v = it.next().ok_or("--sample needs K/M")?;
                let (k, m) = v
                    .split_once('/')
                    .ok_or_else(|| format!("--sample wants `K/M`, got `{v}`"))?;
                let keep: u32 = k.parse().map_err(|e| format!("bad --sample: {e}"))?;
                let out_of: u32 = m.parse().map_err(|e| format!("bad --sample: {e}"))?;
                if keep == 0 || out_of == 0 || keep > out_of {
                    return Err(format!("--sample wants 0 < K <= M, got {keep}/{out_of}"));
                }
                sample = Some((keep, out_of));
            }
            "--sample-seed" => {
                let v = it.next().ok_or("--sample-seed needs a value")?;
                sample_seed = v.parse().map_err(|e| format!("bad --sample-seed: {e}"))?;
            }
            "--error-budget" => {
                let v = it.next().ok_or("--error-budget needs a value")?;
                error_budget = Some(v.parse().map_err(|e| format!("bad --error-budget: {e}"))?);
            }
            other => return Err(format!("unknown ingest flag `{other}`")),
        }
    }
    let format = format.ok_or("--format is required (msr|clf|ibm-kv)")?;
    let input = input.ok_or("--input is required")?;
    let out = out.ok_or("--out is required")?;
    let mut config = IngestConfig::default();
    if let Some(b) = error_budget {
        config.error_budget = b;
    }
    if let Some((keep, out_of)) = sample {
        config.sample = Some(Sampler::new(keep, out_of, sample_seed));
    }
    let file = std::fs::File::open(&input).map_err(|e| format!("opening {input}: {e}"))?;
    let reader = BufReader::with_capacity(1 << 20, file);
    let started = Instant::now();
    let mut shown = 0u64;
    let report = import(format, reader, config, Path::new(&out), |e| {
        if shown < 10 {
            eprintln!("ingest: {e}");
        } else if shown == 10 {
            eprintln!("ingest: further line diagnostics suppressed (totals below)");
        }
        shown += 1;
    })
    .map_err(|e| format!("import failed: {e}"))?;
    let secs = started.elapsed().as_secs_f64();
    print!(
        "{}",
        render_ingest_report(format, &input, &out, &report, secs)
    );
    Ok(())
}

/// The `repro ingest` verifier text: import tallies, store summary, and
/// the measured-vs-paper delta rows in the sweep report's format.
fn render_ingest_report(
    format: FormatId,
    input: &str,
    out: &str,
    report: &ImportReport,
    secs: f64,
) -> String {
    let c = &report.counts;
    let m = &report.manifest;
    let window_days = (m.last - m.epoch).max(0) as f64 / 86_400.0;
    let mut text = format!(
        "imported {input} ({}) -> {out} in {secs:.1} s ({:.0} lines/s)\n\
         \x20 lines {} records {} skipped {} parse-errors {} clamped {} sampled-out {}\n\
         \x20 store: {} replayable records, {} files, {:.2} GB referenced, {:.1}-day window\n",
        format.name(),
        c.lines as f64 / secs.max(1e-9),
        c.lines,
        c.records,
        c.skipped,
        c.parse_errors,
        c.clamped,
        c.sampled_out,
        m.records,
        m.files,
        m.referenced_bytes as f64 / 1e9,
        window_days,
    );
    text.push_str(&paper_delta_table(&report.stats));
    text
}

/// Measured-vs-paper rows for the shape claims computable from a
/// single-pass [`TraceStats`] census, in the sweep report's row format.
fn paper_delta_table(stats: &TraceStats) -> String {
    let targets = PaperTargets::ncar();
    let paper_byte_share = targets.gb_read / (targets.gb_read + targets.gb_written);
    let rows = [
        (
            "read_share",
            targets.read_share(),
            stats.read_reference_share(),
        ),
        (
            "error_fraction",
            targets.error_fraction(),
            stats.error_fraction(),
        ),
        ("read_byte_share", paper_byte_share, stats.read_byte_share()),
    ];
    let mut text = String::new();
    for (metric, paper, measured) in rows {
        text.push_str(&format!(
            "  paper {metric:<28} {paper:>8.3} measured {measured:>8.3}\n"
        ));
    }
    text
}

/// `repro ingest-gen`: write a synthetic MSR-format CSV trace big enough
/// to exercise the ingest path at acceptance scale (defaults: 16 M
/// records over 2^20 distinct extent-files, ≈1 GB of text). The stream
/// is deterministic in its arguments, Zipf-skewed so cache fractions
/// discriminate, and timestamp-ordered like the real extracts.
fn run_ingest_gen_command(args: &[String]) -> Result<(), String> {
    let mut out: Option<String> = None;
    let mut records: u64 = 16_000_000;
    let mut files: u64 = 1 << 20;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--records" => {
                let v = it.next().ok_or("--records needs a value")?;
                records = v.parse().map_err(|e| format!("bad --records: {e}"))?;
            }
            "--files" => {
                let v = it.next().ok_or("--files needs a value")?;
                files = v.parse().map_err(|e| format!("bad --files: {e}"))?;
            }
            other => return Err(format!("unknown ingest-gen flag `{other}`")),
        }
    }
    let out = out.ok_or("--out is required")?;
    if files == 0 || records == 0 {
        return Err("--records and --files must be positive".into());
    }
    // File identity under the MSR mapping is (host, disk, 1 MiB extent);
    // spread the requested count over 64 hosts × 4 disks.
    const HOSTS: u64 = 64;
    const DISKS: u64 = 4;
    let extents = files.div_ceil(HOSTS * DISKS).max(1);
    let file = std::fs::File::create(&out).map_err(|e| format!("creating {out}: {e}"))?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    let mut write = |line: &str| -> Result<(), String> {
        w.write_all(line.as_bytes())
            .map_err(|e| format!("writing {out}: {e}"))
    };
    write("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n")?;
    // FILETIME ticks for 2008-01-01T00:00:00Z, advancing ~0.2 s per
    // record with sub-second jitter.
    let mut ticks: u64 = (1_199_145_600 + 11_644_473_600) * 10_000_000;
    let mut state = 0x4D53_5221_u64; // "MSR!"
                                     // Xorshift for the stream, with a murmur-style finalizer: raw
                                     // consecutive xorshift outputs are linearly related over GF(2), and
                                     // slicing (host, disk, extent) bits out of them collapses the file
                                     // population onto a subspace far smaller than the product space.
    let mut step = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mut x = state;
        x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^ (x >> 33)
    };
    let started = Instant::now();
    for i in 0..records {
        let r = step();
        ticks += 1_000_000 + r % 3_000_000;
        let host = r % HOSTS;
        let disk = (r >> 8) % DISKS;
        // Zipf-ish extents: half the traffic hits a hot 1/64th of the
        // extent space, the rest spreads uniformly (so every extent
        // appears given enough records).
        let e = step();
        let extent = if e.is_multiple_of(2) {
            (e >> 1) % (extents / 64).max(1)
        } else {
            (e >> 1) % extents
        };
        let write_op = step() % 10 < 3;
        let size = 4096 + (step() % 64) * 16_384;
        let resp = step() % 40_000_000; // up to 4 s of ticks
        write(&format!(
            "{ticks},src{host:02},{disk},{},{},{size},{resp}\n",
            if write_op { "Write" } else { "Read" },
            extent << 20,
        ))?;
        if i % 2_000_000 == 1_999_999 {
            eprintln!("ingest-gen: {} / {records} records...", i + 1);
        }
    }
    w.flush().map_err(|e| format!("writing {out}: {e}"))?;
    let bytes = std::fs::metadata(&out).map_err(|e| e.to_string())?.len();
    eprintln!(
        "ingest-gen: wrote {records} records ({:.2} GB) to {out} in {:.1} s",
        bytes as f64 / 1e9,
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// One ingest-smoke fixture: an external-format sample plus the pinned
/// import outcome. The pins cover the full import pipeline — line
/// parsing, skip/error discipline, normalization, and the store's
/// manifest arithmetic — so a drift in any layer fails the smoke.
struct IngestFixture {
    format: FormatId,
    path: &'static str,
    records: u64,
    files: u64,
    referenced_bytes: u64,
    read_records: u64,
    skipped: u64,
    parse_errors: u64,
    error_census: u64,
}

const INGEST_FIXTURES: [IngestFixture; 3] = [
    IngestFixture {
        format: FormatId::Msr,
        path: "tests/fixtures/ingest/msr_sample.csv",
        records: 16,
        files: 7,
        referenced_bytes: 536_576,
        read_records: 11,
        skipped: 1,
        parse_errors: 2,
        error_census: 0,
    },
    IngestFixture {
        format: FormatId::Clf,
        path: "tests/fixtures/ingest/clf_sample.log",
        records: 9,
        files: 6,
        referenced_bytes: 1_208_453,
        read_records: 7,
        skipped: 3,
        parse_errors: 2,
        error_census: 3,
    },
    IngestFixture {
        format: FormatId::IbmKv,
        path: "tests/fixtures/ingest/ibmkv_sample.txt",
        records: 14,
        files: 6,
        referenced_bytes: 7_388_757,
        read_records: 10,
        skipped: 2,
        parse_errors: 2,
        error_census: 0,
    },
];

/// `repro ingest-smoke`: import the pinned fixture of every external
/// format, hold the result to its pinned stats, sweep one imported cell
/// at two worker counts, and record the import throughput as
/// `ingest_refs_per_sec` in the benchmark artifact (report-only; the CI
/// baseline keeps it ungated).
fn run_ingest_smoke_command(args: &[String]) -> Result<(), String> {
    let mut bench: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => bench = Some(it.next().ok_or("--bench needs a value")?.clone()),
            other => return Err(format!("unknown ingest-smoke flag `{other}`")),
        }
    }
    let tmp = std::env::temp_dir().join(format!("fmig-ingest-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    // 1. Fixture imports: every format, pinned end-to-end.
    let mut kv_store = None;
    for fx in &INGEST_FIXTURES {
        let file = std::fs::File::open(fx.path)
            .map_err(|e| format!("opening {} (run from the repo root): {e}", fx.path))?;
        let dir = tmp.join(fx.format.name());
        let report = import(
            fx.format,
            BufReader::new(file),
            IngestConfig::default(),
            &dir,
            |_| {},
        )
        .map_err(|e| format!("{}: import failed: {e}", fx.path))?;
        let m = &report.manifest;
        let got = (
            m.records,
            m.files,
            m.referenced_bytes,
            m.read_records,
            report.counts.skipped,
            report.counts.parse_errors,
            report.stats.total_errors(),
        );
        let want = (
            fx.records,
            fx.files,
            fx.referenced_bytes,
            fx.read_records,
            fx.skipped,
            fx.parse_errors,
            fx.error_census,
        );
        if got != want {
            return Err(format!(
                "{}: pinned import stats drifted\n  want (records, files, bytes, reads, \
                 skipped, errors, census) = {want:?}\n  got  {got:?}",
                fx.path
            ));
        }
        println!(
            "ingest-smoke {}: {} records, {} files, {} bytes referenced — pins hold",
            fx.format.name(),
            m.records,
            m.files,
            m.referenced_bytes
        );
        if fx.format == FormatId::IbmKv {
            kv_store = Some(dir);
        }
    }

    // 2. One imported sweep cell, byte-identical across worker counts.
    let dir = kv_store.expect("fixture table covers ibm-kv");
    let store_dir = dir.to_str().ok_or("temp dir is not UTF-8")?;
    let mut serial = SweepConfig::imported(store_dir);
    serial.policies = vec![fmig_core::PolicyId::Lru, fmig_core::PolicyId::Stp14];
    serial.cache_fractions = vec![0.25];
    serial.workers = 1;
    let mut pooled = serial.clone();
    pooled.workers = 4;
    let a = run_sweep(&serial).to_json();
    let b = run_sweep(&pooled).to_json();
    if a != b {
        return Err("imported sweep cell differs across worker counts".into());
    }
    if !a.contains("\"preset\": \"imported\"") || !a.contains("\"trace\": ") {
        return Err("imported sweep report is missing its trace schema".into());
    }
    println!("ingest-smoke sweep: imported cell byte-identical at workers 1 and 4");

    // 3. Import throughput on a synthetic in-memory MSR stream, recorded
    //    report-only. 200 k records is enough for a stable figure while
    //    keeping the smoke in CI seconds.
    let mut text = String::with_capacity(16 << 20);
    let mut ticks: u64 = (1_199_145_600 + 11_644_473_600) * 10_000_000;
    let mut state = 0x534D_4F4B_u64; // "SMOK"
    for _ in 0..200_000u32 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ticks += 1_000_000 + state % 1_000_000;
        text.push_str(&format!(
            "{ticks},h{:02},{},{},{},{},{}\n",
            state % 16,
            (state >> 8) % 4,
            if state.is_multiple_of(4) {
                "Write"
            } else {
                "Read"
            },
            ((state >> 16) % 4096) << 20,
            4096 + (state >> 24) % 500_000,
            state % 10_000_000,
        ));
    }
    let bench_dir = tmp.join("bench");
    let started = Instant::now();
    let report = import(
        FormatId::Msr,
        Cursor::new(text.as_bytes()),
        IngestConfig::default(),
        &bench_dir,
        |_| {},
    )
    .map_err(|e| format!("throughput import failed: {e}"))?;
    let secs = started.elapsed().as_secs_f64();
    let ingest_refs_per_sec = report.counts.records as f64 / secs.max(1e-9);
    println!(
        "ingest-smoke throughput: {} records in {secs:.2} s ({ingest_refs_per_sec:.0} refs/s)",
        report.counts.records
    );
    if let Some(path) = bench {
        record_bench_key(&path, "ingest_refs_per_sec", ingest_refs_per_sec)?;
        println!("ingest-smoke: recorded ingest_refs_per_sec in {path}");
    }
    std::fs::remove_dir_all(&tmp).map_err(|e| format!("cleanup: {e}"))?;
    println!(
        "ingest-smoke: OK ({} formats, pins hold)",
        INGEST_FIXTURES.len()
    );
    Ok(())
}

/// Inserts (or replaces) one top-level numeric key in the benchmark
/// artifact without disturbing its other fields — the same line-level
/// surgery the service smoke performs for its throughput figure.
fn record_bench_key(path: &str, key: &str, value: f64) -> Result<(), String> {
    let needle = format!("\"{key}\"");
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(_) => {
            let fresh = format!("{{\n  \"{key}\": {value:?}\n}}\n");
            return std::fs::write(path, fresh).map_err(|e| format!("writing {path}: {e}"));
        }
    };
    let kept: Vec<&str> = body.lines().filter(|l| !l.contains(&needle)).collect();
    let mut out = Vec::with_capacity(kept.len() + 1);
    let mut inserted = false;
    for line in kept {
        out.push(line.to_string());
        if !inserted && line.trim_start().starts_with('{') {
            out.push(format!("  \"{key}\": {value:?},"));
            inserted = true;
        }
    }
    let mut text = out.join("\n");
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

/// Measures a fixed CPU-bound mixing loop so wall times from machines of
/// different speeds become comparable: `normalized_cost` is "sweeps per
/// calibration loop", a pure ratio of two measurements on the same box.
fn calibrate_ms() -> f64 {
    // Best of three: the first pass doubles as warm-up, and taking the
    // minimum shrugs off scheduler noise.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let mut x: u64 = 0x9E37_79B9;
        for i in 0..20_000_000u64 {
            x ^= i;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
        }
        std::hint::black_box(x);
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    if best > 0.0 {
        best
    } else {
        1.0
    }
}

/// Re-indents the sweep report's JSON two levels deep so the artifact
/// stays readable when nested under the timing envelope.
fn indent_json(json: &str) -> String {
    json.trim_end().replace('\n', "\n  ")
}

/// `repro service-smoke`: boot the real `fmig-origin` / `fmig-served` /
/// `fmig-loadgen` binaries over loopback, replay the tiny-preset cell
/// healthy and degraded-peak, and hold the live service to the
/// simulator oracle (exact miss counters, p99 wait within ±15%). The
/// healthy run's throughput is recorded as `service_refs_per_sec` in
/// the benchmark artifact (report-only; not gated).
fn run_service_smoke_command(args: &[String]) -> Result<(), String> {
    let mut bench = "BENCH_sweep.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                bench = it.next().ok_or("--bench needs a value")?.clone();
            }
            other => return Err(format!("unknown service-smoke flag `{other}`")),
        }
    }
    let outcomes = fmig_serve::smoke::run_service_smoke(Some(&bench))?;
    for o in &outcomes {
        println!(
            "service-smoke {}: miss_ratio={:.4} p99 live={:.1}s oracle={:.1}s ({:.0} refs/s)",
            o.scenario, o.miss_ratio, o.live_p99_s, o.oracle_p99_s, o.refs_per_sec
        );
    }
    println!(
        "service-smoke: OK ({} scenarios, oracle-exact)",
        outcomes.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    // The sweep subcommand has its own flag set; dispatch before the
    // experiment parser sees the arguments.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("sweep") {
        return match run_sweep_command(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                ExitCode::FAILURE
            }
        };
    }
    for (name, run) in [
        (
            "ingest",
            run_ingest_command as fn(&[String]) -> Result<(), String>,
        ),
        ("ingest-gen", run_ingest_gen_command),
        ("ingest-smoke", run_ingest_smoke_command),
    ] {
        if raw.first().map(String::as_str) == Some(name) {
            return match run(&raw[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}\n{}", usage());
                    ExitCode::FAILURE
                }
            };
        }
    }
    if raw.first().map(String::as_str) == Some("service-smoke") {
        return match run_service_smoke_command(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                ExitCode::FAILURE
            }
        };
    }

    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.targets.iter().any(|t| t == "help") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.targets.iter().any(|t| t == "list") {
        for id in experiment_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if args.targets.iter().any(|t| t == "all") {
        experiment_ids().iter().map(|s| s.to_string()).collect()
    } else {
        args.targets.clone()
    };
    for id in &ids {
        if !experiment_ids().contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let mut config = StudyConfig::at_scale(args.scale);
    config.workload.seed = args.seed;
    config.simulate_devices = args.simulate;
    eprintln!(
        "generating study: scale {}, seed {:#x}, simulation {} ...",
        args.scale,
        args.seed,
        if args.simulate { "on" } else { "off" }
    );
    let started = std::time::Instant::now();
    let output = Study::new(config).run();
    eprintln!(
        "study ready: {} records, {} files, {} dirs ({:.1} s)",
        output.records.len(),
        output.analysis.files.file_count(),
        output.analysis.dirs.dir_count(),
        started.elapsed().as_secs_f64()
    );

    for id in &ids {
        match run_experiment(id, &output) {
            Some(result) => {
                println!("{}", result.render());
                println!();
            }
            None => {
                eprintln!("unknown experiment `{id}`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
