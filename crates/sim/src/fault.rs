//! Deterministic fault injection for the closed-loop hierarchy engine.
//!
//! The paper's MSS was defined as much by its failure modes as by its
//! steady state: operator-mounted tapes went missing, drives fought
//! over cartridges, and a recall could stall for minutes behind a
//! repair. [`FaultPlan`] describes that degraded world as a *scenario*
//! — outage processes over drives and mounters, a per-recall media
//! read-error probability with bounded retry, and slow-drive windows —
//! and [`FaultSchedule::materialize`] turns the scenario into a
//! concrete, fully deterministic schedule from a seed:
//!
//! * **outage windows** are sampled up front from a dedicated RNG
//!   stream derived from the seed (exponential up-times, jittered
//!   repair times), so the same seed always parks the same units at the
//!   same instants;
//! * **read errors** are decided by a counter-based hash of
//!   `(seed, recall, attempt)` — no shared RNG stream, so the decision
//!   for a given recall cannot shift when unrelated event interleaving
//!   changes;
//! * **slow-drive windows** scale tape transfer rates by a fixed
//!   factor over scheduled intervals.
//!
//! Because the schedule consumes no draws from the engine's own RNG and
//! an empty plan materializes to an inert schedule, a zero-fault run is
//! **bit-identical** to a run of the pre-fault engine — the property
//! `tests/golden_report.rs` and `tests/fault_injection.rs` pin.

use fmig_trace::DeviceClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::event::{SimMs, MS};

/// How long after the last arrival materialized fault windows may still
/// begin: the queues keep draining past the final reference, and an
/// outage or slow window during the drain is as real as one during it.
/// Shared between the closed-loop engine and the live origin server so
/// both materialize schedules over the identical horizon.
pub const FAULT_HORIZON_SLACK_MS: SimMs = 4 * 3600 * MS;

/// A resource class a fault clause can take units away from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Tape drives in the StorageTek silo.
    SiloDrive,
    /// Operator-mounted shelf tape drives.
    ManualDrive,
    /// Robot arms mounting silo cartridges.
    RobotArm,
    /// Human operators mounting shelf cartridges.
    Operator,
}

impl FaultTarget {
    /// The tape tier whose jobs queue behind this resource — used to
    /// attribute queue wait to outages.
    pub fn tier(self) -> DeviceClass {
        match self {
            FaultTarget::SiloDrive | FaultTarget::RobotArm => DeviceClass::TapeSilo,
            FaultTarget::ManualDrive | FaultTarget::Operator => DeviceClass::TapeManual,
        }
    }
}

/// One outage process: a renewal process of failures on a resource
/// class, each parking one unit for a repair window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageClause {
    /// Resource the outages hit.
    pub target: FaultTarget,
    /// Mean up-time between failures, seconds (exponential).
    pub mean_up_s: f64,
    /// Repair duration, seconds (uniformly jittered by `jitter`).
    pub down_s: f64,
    /// Relative jitter (±) on the repair duration, in `[0, 1)`.
    pub jitter: f64,
}

/// Slow-drive degradation: scheduled windows during which every tape
/// transfer streams at `rate_factor` times its healthy rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowDriveClause {
    /// Tape transfer-rate multiplier inside a window, in `(0, 1]`.
    pub rate_factor: f64,
    /// Mean healthy time between degradation windows, seconds.
    pub mean_up_s: f64,
    /// Window duration, seconds.
    pub down_s: f64,
}

/// A degraded-mode scenario for the hierarchy engine. The plan is pure
/// configuration — materialize it against a seed and a time span to get
/// the concrete [`FaultSchedule`] the engine consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Outage processes over drives and mounters.
    pub outages: Vec<OutageClause>,
    /// Probability a recall's tape transfer fails with a media read
    /// error and must retry, in `[0, 1]`.
    pub read_error_prob: f64,
    /// Failed attempts allowed per recall; the attempt after the last
    /// allowed failure always succeeds (an operator re-cleans the
    /// cartridge), so every recall terminates.
    pub max_read_retries: u32,
    /// Backoff before a failed recall re-joins its drive queue, seconds.
    pub retry_backoff_s: f64,
    /// Optional slow-drive degradation windows.
    pub slow_drive: Option<SlowDriveClause>,
}

impl FaultPlan {
    /// The empty plan: no faults, engine behavior bit-identical to a
    /// fault-free run.
    pub fn none() -> Self {
        FaultPlan {
            outages: Vec::new(),
            read_error_prob: 0.0,
            max_read_retries: 0,
            retry_backoff_s: 30.0,
            slow_drive: None,
        }
    }

    /// True when materializing this plan can never inject anything.
    pub fn is_none(&self) -> bool {
        self.outages.is_empty() && self.read_error_prob <= 0.0 && self.slow_drive.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// One materialized outage: `target` loses a unit over
/// `[start_ms, end_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// Resource losing a unit.
    pub target: FaultTarget,
    /// Window start, sim milliseconds.
    pub start_ms: SimMs,
    /// Window end, sim milliseconds.
    pub end_ms: SimMs,
}

/// The concrete, deterministic schedule an engine run consumes; see the
/// module docs for how determinism is obtained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    windows: Vec<OutageWindow>,
    slow: Vec<(SimMs, SimMs)>,
    slow_factor: f64,
    read_error_prob: f64,
    max_read_retries: u32,
    retry_backoff_ms: SimMs,
    seed: u64,
    active: bool,
}

/// splitmix64 finalizer: derives well-spread child seeds from weak
/// inputs (a seed ⊕ small counters). This is the one seed-mixer of the
/// workspace — the sweep engine derives every per-coordinate stream
/// through it too, so the healthy cells' streams and the fault
/// schedule's streams come from the same, single definition.
pub fn seed_mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

use seed_mix as mix;

impl FaultSchedule {
    /// The inert schedule: injects nothing, decides nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Materializes `plan` over `[start_ms, end_ms)` from `seed`.
    ///
    /// Outage and slow-drive windows are sampled from an RNG stream
    /// derived from `seed` alone (never shared with the engine), so one
    /// `(plan, seed, span)` triple always yields one schedule. An empty
    /// plan returns the inert schedule regardless of seed.
    pub fn materialize(plan: &FaultPlan, seed: u64, start_ms: SimMs, end_ms: SimMs) -> Self {
        if plan.is_none() {
            return Self::none();
        }
        let mut windows = Vec::new();
        for (ci, clause) in plan.outages.iter().enumerate() {
            // One independent stream per clause: reordering or removing
            // a clause never reshuffles the others' windows.
            let mut rng = SmallRng::seed_from_u64(mix(seed, 0x4F55_5441 + ci as u64)); // "OUTA"
            let mut t = start_ms;
            if clause.mean_up_s <= 0.0 || clause.down_s <= 0.0 {
                continue;
            }
            loop {
                let up_s = -clause.mean_up_s * (1.0f64 - rng.gen_range(0.0..1.0)).ln();
                t += (up_s * MS as f64) as SimMs;
                if t >= end_ms {
                    break;
                }
                let jitter = if clause.jitter > 0.0 {
                    1.0 + rng.gen_range(-clause.jitter..clause.jitter)
                } else {
                    1.0
                };
                let down_ms = ((clause.down_s * jitter) * MS as f64).max(1.0) as SimMs;
                windows.push(OutageWindow {
                    target: clause.target,
                    start_ms: t,
                    end_ms: (t + down_ms).min(end_ms),
                });
                t += down_ms;
            }
        }
        windows.sort_by_key(|w| (w.start_ms, w.end_ms));

        let mut slow = Vec::new();
        let mut slow_factor = 1.0;
        if let Some(clause) = plan.slow_drive {
            slow_factor = clause.rate_factor.clamp(1e-3, 1.0);
            if clause.mean_up_s > 0.0 && clause.down_s > 0.0 {
                let mut rng = SmallRng::seed_from_u64(mix(seed, 0x534C_4F57)); // "SLOW"
                let mut t = start_ms;
                loop {
                    let up_s = -clause.mean_up_s * (1.0f64 - rng.gen_range(0.0..1.0)).ln();
                    t += (up_s * MS as f64) as SimMs;
                    if t >= end_ms {
                        break;
                    }
                    let down_ms = (clause.down_s * MS as f64).max(1.0) as SimMs;
                    slow.push((t, (t + down_ms).min(end_ms)));
                    t += down_ms;
                }
            }
        }

        FaultSchedule {
            windows,
            slow,
            slow_factor,
            read_error_prob: plan.read_error_prob.clamp(0.0, 1.0),
            max_read_retries: plan.max_read_retries,
            retry_backoff_ms: (plan.retry_backoff_s.max(0.0) * MS as f64) as SimMs,
            seed,
            active: true,
        }
    }

    /// True when this schedule can inject at least one fault class.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The materialized outage windows, sorted by start time.
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// Backoff before a failed recall re-queues, milliseconds.
    pub fn retry_backoff_ms(&self) -> SimMs {
        self.retry_backoff_ms
    }

    /// Decides whether attempt `attempt` (0-based) of recall
    /// `recall_seq` fails with a media read error.
    ///
    /// Counter-based: the decision is a pure function of
    /// `(seed, recall_seq, attempt)`, so it cannot shift when unrelated
    /// events reorder. Attempts past `max_read_retries` always succeed,
    /// bounding every recall's retry chain.
    pub fn read_fails(&self, recall_seq: u64, attempt: u32) -> bool {
        if self.read_error_prob <= 0.0 || attempt >= self.max_read_retries {
            return false;
        }
        let h = mix(mix(self.seed, 0x5245_4144 ^ recall_seq), u64::from(attempt)); // "READ"
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.read_error_prob
    }

    /// The tape transfer-rate multiplier in effect at `t_ms` for
    /// `device`; disks never degrade and a healthy instant is exactly
    /// `1.0`.
    pub fn rate_factor_at(&self, device: DeviceClass, t_ms: SimMs) -> f64 {
        if device == DeviceClass::Disk || self.slow.is_empty() {
            return 1.0;
        }
        for &(s, e) in &self.slow {
            if t_ms >= s && t_ms < e {
                return self.slow_factor;
            }
            if t_ms < s {
                break;
            }
        }
        1.0
    }

    /// Milliseconds of `[from_ms, to_ms)` overlapping the **union** of
    /// outage windows of resources whose tier is `tier` — the
    /// outage-attributed share of a queue wait. Union, not sum:
    /// concurrent windows of one tier (two failed drives, a drive down
    /// during a robot repair) must not attribute the same waiting
    /// millisecond twice, or the attributed wait could exceed the wait
    /// itself.
    pub fn outage_overlap_ms(&self, tier: DeviceClass, from_ms: SimMs, to_ms: SimMs) -> SimMs {
        if self.windows.is_empty() || to_ms <= from_ms {
            return 0;
        }
        // Windows are sorted by start, so a cursor past each counted
        // interval's end computes the union in one pass.
        let mut overlap = 0;
        let mut cursor = from_ms;
        for w in &self.windows {
            if w.start_ms >= to_ms {
                break;
            }
            if w.target.tier() != tier {
                continue;
            }
            let lo = w.start_ms.max(cursor);
            let hi = w.end_ms.min(to_ms);
            if hi > lo {
                overlap += hi - lo;
                cursor = hi;
            }
        }
        overlap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(target: FaultTarget, mean_up_s: f64, down_s: f64) -> OutageClause {
        OutageClause {
            target,
            mean_up_s,
            down_s,
            jitter: 0.2,
        }
    }

    fn flaky_plan() -> FaultPlan {
        FaultPlan {
            outages: vec![
                outage(FaultTarget::SiloDrive, 4_000.0, 900.0),
                outage(FaultTarget::Operator, 9_000.0, 3_600.0),
            ],
            read_error_prob: 0.1,
            max_read_retries: 3,
            retry_backoff_s: 45.0,
            slow_drive: Some(SlowDriveClause {
                rate_factor: 0.4,
                mean_up_s: 5_000.0,
                down_s: 1_500.0,
            }),
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        let s = FaultSchedule::materialize(&FaultPlan::none(), 99, 0, 1_000_000_000);
        assert!(!s.is_active());
        assert!(s.windows().is_empty());
        assert!(!s.read_fails(0, 0));
        assert_eq!(s.rate_factor_at(DeviceClass::TapeSilo, 500), 1.0);
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeSilo, 0, 1000), 0);
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_schedule() {
        let plan = flaky_plan();
        let a = FaultSchedule::materialize(&plan, 7, 0, 500_000_000);
        let b = FaultSchedule::materialize(&plan, 7, 0, 500_000_000);
        assert_eq!(a, b, "equal seeds must materialize identically");
        assert!(!a.windows().is_empty(), "a week of sim time has outages");
        let c = FaultSchedule::materialize(&plan, 8, 0, 500_000_000);
        assert_ne!(a.windows(), c.windows(), "seeds must decorrelate");
    }

    #[test]
    fn windows_are_sorted_disjoint_per_clause_and_bounded() {
        let plan = flaky_plan();
        let s = FaultSchedule::materialize(&plan, 42, 1_000, 200_000_000);
        for w in s.windows() {
            assert!(w.start_ms >= 1_000);
            assert!(w.end_ms <= 200_000_000);
            assert!(w.start_ms < w.end_ms);
        }
        for pair in s.windows().windows(2) {
            assert!(pair[0].start_ms <= pair[1].start_ms, "sorted by start");
        }
    }

    #[test]
    fn read_failures_are_counter_based_and_bounded() {
        let plan = FaultPlan {
            read_error_prob: 0.5,
            max_read_retries: 2,
            ..FaultPlan::none()
        };
        let s = FaultSchedule::materialize(&plan, 3, 0, 1_000);
        // Pure function of (recall, attempt): re-asking never flips.
        for recall in 0..200u64 {
            for attempt in 0..4u32 {
                assert_eq!(s.read_fails(recall, attempt), s.read_fails(recall, attempt));
            }
            // Bounded retry: the attempt after the budget always works.
            assert!(!s.read_fails(recall, 2));
            assert!(!s.read_fails(recall, 3));
        }
        // The rate is roughly honoured across recalls.
        let failures = (0..2_000u64).filter(|&r| s.read_fails(r, 0)).count();
        assert!(
            (800..1200).contains(&failures),
            "~50% expected, got {failures}/2000"
        );
    }

    #[test]
    fn slow_windows_gate_the_rate_factor() {
        let plan = FaultPlan {
            slow_drive: Some(SlowDriveClause {
                rate_factor: 0.25,
                mean_up_s: 100.0,
                down_s: 50.0,
            }),
            ..FaultPlan::none()
        };
        let s = FaultSchedule::materialize(&plan, 11, 0, 10_000_000);
        let degraded: Vec<SimMs> = (0..10_000_000)
            .step_by(10_000)
            .filter(|&t| s.rate_factor_at(DeviceClass::TapeSilo, t) < 1.0)
            .collect();
        assert!(!degraded.is_empty(), "windows must bite");
        for &t in &degraded {
            assert_eq!(s.rate_factor_at(DeviceClass::TapeSilo, t), 0.25);
            // Disks never degrade.
            assert_eq!(s.rate_factor_at(DeviceClass::Disk, t), 1.0);
        }
        // Roughly a third of the time is degraded (50 of every ~150 s).
        let share = degraded.len() as f64 / 1_000.0;
        assert!((0.15..0.55).contains(&share), "degraded share {share}");
    }

    #[test]
    fn outage_overlap_attributes_by_tier() {
        let s = FaultSchedule {
            windows: vec![
                OutageWindow {
                    target: FaultTarget::SiloDrive,
                    start_ms: 100,
                    end_ms: 200,
                },
                OutageWindow {
                    target: FaultTarget::Operator,
                    start_ms: 150,
                    end_ms: 400,
                },
            ],
            active: true,
            ..FaultSchedule::none()
        };
        // Silo wait overlapping [50, 250): only the silo window counts.
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeSilo, 50, 250), 100);
        // Manual wait overlapping the same span: the operator window.
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeManual, 50, 250), 100);
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeManual, 0, 1000), 250);
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeSilo, 200, 1000), 0);
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeSilo, 300, 100), 0);
    }

    #[test]
    fn overlapping_same_tier_windows_attribute_as_a_union() {
        // Two silo-tier windows (a drive and the robot arm) overlap on
        // [150, 200): a wait spanning both must count each millisecond
        // once, never twice.
        let s = FaultSchedule {
            windows: vec![
                OutageWindow {
                    target: FaultTarget::SiloDrive,
                    start_ms: 100,
                    end_ms: 200,
                },
                OutageWindow {
                    target: FaultTarget::RobotArm,
                    start_ms: 150,
                    end_ms: 300,
                },
            ],
            active: true,
            ..FaultSchedule::none()
        };
        // Union over [0, 1000) is [100, 300) = 200 ms, not 250.
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeSilo, 0, 1000), 200);
        // A wait inside the doubly-covered region counts once.
        assert_eq!(s.outage_overlap_ms(DeviceClass::TapeSilo, 150, 200), 50);
        // A window fully inside an already-counted one adds nothing.
        let nested = FaultSchedule {
            windows: vec![
                OutageWindow {
                    target: FaultTarget::SiloDrive,
                    start_ms: 100,
                    end_ms: 400,
                },
                OutageWindow {
                    target: FaultTarget::SiloDrive,
                    start_ms: 150,
                    end_ms: 250,
                },
            ],
            active: true,
            ..FaultSchedule::none()
        };
        assert_eq!(
            nested.outage_overlap_ms(DeviceClass::TapeSilo, 0, 1000),
            300
        );
    }
}
