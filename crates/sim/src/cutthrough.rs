//! The §5.1.1 cut-through optimization, modelled analytically.
//!
//! "One possible way to improve perceived response time in the system
//! would be to use cut-through, as in [MSS-II]. Under this scheme, a
//! call to open a file returns immediately, while the operating system
//! continues to load the file from the MSS ... This scheme works because
//! applications often do not read data as fast as the MSS can deliver
//! it."
//!
//! With cut-through, the application stalls only when it catches up with
//! the incoming stream. For an application consuming at rate `c` and a
//! transfer delivering at rate `r ≥ c` after a first-byte latency `L`,
//! the perceived stall is `L` at open plus nothing afterwards; if
//! `r < c` the application also waits for the stream to finish. Without
//! cut-through the application waits `L + size/r` before its first byte
//! of processing.

use fmig_trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Application consumption model for cut-through analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutThroughModel {
    /// Application consumption rate in bytes/second (how fast the Cray
    /// job actually reads the staged file).
    pub consume_bps: f64,
    /// Per-request overlap setup cost in seconds (pipeline start).
    pub setup_s: f64,
}

impl CutThroughModel {
    /// A visualization-style consumer: ~1 MB/s, well under tape speed.
    pub fn visualization() -> Self {
        CutThroughModel {
            consume_bps: 1.0e6,
            setup_s: 0.5,
        }
    }
}

/// Perceived-stall accounting for one request population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CutThroughReport {
    /// Requests analysed.
    pub requests: u64,
    /// Mean stall without cut-through (wait for the full staging).
    pub mean_stall_without_s: f64,
    /// Mean stall with cut-through (first byte + catch-up stalls).
    pub mean_stall_with_s: f64,
}

impl CutThroughReport {
    /// Stall reduction factor (>1 means cut-through helps).
    pub fn speedup(&self) -> f64 {
        if self.mean_stall_with_s <= 0.0 {
            return 1.0;
        }
        self.mean_stall_without_s / self.mean_stall_with_s
    }
}

/// Stall times for one request under the model.
///
/// Returns `(without_cut_through, with_cut_through)` in seconds, given
/// the measured first-byte latency and transfer time of the record.
pub fn stalls(rec: &TraceRecord, model: &CutThroughModel) -> (f64, f64) {
    let latency = rec.startup_latency_s as f64;
    let transfer = rec.transfer_ms as f64 / 1000.0;
    let without = latency + transfer;
    // With cut-through the application starts at the first byte and
    // consumes while the tail streams in; it stalls again only if it
    // consumes faster than the stream delivers.
    let consume = rec.file_size as f64 / model.consume_bps;
    let tail_stall = (transfer - consume).max(0.0);
    let with = latency + model.setup_s + tail_stall;
    (without, with)
}

/// Analyzes the read side of an annotated trace.
pub fn analyze<'a>(
    records: impl IntoIterator<Item = &'a TraceRecord>,
    model: &CutThroughModel,
) -> CutThroughReport {
    let mut report = CutThroughReport::default();
    let mut without_sum = 0.0;
    let mut with_sum = 0.0;
    for rec in records {
        if !rec.is_ok() || rec.direction() != fmig_trace::Direction::Read {
            continue;
        }
        let (without, with) = stalls(rec, model);
        report.requests += 1;
        without_sum += without;
        with_sum += with;
    }
    if report.requests > 0 {
        report.mean_stall_without_s = without_sum / report.requests as f64;
        report.mean_stall_with_s = with_sum / report.requests as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::{Endpoint, TraceRecord};

    fn annotated_read(size: u64, latency_s: u32, transfer_ms: u64) -> TraceRecord {
        let mut rec = TraceRecord::read(Endpoint::MssTapeSilo, TRACE_EPOCH, size, "/f", 1);
        rec.startup_latency_s = latency_s;
        rec.transfer_ms = transfer_ms;
        rec
    }

    #[test]
    fn slow_consumer_hides_the_transfer() {
        // 80 MB at 2 MB/s = 40 s transfer; the app consumes at 1 MB/s
        // (80 s), so with cut-through it never catches the stream.
        let rec = annotated_read(80_000_000, 60, 40_000);
        let model = CutThroughModel::visualization();
        let (without, with) = stalls(&rec, &model);
        assert!((without - 100.0).abs() < 1e-9);
        assert!((with - 60.5).abs() < 1e-9, "with {with}");
    }

    #[test]
    fn fast_consumer_still_waits_for_the_tail() {
        // App consumes at 10 MB/s: 80 MB takes it 8 s, but the stream
        // needs 40 s — it stalls for the remaining 32 s.
        let rec = annotated_read(80_000_000, 60, 40_000);
        let model = CutThroughModel {
            consume_bps: 10.0e6,
            setup_s: 0.0,
        };
        let (without, with) = stalls(&rec, &model);
        assert!((without - 100.0).abs() < 1e-9);
        assert!((with - 92.0).abs() < 1e-9, "with {with}");
        assert!(with < without);
    }

    #[test]
    fn report_aggregates_reads_only() {
        let mut write = TraceRecord::write(Endpoint::MssDisk, TRACE_EPOCH, 10, "/w", 1);
        write.transfer_ms = 1000;
        let records = [annotated_read(80_000_000, 60, 40_000), write];
        let report = analyze(records.iter(), &CutThroughModel::visualization());
        assert_eq!(report.requests, 1);
        assert!(report.speedup() > 1.5, "speedup {}", report.speedup());
    }

    #[test]
    fn empty_report_is_neutral() {
        let report = analyze(std::iter::empty(), &CutThroughModel::visualization());
        assert_eq!(report.requests, 0);
        assert_eq!(report.speedup(), 1.0);
    }
}
