//! Counted FCFS resource pools (drives, robot arms, operators, movers).
//!
//! The §5.1.1 analysis attributes most of the latency to first byte to
//! queueing "in several places in the system — the Cray, the MSS CPU,
//! the network from disk to Cray, and data transfer"; every such place is
//! a [`Pool`] here. A pool owns `capacity` interchangeable units and a
//! FIFO queue of waiting request ids.

use std::collections::VecDeque;

/// A counted resource with an FCFS wait queue of request ids.
#[derive(Debug, Clone)]
pub struct Pool {
    capacity: u32,
    in_use: u32,
    queue: VecDeque<usize>,
    /// Cumulative busy unit-milliseconds, for utilisation reporting.
    busy_ms: u64,
    last_change_ms: i64,
}

impl Pool {
    /// Creates a pool with the given unit count.
    pub fn new(capacity: u32) -> Self {
        Pool {
            capacity,
            in_use: 0,
            queue: VecDeque::new(),
            busy_ms: 0,
            last_change_ms: 0,
        }
    }

    /// Attempts to acquire one unit for `req`.
    ///
    /// Returns `true` when granted immediately; otherwise the request is
    /// appended to the FIFO queue and will be returned by a later
    /// [`Pool::release`].
    pub fn acquire(&mut self, req: usize, now: i64) -> bool {
        if self.in_use < self.capacity {
            self.tick(now);
            self.in_use += 1;
            true
        } else {
            self.queue.push_back(req);
            false
        }
    }

    /// Releases one unit; if someone is waiting, the unit is handed over
    /// and the beneficiary's id returned.
    ///
    /// # Panics
    ///
    /// Panics if the pool has no units in use.
    pub fn release(&mut self, now: i64) -> Option<usize> {
        assert!(self.in_use > 0, "release on an idle pool");
        if let Some(next) = self.queue.pop_front() {
            // Unit transfers directly; busy count is unchanged.
            Some(next)
        } else {
            self.tick(now);
            self.in_use -= 1;
            None
        }
    }

    /// Units currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Requests waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Cumulative busy unit-milliseconds up to the last state change.
    pub fn busy_ms(&self) -> u64 {
        self.busy_ms
    }

    /// Mean utilisation over `[start, end]`, in `0..=capacity`.
    pub fn utilisation(&self, start_ms: i64, end_ms: i64) -> f64 {
        let span = (end_ms - start_ms).max(1) as f64;
        let tail = (end_ms - self.last_change_ms).max(0) as u64 * self.in_use as u64;
        (self.busy_ms + tail) as f64 / span
    }

    fn tick(&mut self, now: i64) {
        let dt = (now - self.last_change_ms).max(0) as u64;
        self.busy_ms += dt * self.in_use as u64;
        self.last_change_ms = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_capacity_then_queues() {
        let mut p = Pool::new(2);
        assert!(p.acquire(1, 0));
        assert!(p.acquire(2, 0));
        assert!(!p.acquire(3, 0));
        assert!(!p.acquire(4, 0));
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.queued(), 2);
    }

    #[test]
    fn release_hands_over_fifo() {
        let mut p = Pool::new(1);
        assert!(p.acquire(10, 0));
        assert!(!p.acquire(11, 0));
        assert!(!p.acquire(12, 0));
        assert_eq!(p.release(5), Some(11));
        assert_eq!(p.release(9), Some(12));
        assert_eq!(p.release(12), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release on an idle pool")]
    fn release_on_idle_pool_panics() {
        let mut p = Pool::new(1);
        let _ = p.release(0);
    }

    #[test]
    fn utilisation_integrates_busy_time() {
        let mut p = Pool::new(2);
        assert!(p.acquire(1, 0));
        // One unit busy from t=0ms to t=1000ms.
        let _ = p.release(1000);
        assert_eq!(p.busy_ms(), 1000);
        // Over [0, 2000], one of two units busy half the time => 0.5 units.
        let u = p.utilisation(0, 2000);
        assert!((u - 0.5).abs() < 1e-9, "utilisation {u}");
    }

    #[test]
    fn zero_capacity_pool_queues_everything() {
        let mut p = Pool::new(0);
        assert!(!p.acquire(7, 0));
        assert_eq!(p.queued(), 1);
    }
}
