//! Discrete-event simulator of the NCAR mass storage system (§3 of the
//! Miller & Katz study).
//!
//! The paper measures latency to first byte on a real MSS: IBM 3380 disk
//! behind an IBM 3090 bitfile server, a StorageTek 4400 cartridge silo,
//! and operator-mounted shelf tape. That hardware is unavailable, so this
//! crate rebuilds its *queueing structure*: FCFS spindles, tape drives,
//! robot arms, human operators, and a bounded pool of bitfile movers, all
//! driven by a trace.
//!
//! Feeding the synthetic workload through [`MssSimulator`] regenerates
//! Figure 3 (per-device latency CDFs) and the Table 3 latency rows, and
//! supports the §6 ablations (write-behind, dividing point).
//!
//! # Examples
//!
//! ```
//! use fmig_sim::{MssSimulator, SimConfig};
//! use fmig_trace::{Endpoint, Timestamp, TraceRecord};
//!
//! let rec = TraceRecord::read(
//!     Endpoint::MssTapeSilo,
//!     Timestamp::from_unix(0),
//!     80_000_000,
//!     "/CCM/run1/day001",
//!     42,
//! );
//! let run = MssSimulator::new(SimConfig::default()).run(vec![rec]);
//! // A silo read pays robot mount plus tape seek before the first byte.
//! assert!(run.records[0].startup_latency_s > 10);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod cutthrough;
pub mod event;
pub mod fault;
pub mod hierarchy;
pub mod metrics;
pub mod noise;
pub mod pool;
pub mod sim;
pub mod striping;

pub use config::SimConfig;
pub use cutthrough::{CutThroughModel, CutThroughReport};
pub use event::{EventQueue, SimMs};
pub use fault::{FaultPlan, FaultSchedule, FaultTarget, OutageClause, SlowDriveClause};
pub use hierarchy::{HierarchyMetrics, HierarchySimulator, RefOutcome, ServedBy};
pub use metrics::{LatencyHistogram, Metrics, Utilisation};
pub use pool::Pool;
pub use sim::{MssSimulator, SimRun};
pub use striping::{StripeRow, StripingStudy};
