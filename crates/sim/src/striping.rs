//! Striped tape arrays (the paper's reference \[4\], Drapeau & Katz).
//!
//! §2.2 notes that tape bandwidth, not just mount latency, bounds
//! large-file response time, and cites the (then to-appear) striped tape
//! array work. This module models reading a file striped across `k`
//! cartridges mounted in parallel:
//!
//! * the robot's arms pick cartridges one at a time, so mounts pipeline
//!   at `robot_mount / arms` spacing;
//! * the transfer cannot start until every stripe is positioned — the
//!   *maximum* of `k` independent seeks (order statistics work against
//!   wide stripes);
//! * the transfer then streams at `k ×` the single-drive rate.
//!
//! Striping therefore helps exactly when transfer time dominates the
//! added mount/seek exposure — large files — and hurts small ones, the
//! same trade-off as the paper's disk/tape dividing point.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;

/// Expected-response model for striped tape reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StripingStudy {
    /// Hardware parameters (mount, seek, rate, arms).
    pub config: SimConfig,
}

/// One row of a stripe-width sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StripeRow {
    /// Stripe width (cartridges mounted in parallel).
    pub width: u32,
    /// Mean response time over the sampled accesses, seconds.
    pub mean_response_s: f64,
    /// Mean first-byte time (mount pipeline + max seek), seconds.
    pub mean_first_byte_s: f64,
    /// Drive-seconds consumed per access (the capacity cost).
    pub mean_drive_seconds: f64,
}

impl StripingStudy {
    /// Creates a study over the given hardware.
    pub fn new(config: SimConfig) -> Self {
        StripingStudy { config }
    }

    /// Samples the response time of one striped read.
    pub fn sample_response<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        size: u64,
        width: u32,
    ) -> StripeSample {
        let width = width.max(1);
        let c = &self.config;
        // Arms pick cartridges one at a time; the last mount finishes
        // after ceil(width/arms) pipelined picks.
        let rounds = width.div_ceil(c.robot_arms.max(1));
        let mount = c.robot_mount_s * rounds as f64;
        // Every stripe seeks independently; the transfer waits for the
        // slowest.
        let max_seek = (0..width)
            .map(|_| rng.gen_range(c.tape_seek_min_s..c.tape_seek_max_s))
            .fold(0.0f64, f64::max);
        let first_byte = mount + max_seek;
        let transfer = size as f64 / (c.silo_rate * width as f64);
        let response = first_byte + transfer;
        // Each drive is held from its own mount to the end of transfer;
        // approximate with the full span for every stripe.
        let drive_seconds = width as f64 * (response + c.tape_unload_s);
        StripeSample {
            first_byte_s: first_byte,
            response_s: response,
            drive_seconds,
        }
    }

    /// Sweeps stripe widths over a population of access sizes.
    pub fn sweep<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        access_sizes: &[u64],
        widths: &[u32],
    ) -> Vec<StripeRow> {
        widths
            .iter()
            .map(|&width| {
                let mut first = 0.0;
                let mut resp = 0.0;
                let mut drive = 0.0;
                for &size in access_sizes {
                    let s = self.sample_response(rng, size, width);
                    first += s.first_byte_s;
                    resp += s.response_s;
                    drive += s.drive_seconds;
                }
                let n = access_sizes.len().max(1) as f64;
                StripeRow {
                    width,
                    mean_response_s: resp / n,
                    mean_first_byte_s: first / n,
                    mean_drive_seconds: drive / n,
                }
            })
            .collect()
    }

    /// The file size above which width `k` beats a single drive in
    /// *expected* response (ignoring seek variance): solves
    /// `mount_k + seek + size/(k·r) = mount_1 + seek + size/r`.
    pub fn break_even_size(&self, width: u32) -> f64 {
        let width = width.max(2);
        let c = &self.config;
        let rounds_k = width.div_ceil(c.robot_arms.max(1)) as f64;
        let extra_mount = c.robot_mount_s * (rounds_k - 1.0);
        // Expected max of k uniforms minus the single-seek mean.
        let (a, b) = (c.tape_seek_min_s, c.tape_seek_max_s);
        let k = width as f64;
        let extra_seek = (a + (b - a) * k / (k + 1.0)) - (a + b) / 2.0;
        let saved_per_byte = (1.0 - 1.0 / k) / c.silo_rate;
        (extra_mount + extra_seek) / saved_per_byte
    }
}

/// One sampled striped access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StripeSample {
    /// Seconds until all stripes are positioned.
    pub first_byte_s: f64,
    /// Total response time.
    pub response_s: f64,
    /// Drive-seconds consumed.
    pub drive_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn study() -> StripingStudy {
        StripingStudy::new(SimConfig::default())
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(4)
    }

    #[test]
    fn wide_stripes_speed_up_huge_transfers() {
        let s = study();
        let mut r = rng();
        // 10 GB logical object (stripes span cartridges).
        let sizes = vec![10_000_000_000u64; 40];
        let rows = s.sweep(&mut r, &sizes, &[1, 2, 4, 8]);
        for w in rows.windows(2) {
            assert!(
                w[1].mean_response_s < w[0].mean_response_s,
                "wider stripes must win on huge transfers: {rows:?}"
            );
        }
    }

    #[test]
    fn striping_hurts_small_reads() {
        let s = study();
        let mut r = rng();
        let sizes = vec![1_000_000u64; 200];
        let rows = s.sweep(&mut r, &sizes, &[1, 8]);
        assert!(
            rows[1].mean_response_s > rows[0].mean_response_s,
            "8-wide stripes should lose on 1 MB reads: {rows:?}"
        );
    }

    #[test]
    fn drive_cost_grows_with_width() {
        let s = study();
        let mut r = rng();
        let sizes = vec![200_000_000u64; 50];
        let rows = s.sweep(&mut r, &sizes, &[1, 2, 4]);
        for w in rows.windows(2) {
            assert!(w[1].mean_drive_seconds > w[0].mean_drive_seconds);
        }
    }

    #[test]
    fn break_even_sits_between_small_and_huge() {
        let s = study();
        let be2 = s.break_even_size(2);
        // Two-wide striping should pay off somewhere between a few MB
        // and a few hundred MB on 3480-class hardware.
        assert!(
            (1.0e6..1.0e9).contains(&be2),
            "2-wide break-even {be2} bytes"
        );
        // Empirically check: well above break-even, width 2 wins.
        let mut r = rng();
        let big = vec![(be2 * 4.0) as u64; 60];
        let rows = s.sweep(&mut r, &big, &[1, 2]);
        assert!(rows[1].mean_response_s < rows[0].mean_response_s);
        // Well below break-even, width 1 wins.
        let small = vec![(be2 / 8.0) as u64; 60];
        let rows = s.sweep(&mut r, &small, &[1, 2]);
        assert!(rows[1].mean_response_s > rows[0].mean_response_s);
    }

    #[test]
    fn width_one_matches_unstriped_physics() {
        let s = study();
        let mut r = rng();
        let sample = s.sample_response(&mut r, 80_000_000, 1);
        // Mount + seek in [10,90] + ~36 s transfer.
        assert!(sample.first_byte_s >= s.config.robot_mount_s + s.config.tape_seek_min_s);
        assert!(sample.response_s > sample.first_byte_s);
        assert!(sample.response_s < 200.0);
    }
}
