//! Latency and utilisation metrics collected by the simulator (Figure 3
//! and the Table 3 "secs to first byte" rows).

use fmig_trace::{DeviceClass, Direction};
use serde::{Deserialize, Serialize};

/// Upper edge (seconds) of the last regular histogram bucket; larger
/// latencies land in the overflow bucket. Figure 3's axis runs to 400 s,
/// so 1200 leaves plenty of tail resolution.
pub const MAX_BUCKET_S: usize = 1200;

/// A one-second-resolution latency histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum_s: f64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; MAX_BUCKET_S],
            overflow: 0,
            count: 0,
            sum_s: 0.0,
        }
    }

    /// Records one latency observation in seconds.
    pub fn record(&mut self, latency_s: f64) {
        let latency_s = latency_s.max(0.0);
        let idx = latency_s.floor() as usize;
        if idx < MAX_BUCKET_S {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum_s += latency_s;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Fraction of observations at or below `s` seconds.
    pub fn fraction_le(&self, s: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let upto = (s.floor() as usize + 1).min(MAX_BUCKET_S);
        let hits: u64 = self.buckets[..upto].iter().sum();
        hits as f64 / self.count as f64
    }

    /// Approximate `p`-quantile (by bucket lower edge).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile {p} out of range");
        if self.count == 0 {
            return 0.0;
        }
        let target = (p * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return i as f64;
            }
        }
        MAX_BUCKET_S as f64
    }

    /// CDF points `(upper_edge_s, cumulative_fraction)` for plotting
    /// Figure 3, thinned to buckets where the mass changes.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut acc = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                acc += b;
                out.push(((i + 1) as f64, acc as f64 / self.count as f64));
            }
        }
        if self.overflow > 0 {
            out.push((f64::INFINITY, 1.0));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_s += other.sum_s;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// All metrics produced by one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Latency to first byte, indexed `[direction][device]` in
    /// [`Direction::ALL`] × [`DeviceClass::ALL`] order.
    pub latency: Vec<Vec<LatencyHistogram>>,
    /// Mean units busy for the headline resources over the run.
    pub utilisation: Utilisation,
    /// Requests simulated (including errors).
    pub requests: u64,
    /// Errored requests (answered at the MSCP, no device activity).
    pub errors: u64,
}

/// Mean busy units per resource class over the simulated interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Utilisation {
    /// Mean busy disk spindles.
    pub disk_spindles: f64,
    /// Mean busy silo drives (read + write).
    pub silo_drives: f64,
    /// Mean busy shelf drives (read + write).
    pub manual_drives: f64,
    /// Mean busy robot arms.
    pub robot_arms: f64,
    /// Mean busy operators.
    pub operators: f64,
    /// Mean busy movers.
    pub movers: f64,
}

impl Metrics {
    /// Creates an empty metrics container.
    pub fn new() -> Self {
        Metrics {
            latency: vec![
                vec![LatencyHistogram::new(); 3],
                vec![LatencyHistogram::new(); 3],
            ],
            utilisation: Utilisation::default(),
            requests: 0,
            errors: 0,
        }
    }

    /// The latency histogram for one (direction, device) cell.
    pub fn latency_of(&self, dir: Direction, device: DeviceClass) -> &LatencyHistogram {
        &self.latency[dir_index(dir)][device_index(device)]
    }

    /// Records a first-byte latency observation.
    pub fn record_latency(&mut self, dir: Direction, device: DeviceClass, latency_s: f64) {
        self.latency[dir_index(dir)][device_index(device)].record(latency_s);
    }

    /// Combined (reads + writes) histogram for a device, for Figure 3.
    pub fn device_latency(&self, device: DeviceClass) -> LatencyHistogram {
        let mut h = self.latency[0][device_index(device)].clone();
        h.merge(&self.latency[1][device_index(device)]);
        h
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::Read => 0,
        Direction::Write => 1,
    }
}

fn device_index(device: DeviceClass) -> usize {
    match device {
        DeviceClass::Disk => 0,
        DeviceClass::TapeSilo => 1,
        DeviceClass::TapeManual => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = LatencyHistogram::new();
        for s in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(s);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 3.0);
        assert!((h.fraction_le(4.0) - 0.8).abs() < 1e-9);
        assert!((h.fraction_le(1.0) - 0.2).abs() < 1e-9);
        assert_eq!(h.fraction_le(0.5), 0.0);
    }

    #[test]
    fn overflow_lands_in_tail() {
        let mut h = LatencyHistogram::new();
        h.record(5000.0);
        h.record(1.0);
        assert_eq!(h.count(), 2);
        assert!((h.fraction_le(10.0) - 0.5).abs() < 1e-9);
        let pts = h.cdf_points();
        assert_eq!(pts.last().unwrap().1, 1.0);
        assert!(pts.last().unwrap().0.is_infinite());
    }

    #[test]
    fn negative_latencies_clamp_to_zero() {
        let mut h = LatencyHistogram::new();
        h.record(-3.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(1.0);
        let mut b = LatencyHistogram::new();
        b.record(3.0);
        b.record(2000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.fraction_le(5.0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_cells_are_independent() {
        let mut m = Metrics::new();
        m.record_latency(Direction::Read, DeviceClass::TapeSilo, 85.0);
        m.record_latency(Direction::Write, DeviceClass::TapeSilo, 40.0);
        assert_eq!(
            m.latency_of(Direction::Read, DeviceClass::TapeSilo).count(),
            1
        );
        assert_eq!(
            m.latency_of(Direction::Write, DeviceClass::TapeSilo)
                .count(),
            1
        );
        assert_eq!(m.latency_of(Direction::Read, DeviceClass::Disk).count(), 0);
        let combined = m.device_latency(DeviceClass::TapeSilo);
        assert_eq!(combined.count(), 2);
        assert!((combined.mean() - 62.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_le(100.0), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert!(h.cdf_points().is_empty());
    }
}
