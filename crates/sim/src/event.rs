//! Discrete-event core: simulation clock and a stable event queue.
//!
//! Times are integer **milliseconds** since the Unix epoch (the traces
//! carry seconds for start/latency and milliseconds for transfer time, so
//! milliseconds lose nothing). The queue breaks ties by insertion order,
//! which keeps runs deterministic for a given seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds since the Unix epoch.
pub type SimMs = i64;

/// Milliseconds per second.
pub const MS: i64 = 1000;

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimMs, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper that exempts the payload from the heap ordering.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimMs, event: E) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimMs, E)> {
        self.heap.pop().map(|Reverse((t, _, slot))| (t, slot.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimMs> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        q.push(1, ());
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn negative_times_are_allowed_and_ordered() {
        let mut q = EventQueue::new();
        q.push(-10, "past");
        q.push(0, "epoch");
        assert_eq!(q.pop(), Some((-10, "past")));
        assert_eq!(q.pop(), Some((0, "epoch")));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue is a stable priority queue: output sorted by time,
        /// equal times in insertion order.
        #[test]
        fn queue_is_stable_sort(times in proptest::collection::vec(-1000i64..1000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut expected: Vec<(i64, usize)> =
                times.iter().copied().zip(0..times.len()).collect();
            expected.sort_by_key(|&(t, i)| (t, i));
            let mut got = Vec::new();
            while let Some((t, i)) = q.pop() {
                got.push((t, i));
            }
            prop_assert_eq!(got, expected);
        }
    }
}
