//! Keyed, counter-free stochastic draws for the replayable engine mode.
//!
//! The closed-loop engine's legacy timing noise comes from one shared
//! `SmallRng`: every draw advances the stream, so a stage's delay
//! depends on *how many draws happened before it* — global history no
//! distributed replica can reproduce without replaying every other
//! job. [`SimConfig::counter_noise`] switches the engine to the draws
//! in this module instead: each one is a pure function of the run seed
//! and a **stage-addressed key** derived from the job's identity (the
//! reference index, the recall's issue-order sequence number and
//! attempt, or the flush's spawn-order sequence number) plus the stage
//! being timed. Two processes that agree on the seed and on job
//! identities reproduce each other's delays exactly — which is what
//! lets the live daemon/origin split (`fmig-serve`) replay the same
//! physics the in-process oracle predicts, job by job, with no RNG
//! stream to keep in lockstep.
//!
//! The same construction already times the fault layer
//! ([`crate::fault::FaultSchedule::read_fails`] keys media errors by
//! `(recall seq, attempt)`); this module extends it to every timing
//! draw the engine makes. All hashing is the workspace's one
//! splitmix64 mixer, [`crate::fault::seed_mix`].
//!
//! [`SimConfig::counter_noise`]: crate::config::SimConfig::counter_noise

use std::f64::consts::TAU;

use crate::event::{SimMs, MS};
use crate::fault::seed_mix;

/// Stage being timed: the MSCP dispatch overhead drawn at arrival.
pub const STAGE_DISPATCH: u64 = 0x4449_5350; // "DISP"
/// Stage being timed: media mount (robot arm or operator).
pub const STAGE_MOUNT: u64 = 0x4D4F_554E; // "MOUN"
/// Stage being timed: tape positioning (read seek or append rewind).
pub const STAGE_SEEK: u64 = 0x5345_454B; // "SEEK"
/// Stage being timed: the transfer-rate jitter factor.
pub const STAGE_RATE: u64 = 0x5241_5445; // "RATE"

const TAG_REF: u64 = 0x5245_4658; // "REFX"
const TAG_DISK: u64 = 0x4453_4B4A; // "DSKJ"
const TAG_RECALL: u64 = 0x5243_4C4A; // "RCLJ"
const TAG_FLUSH: u64 = 0x464C_534A; // "FLSJ"

/// Key of a foreground reference's dispatch-overhead draw, addressed
/// by the reference's index in the trace.
pub fn dispatch_key(ref_index: u64) -> u64 {
    seed_mix(seed_mix(TAG_REF, ref_index), STAGE_DISPATCH)
}

/// Key of a disk job's draw at `stage`, addressed by the reference it
/// serves (disk jobs are one per foreground reference).
pub fn disk_key(ref_index: u64, stage: u64) -> u64 {
    seed_mix(seed_mix(TAG_DISK, ref_index), stage)
}

/// Key of a recall attempt's draw at `stage`, addressed by the
/// recall's issue-order sequence number and retry attempt — the same
/// identity the fault schedule's read-error decisions use.
pub fn recall_key(seq: u64, attempt: u32, stage: u64) -> u64 {
    seed_mix(seed_mix(seed_mix(TAG_RECALL, seq), attempt as u64), stage)
}

/// Key of a flush job's draw at `stage`, addressed by the flush's
/// spawn-order sequence number.
pub fn flush_key(seq: u64, stage: u64) -> u64 {
    seed_mix(seed_mix(TAG_FLUSH, seq), stage)
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the mixed hash —
/// the same bit-to-unit mapping the fault schedule's error decisions
/// use.
pub fn uniform(seed: u64, key: u64) -> f64 {
    ((seed_mix(seed, key) >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A uniform draw in `[lo, hi)`.
pub fn range(seed: u64, key: u64, lo: f64, hi: f64) -> f64 {
    lo + uniform(seed, key) * (hi - lo)
}

/// A standard normal via Box–Muller, mirroring the shared-RNG
/// `standard_normal` with the two uniforms taken from a chained pair
/// of hashes instead of consecutive stream draws.
pub fn normal(seed: u64, key: u64) -> f64 {
    let h = seed_mix(seed, key);
    let u1 = (((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64)).max(f64::MIN_POSITIVE);
    let u2 = ((seed_mix(h, 0x4E4F_524D) >> 11) as f64) * (1.0 / (1u64 << 53) as f64); // "NORM"
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// A keyed lognormal delay in milliseconds: `median · e^(σ·z)`,
/// truncated exactly as the engine's shared-RNG `lognormal_ms`.
pub fn lognormal_ms(seed: u64, key: u64, median_s: f64, sigma: f64) -> SimMs {
    ((median_s * (sigma * normal(seed, key)).exp()) * MS as f64) as SimMs
}

/// A keyed relative jitter delay in milliseconds:
/// `base · (1 ± rel)`, truncated exactly as the engine's `jitter_ms`.
pub fn jitter_ms(seed: u64, key: u64, base_s: f64, rel: f64) -> SimMs {
    ((base_s * (1.0 + range(seed, key, -rel, rel))) * MS as f64) as SimMs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_seed_and_key() {
        let k = recall_key(7, 1, STAGE_MOUNT);
        assert_eq!(uniform(42, k), uniform(42, k));
        assert_eq!(normal(42, k), normal(42, k));
        assert_eq!(lognormal_ms(42, k, 2.0, 1.2), lognormal_ms(42, k, 2.0, 1.2));
        assert_ne!(uniform(42, k), uniform(43, k));
        assert_ne!(
            uniform(42, recall_key(7, 1, STAGE_MOUNT)),
            uniform(42, recall_key(7, 2, STAGE_MOUNT)),
        );
    }

    #[test]
    fn uniforms_land_in_unit_interval_and_ranges_in_bounds() {
        for i in 0..1000u64 {
            let u = uniform(0xDEAD_BEEF, seed_mix(1, i));
            assert!((0.0..1.0).contains(&u), "{u}");
            let r = range(0xDEAD_BEEF, seed_mix(2, i), 10.0, 90.0);
            assert!((10.0..90.0).contains(&r), "{r}");
        }
    }

    #[test]
    fn normal_has_roughly_standard_moments() {
        let n = 20_000u64;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let z = normal(0x5EED, seed_mix(3, i));
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
