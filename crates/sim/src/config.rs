//! Simulator configuration: the NCAR MSS hardware of §3.1 in numbers.
//!
//! Defaults reflect the paper's description and Table 1:
//!
//! * ~100 GB of IBM 3380 disk behind the 3090 bitfile server;
//! * a StorageTek 4400 ACS: 6000 × 200 MB cartridges, robot mounts in
//!   well under 10 seconds, average tape seek deduced to be ~50 s;
//! * operator-mounted shelf tape: ~115 s mount with a long tail (10% of
//!   manual requests exceeded 400 s to first byte, Figure 3);
//! * both disks and tape drives stream at a ~3 MB/s peak but ~2 MB/s
//!   observed (§5.1.1).

use serde::{Deserialize, Serialize};

/// All tunables of the MSS simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed for mount/seek/service noise.
    pub seed: u64,
    /// Independently queued disk spindles (IBM 3380 actuators).
    pub disk_spindles: usize,
    /// Tape drives in the StorageTek silo (shared by reads and the
    /// append-only write stream — writes queue behind reads, which is
    /// why Table 3 writes still wait tens of seconds despite skipping
    /// the mount).
    pub silo_drives: u32,
    /// Shelf tape drives (shared by reads and writes).
    pub manual_drives: u32,
    /// Robot arms in the StorageTek silo.
    pub robot_arms: u32,
    /// Human operators mounting shelved cartridges.
    pub operators: u32,
    /// Concurrent bitfile movers for the disk path — the effective
    /// transfer-concurrency limit of the 3090 channel path. §5.1.1
    /// observes that disk queueing "is probably representative of the
    /// time spent waiting for data to be transferred off tape": a narrow
    /// shared path builds the common queueing floor.
    pub movers: u32,
    /// Concurrent bitfile movers for tape transfers (the LDN-direct
    /// streams between tape drives and the Cray).
    pub tape_movers: u32,
    /// Median MSCP dispatch overhead (request parsing, catalog lookup,
    /// Cray-side queueing), seconds.
    pub mscp_overhead_median_s: f64,
    /// Lognormal sigma of the MSCP overhead.
    pub mscp_overhead_sigma: f64,
    /// Robot pick-and-mount time, seconds ("under 10 seconds").
    pub robot_mount_s: f64,
    /// Median operator mount time, seconds.
    pub operator_mount_median_s: f64,
    /// Lognormal sigma of operator mounts (the Figure 3 long tail).
    pub operator_mount_sigma: f64,
    /// Minimum tape seek after a fresh mount, seconds.
    pub tape_seek_min_s: f64,
    /// Maximum tape seek after a fresh mount, seconds (uniform in
    /// between; the paper deduces a ~50 s average).
    pub tape_seek_max_s: f64,
    /// Disk head positioning time, seconds.
    pub disk_seek_s: f64,
    /// Observed disk transfer rate, bytes/second.
    pub disk_rate: f64,
    /// Observed silo tape transfer rate, bytes/second.
    pub silo_rate: f64,
    /// Observed shelf tape transfer rate, bytes/second.
    pub manual_rate: f64,
    /// Relative transfer-rate jitter (±).
    pub rate_jitter: f64,
    /// Cartridge capacity in bytes (3480-style: 200 MB).
    pub cartridge_bytes: u64,
    /// Drive occupancy after a transfer while the cartridge unloads,
    /// seconds.
    pub tape_unload_s: f64,
    /// Median latency for requests that fail at the MSCP (§5.1 errors),
    /// seconds.
    pub error_latency_median_s: f64,
    /// Closed-loop hierarchy engine only: how long freshly written dirty
    /// data may age before the eager write-behind flusher sends it to
    /// tape, seconds. Batching flushes off the critical path is exactly
    /// the §6 write-behind recommendation; the open-loop trace replay
    /// ignores this knob.
    pub writeback_delay_s: f64,
    /// Closed-loop hierarchy engine only: coalesce references to a file
    /// with an outstanding tape recall onto that recall (delayed hits)
    /// instead of issuing an independent fetch per reference. On by
    /// default; turning it off is the ablation baseline.
    pub recall_coalescing: bool,
    /// Closed-loop hierarchy engine only: draw every timing noise value
    /// from the keyed, counter-free hashes in [`crate::noise`] instead
    /// of the shared RNG stream, and assign recall sequence numbers in
    /// *arrival* order instead of dispatch order. Off by default — the
    /// legacy stream stays bit-identical for existing fixtures. Turned
    /// on, a run's per-job physics become a pure function of
    /// `(seed, job identity, stage)`, which is what lets the live
    /// daemon/origin service (`fmig-serve`) reproduce the engine's
    /// delays exactly and be validated against it as an oracle.
    pub counter_noise: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x4D53_5321, // "MSS!"
            disk_spindles: 12,
            silo_drives: 5,
            manual_drives: 6,
            robot_arms: 2,
            operators: 3,
            movers: 2,
            tape_movers: 3,
            mscp_overhead_median_s: 2.0,
            mscp_overhead_sigma: 1.2,
            robot_mount_s: 7.0,
            operator_mount_median_s: 95.0,
            operator_mount_sigma: 0.7,
            tape_seek_min_s: 10.0,
            tape_seek_max_s: 90.0,
            disk_seek_s: 0.04,
            disk_rate: 2.4e6,
            silo_rate: 2.2e6,
            manual_rate: 2.0e6,
            rate_jitter: 0.10,
            cartridge_bytes: 200_000_000,
            tape_unload_s: 5.0,
            error_latency_median_s: 2.0,
            writeback_delay_s: 30.0,
            recall_coalescing: true,
            counter_noise: false,
        }
    }
}

impl SimConfig {
    /// The same hardware with a different RNG seed for mount/seek/service
    /// noise.
    ///
    /// [`crate::MssSimulator::run`] takes `&self` and re-seeds its engine
    /// from `self.seed` on every call, so two runs of one simulator are
    /// identical by design. Anything executing *multiple* configurations
    /// — a sweep cell per scenario, for instance — must thread a distinct
    /// seed through each cell's `SimConfig` or every cell silently shares
    /// one RNG stream.
    pub fn with_seed(self, seed: u64) -> Self {
        SimConfig { seed, ..self }
    }

    /// The same hardware with [`Self::counter_noise`] switched: keyed
    /// replayable timing draws on `true`, the legacy shared RNG stream
    /// on `false`.
    pub fn with_counter_noise(self, counter_noise: bool) -> Self {
        SimConfig {
            counter_noise,
            ..self
        }
    }

    /// Hardware scaled down with a workload's `scale` so per-resource
    /// utilisation — and therefore queueing shape — stays comparable to
    /// the full-size system when replaying a scaled trace.
    pub fn scaled(scale: f64) -> Self {
        let base = Self::default();
        let f = scale.clamp(0.0, 1.0);
        let n = |x: u32| ((x as f64 * f).round() as u32).max(1);
        SimConfig {
            disk_spindles: ((base.disk_spindles as f64 * f).round() as usize).max(2),
            silo_drives: n(base.silo_drives).max(2),
            manual_drives: n(base.manual_drives).max(2),
            robot_arms: n(base.robot_arms),
            operators: n(base.operators),
            movers: n(base.movers).max(2),
            tape_movers: n(base.tape_movers).max(2),
            ..base
        }
    }

    /// A configuration with generous hardware, useful for isolating
    /// device physics from queueing in tests and ablations.
    pub fn uncontended() -> Self {
        SimConfig {
            disk_spindles: 64,
            silo_drives: 16,
            manual_drives: 16,
            robot_arms: 8,
            operators: 8,
            movers: 64,
            tape_movers: 64,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_hardware() {
        let c = SimConfig::default();
        assert_eq!(c.cartridge_bytes, 200_000_000);
        assert!(c.robot_mount_s < 10.0);
        // Deduced averages: silo mount+overhead ~35s with ~50s seek mean.
        let seek_mean = (c.tape_seek_min_s + c.tape_seek_max_s) / 2.0;
        assert!((seek_mean - 50.0).abs() < 1e-9);
        // Observed rates near 2 MB/s, below the 3 MB/s peak.
        assert!(c.disk_rate <= 3.0e6 && c.disk_rate >= 2.0e6);
        assert!(c.manual_rate <= c.silo_rate && c.silo_rate <= c.disk_rate);
    }

    #[test]
    fn scaled_shrinks_but_never_to_zero() {
        let s = SimConfig::scaled(0.05);
        assert!(s.disk_spindles >= 2);
        assert!(s.silo_drives >= 2);
        assert_eq!(s.operators, 1);
        assert!(s.movers >= 2);
        // Scale 1.0 is the full system.
        assert_eq!(SimConfig::scaled(1.0), SimConfig::default());
        // Physics is never scaled.
        assert_eq!(s.robot_mount_s, SimConfig::default().robot_mount_s);
    }

    #[test]
    fn uncontended_has_more_of_everything() {
        let base = SimConfig::default();
        let big = SimConfig::uncontended();
        assert!(big.disk_spindles > base.disk_spindles);
        assert!(big.movers > base.movers);
        assert!(big.operators > base.operators);
        // Device physics unchanged.
        assert_eq!(big.robot_mount_s, base.robot_mount_s);
        assert_eq!(big.silo_rate, base.silo_rate);
    }
}
